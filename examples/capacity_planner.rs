//! Capacity planner: sweep the DRAM budget for a workload and report the
//! performance at each effective-capacity point — the user-facing version
//! of the paper's Table IV methodology.
//!
//! Run with: `cargo run --release --example capacity_planner [workload]`

use tmcc::{SchemeKind, System, SystemConfig};
use tmcc_workloads::WorkloadProfile;

const ACCESSES: u64 = 100_000;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mcf".to_string());
    let Some(mut workload) = WorkloadProfile::by_name(&name) else {
        eprintln!("unknown workload '{name}'; try mcf, pageRank, canneal, omnetpp …");
        std::process::exit(1);
    };
    workload.sim_pages = workload.sim_pages.min(24_576);
    let footprint = workload.sim_pages * 4096;

    // Reference: uncompressed performance.
    let mut nocomp = System::new(SystemConfig::new(workload.clone(), SchemeKind::NoCompression));
    let base = nocomp.run(ACCESSES).perf_accesses_per_us();

    let min = System::min_budget_bytes(&SystemConfig::new(workload.clone(), SchemeKind::Tmcc));
    println!(
        "workload: {} — footprint {} MiB, fully-compressed floor {} MiB\n",
        workload.name,
        footprint >> 20,
        min >> 20
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10}",
        "DRAM (MB)", "eff. ratio", "perf acc/us", "vs uncomp", "ML2 rate"
    );
    for step in 0..=6 {
        let budget = min + (footprint.saturating_sub(min)) * step / 6;
        let cfg = SystemConfig::new(workload.clone(), SchemeKind::Tmcc).with_budget(budget);
        let r = System::new(cfg).run(ACCESSES);
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>11.1}% {:>9.2}%",
            budget >> 20,
            r.stats.effective_ratio(),
            r.perf_accesses_per_us(),
            (r.perf_accesses_per_us() / base - 1.0) * 100.0,
            r.stats.ml2_access_rate() * 100.0,
        );
    }
    println!(
        "\nReading the table: pick the smallest DRAM budget whose performance\n\
         penalty you can tolerate; the effective ratio column is the capacity\n\
         multiplier TMCC provides at that point."
    );
}
