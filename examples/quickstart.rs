//! Quickstart: compress and decompress a 4 KiB memory page with the
//! memory-specialized ASIC Deflate, and look at the modelled hardware
//! latencies.
//!
//! Run with: `cargo run --release --example quickstart`

use tmcc_deflate::{IbmDeflateModel, MemDeflate};

fn main() {
    // A page that looks like real memory: repeated records, some zero
    // padding, a few random fields.
    let mut page = vec![0u8; 4096];
    for (i, b) in page.iter_mut().enumerate() {
        *b = match i % 24 {
            0..=7 => b"nodeid= "[i % 8],
            8..=11 => ((i / 24) as u32).to_le_bytes()[i % 4],
            _ => 0,
        };
    }

    let codec = MemDeflate::default();
    let compressed = codec.compress_page(&page);
    println!("original:        {} bytes", page.len());
    println!("compressed:      {} bytes ({:.2}x)", compressed.stored_len(), compressed.ratio());
    println!("mode:            {:?}", compressed.mode());

    // Functional round trip — the same check the paper runs over 50M
    // pages of RTL simulation.
    let restored = codec.decompress_page(&compressed);
    assert_eq!(restored, page);
    println!("round trip:      OK");

    // Modelled ASIC timing (Table II).
    let comp = codec.compress_latency(&compressed);
    let dec = codec.decompress_latency(&compressed);
    let half = codec.needed_block_latency(&compressed);
    println!("\n--- modelled ASIC latency (2.5 GHz cycle model) ---");
    println!("compress:        {:.0} ns", comp.ns);
    println!("decompress:      {:.0} ns", dec.ns);
    println!("needed block:    {:.0} ns", half.ns);

    let ibm = IbmDeflateModel::default();
    println!("\n--- IBM general-purpose ASIC (analytic model) ---");
    println!("decompress:      {:.0} ns", ibm.decompress_latency_ns(4096));
    println!(
        "speedup:         {:.1}x full page, {:.1}x needed block",
        ibm.decompress_latency_ns(4096) / dec.ns,
        ibm.half_page_decompress_ns(4096) / half.ns
    );
}
