//! Run a pageRank-like graph-analytics workload through three memory
//! systems — no compression, Compresso, and TMCC at the same DRAM savings
//! as Compresso — and compare performance and translation behaviour.
//!
//! Run with: `cargo run --release --example graph_analytics`

use tmcc::{SchemeKind, System, SystemConfig};
use tmcc_workloads::WorkloadProfile;

const ACCESSES: u64 = 120_000;

fn main() {
    let mut workload = WorkloadProfile::by_name("pageRank").expect("known workload");
    // Shrink a little so the example runs in seconds.
    workload.sim_pages = 32_768; // 128 MiB

    println!("workload: {} ({} MiB footprint)\n", workload.name, workload.sim_pages * 4 / 1024);

    // 1. Conventional memory.
    let mut nocomp = System::new(SystemConfig::new(workload.clone(), SchemeKind::NoCompression));
    let rn = nocomp.run(ACCESSES);

    // 2. Compresso.
    let mut compresso = System::new(SystemConfig::new(workload.clone(), SchemeKind::Compresso));
    let rc = compresso.run(ACCESSES);

    // 3. TMCC at Compresso's DRAM usage.
    let budget = rc
        .stats
        .dram_used_bytes
        .max(System::min_budget_bytes(&SystemConfig::new(workload.clone(), SchemeKind::Tmcc)));
    let mut tmcc =
        System::new(SystemConfig::new(workload.clone(), SchemeKind::Tmcc).with_budget(budget));
    let rt = tmcc.run(ACCESSES);

    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>10}",
        "scheme", "perf acc/us", "L3 miss (ns)", "CTE miss", "DRAM used"
    );
    for r in [&rn, &rc, &rt] {
        println!(
            "{:<16} {:>12.2} {:>14.1} {:>11.1}% {:>8} MB",
            r.scheme.name(),
            r.perf_accesses_per_us(),
            r.stats.avg_l3_miss_latency_ns(),
            r.stats.cte_miss_per_llc_miss() * 100.0,
            r.stats.dram_used_bytes >> 20,
        );
    }
    println!(
        "\nTMCC vs Compresso at equal savings: {:+.1}% performance",
        (rt.perf_accesses_per_us() / rc.perf_accesses_per_us() - 1.0) * 100.0
    );
    println!(
        "TMCC translation: {:.0}% of ML1 reads hit the CTE cache, {:.0}% went parallel",
        rt.stats.ml1_cte_hit as f64
            / (rt.stats.ml1_cte_hit
                + rt.stats.ml1_parallel_correct
                + rt.stats.ml1_parallel_mismatch
                + rt.stats.ml1_serial)
                .max(1) as f64
            * 100.0,
        rt.stats.ml1_parallel_correct as f64
            / (rt.stats.ml1_cte_hit
                + rt.stats.ml1_parallel_correct
                + rt.stats.ml1_parallel_mismatch
                + rt.stats.ml1_serial)
                .max(1) as f64
            * 100.0,
    );
}
