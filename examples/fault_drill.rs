//! Fault drill: exercise the capacity-pressure resilience layer from the
//! public API — reject an infeasible budget as a typed error, then run a
//! balloon deflate/reinflate shock under invariant auditing and watch the
//! system degrade and recover.
//!
//! Run with: `cargo run --release --example fault_drill`

use tmcc::{FaultKind, FaultPlan, SchemeKind, System, SystemConfig, TmccError};
use tmcc_workloads::WorkloadProfile;

fn main() {
    // 1. An absurd budget is a value, not a crash.
    let mut w = WorkloadProfile::by_name("canneal").expect("known workload");
    w.sim_pages = 4_096;
    let absurd = SystemConfig::new(w.clone(), SchemeKind::Tmcc).with_budget(1 << 22);
    match System::try_new(absurd) {
        Err(e @ TmccError::InfeasibleBudget { .. }) => {
            println!("rejected as expected: {e}");
        }
        Err(e) => println!("unexpected error kind: {e}"),
        Ok(_) => println!("BUG: absurd budget accepted"),
    }

    // 2. A feasible but pressured system survives a mid-run balloon shock.
    let cfg = SystemConfig::new(w, SchemeKind::Tmcc);
    let min = System::min_budget_bytes(&cfg);
    let budget = min + (cfg.footprint_bytes().saturating_sub(min)) / 2;
    let shrink = (budget / 4096 / 2) as u32;
    let plan = FaultPlan::none()
        .with(65_000, FaultKind::ShrinkBudget { frames: shrink })
        .with(85_000, FaultKind::GrowBudget { frames: shrink });
    let mut sys = System::new(cfg.with_budget(budget).with_fault_plan(plan).with_audit());
    match sys.try_run(40_000) {
        Ok(r) => {
            println!("\n--- balloon drill: {} frames out at 65k, back at 85k ---", shrink);
            println!("accesses retired:    {}", r.stats.accesses);
            println!("faults injected:     {}", r.stats.faults_injected);
            println!("emergency evictions: {}", r.stats.emergency_evictions);
            println!("raw fallbacks:       {}", r.stats.raw_fallbacks);
            println!("recoveries:          {}", r.stats.recoveries);
            println!("time degraded:       {:.0} ns", r.stats.degraded_ns);
            println!("perf under shock:    {:.2} accesses/us", r.perf_accesses_per_us());
        }
        Err(e) => println!("drill failed: {e}"),
    }
    sys.validate().expect("invariants hold after the drill");
    println!("post-drill audit:    OK");
}
