//! Design-space exploration of the memory-specialized Deflate ASIC —
//! the §V-B methodology: sweep CAM size and tree-depth threshold, measure
//! real compression ratio on a memory-page corpus, and model area.
//!
//! The paper's conclusions this reproduces:
//! * a 1 KiB CAM loses only ~1.6 % ratio vs 4 KiB at a quarter of the LZ
//!   area; 256–512 B CAMs degrade much more (§V-B2);
//! * dynamic Huffman skipping buys ~5 % geomean ratio (§V-B1).
//!
//! Run with: `cargo run --release --example asic_explorer`

use tmcc_deflate::{AreaModel, DeflateParams, MemDeflate};
use tmcc_workloads::WorkloadProfile;

const PAGES: u64 = 160;

fn corpus() -> Vec<Vec<u8>> {
    let mut pages = Vec::new();
    for w in WorkloadProfile::large_suite() {
        let content = w.page_content(0xD5E);
        for i in 0..PAGES / 12 {
            pages.push(content.page_bytes(i));
        }
    }
    pages
}

fn ratio(codec: &MemDeflate, corpus: &[Vec<u8>]) -> f64 {
    let raw: usize = corpus.iter().map(|p| p.len()).sum();
    let comp: usize = corpus.iter().map(|p| codec.compressed_size(p)).sum();
    raw as f64 / comp as f64
}

fn main() {
    let corpus = corpus();

    println!("--- CAM size sweep (depth 15, dynamic skip on) ---");
    println!("{:>8} {:>8} {:>12} {:>14}", "CAM", "ratio", "LZ area mm2", "vs 4KiB ratio");
    let reference = ratio(&MemDeflate::new(DeflateParams::new().cam_bytes(4096)), &corpus);
    for cam in [256usize, 512, 1024, 2048, 4096] {
        let codec = MemDeflate::new(DeflateParams::new().cam_bytes(cam));
        let r = ratio(&codec, &corpus);
        let area = AreaModel::with_params(cam, 16);
        println!(
            "{:>8} {:>8.2} {:>12.3} {:>13.1}%",
            cam,
            r,
            area.lz_compressor().area_mm2 + area.lz_decompressor().area_mm2,
            (r / reference - 1.0) * 100.0
        );
    }

    println!("\n--- tree-depth threshold sweep (1 KiB CAM) ---");
    println!("{:>8} {:>8}", "depth", "ratio");
    for depth in [6u32, 8, 10, 12, 15] {
        let codec = MemDeflate::new(DeflateParams::new().max_tree_depth(depth));
        println!("{:>8} {:>8.2}", depth, ratio(&codec, &corpus));
    }

    println!("\n--- feature ablations (1 KiB CAM, depth 15) ---");
    let base = MemDeflate::new(DeflateParams::new().dynamic_skip(false));
    let skip = MemDeflate::new(DeflateParams::new().dynamic_skip(true));
    let one_pass = MemDeflate::new(DeflateParams::new().one_one_pass(true, 512));
    println!("no dynamic skip:   {:.3}", ratio(&base, &corpus));
    println!("dynamic skip:      {:.3}", ratio(&skip, &corpus));
    println!(
        "1.1-Pass sampling: {:.3}  (paper: hurts 4 KiB pages; off by default)",
        ratio(&one_pass, &corpus)
    );

    let unit = AreaModel::paper_default().complete_unit();
    println!(
        "\nchosen design point: 1 KiB CAM, 16-leaf tree → {:.2} mm2, {:.0} mW (Table I)",
        unit.area_mm2, unit.power_mw
    );
}
