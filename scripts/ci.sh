#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in the order CI runs it.
# Usage: scripts/ci.sh  (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> codec benches execute (TMCC_BENCH_SMOKE=1)"
# Smoke mode shrinks criterion's warm-up/samples so this only asserts the
# bench binary runs end to end; timings printed here are noise.
TMCC_BENCH_SMOKE=1 cargo bench -q -p tmcc-bench --bench codecs

echo "==> arbiter benches execute (TMCC_BENCH_SMOKE=1)"
# Covers the incremental-ledger fast path at 10..10k rosters; the <3x
# 1k->10k growth gate is asserted over full (non-smoke) runs, this line
# only keeps the bench compiling and running.
TMCC_BENCH_SMOKE=1 cargo bench -q -p tmcc --bench arbiter

echo "==> decoder fuzz smoke (TMCC_FUZZ_CASES=10000, fixed seed)"
# Bounded corruption fuzzing of the Deflate decode path: ~10k corrupted
# streams through the sealed decoder must yield typed errors, never a
# panic, over-read, or unbounded allocation. The seed is fixed inside the
# test, so failures reproduce exactly.
TMCC_FUZZ_CASES=10000 cargo test -q -p tmcc-deflate --release \
  --test corruption_proptests fuzz_smoke

echo "==> tmcc-bench run-all --quick --jobs 2 (bench smoke)"
cargo run --release -p tmcc-bench --bin tmcc-bench -- \
  run-all --quick --jobs 2 --out results/ci-smoke

echo "==> quick goldens unchanged (results/ci-smoke vs. committed)"
# BENCH_sweep.json carries wall-clock timings and FOOTPRINT.json carries
# host RSS/wall-clock probes; both legitimately change every run. Every
# simulated-result file must be byte-identical. A new experiment must
# commit its quick golden alongside the code.
git diff --exit-code -- results/ci-smoke \
  ':!results/ci-smoke/BENCH_sweep.json' \
  ':!results/ci-smoke/FOOTPRINT.json'
untracked="$(git ls-files --others --exclude-standard results/ci-smoke)"
if [ -n "$untracked" ]; then
  echo "uncommitted quick goldens:" >&2
  echo "$untracked" >&2
  exit 1
fi

echo "==> perf gate (quick acc/s vs checked-in baseline)"
# Throughput is hardware-dependent: refresh the baseline when the CI
# hardware changes (cp results/ci-smoke/BENCH_sweep.json
# results/ci-smoke/BENCH_baseline.json). TMCC_CI_SKIP_PERF_GATE=1 skips
# the gate for runs on unrelated machines.
#
# Tolerance: acc/s divides by summed point busy time, which is
# schedule-independent, but quick-scale experiments are small enough
# that co-scheduling/cache contention still moves per-experiment busy
# throughput by up to ~38% run-to-run (measured over repeated
# --jobs 2 sweeps). 50% keeps the gate quiet on that noise while still
# failing 2x-class regressions.
if [ "${TMCC_CI_SKIP_PERF_GATE:-0}" != 1 ]; then
  cargo run --release -p tmcc-bench --bin tmcc-bench -- \
    perf-gate --baseline results/ci-smoke/BENCH_baseline.json \
              --current results/ci-smoke/BENCH_sweep.json \
              --tolerance-pct 50
else
  echo "skipped (TMCC_CI_SKIP_PERF_GATE=1)"
fi

echo "CI gate passed."
