#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in the order CI runs it.
# Usage: scripts/ci.sh  (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> tmcc-bench run-all --quick (smoke sweep)"
cargo run --release -p tmcc-bench --bin tmcc-bench -- \
  run-all --quick --out results/ci-smoke

echo "CI gate passed."
