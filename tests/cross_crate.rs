//! Workspace-level integration tests spanning crates: the functional
//! codecs against the workload corpus, the PTB-embedding pipeline against
//! a real page table, and figure-shaped smoke checks on the full system.

use tmcc::{SchemeKind, System, SystemConfig};
use tmcc_compression::{BestOfCodec, BlockCodec};
use tmcc_deflate::{MemDeflate, SoftwareDeflate};
use tmcc_sim_mem::{PageTable, PageTableConfig, PageWalker, Tlb};
use tmcc_types::addr::{Ppn, Vpn};
use tmcc_types::cte::{Cte, MemoryLevel};
use tmcc_types::ptb::{CompressedPtb, PtbGeometry};
use tmcc_workloads::WorkloadProfile;

/// The paper's RTL verification, in miniature: every page of every
/// workload's corpus must survive compress→decompress bit-exactly, under
/// both the page-level Deflate and the block-level composite.
#[test]
fn corpus_round_trips_under_all_codecs() {
    let deflate = MemDeflate::default();
    let software = SoftwareDeflate::new();
    let block = BestOfCodec::new();
    for w in WorkloadProfile::large_suite().into_iter().take(4) {
        let content = w.page_content(99);
        for i in 0..24u64 {
            let page = content.page_bytes(i * 31);
            let c = deflate.compress_page(&page);
            assert_eq!(deflate.decompress_page(&c), page, "{} page {i}", w.name);
            let sw = software.compress(&page);
            assert_eq!(software.decompress(&sw), page, "{} page {i}", w.name);
            for blk in page.chunks_exact(64) {
                let arr: &[u8; 64] = blk.try_into().expect("64B");
                if let Some(cb) = block.compress(arr) {
                    assert_eq!(&block.decompress(&cb), arr);
                }
            }
        }
    }
}

/// Walk a real page table, compress the fetched PTBs, embed CTEs, and
/// check the full prefetch-verify-repair chain end to end.
#[test]
fn ptb_embedding_pipeline_end_to_end() {
    let mut pt = PageTable::new(PageTableConfig::default());
    for i in 0..2048u64 {
        pt.map(Vpn::new(i), Ppn::new(i));
    }
    let mut walker = PageWalker::paper_default();
    let mut tlb = Tlb::paper_default();
    let geometry = PtbGeometry::paper_default();

    let walk = walker.walk(&pt, Vpn::new(77)).expect("mapped");
    assert!(tlb.lookup(Vpn::new(77)).is_none());
    tlb.fill(Vpn::new(77), walk.ppn);

    // Compress the leaf PTB and embed a CTE for every present entry.
    let leaf = walk.fetched.last().expect("leaf step");
    let ptb = pt.ptb_at(leaf.ptb_block).expect("table block");
    let mut compressed = CompressedPtb::compress(&ptb, geometry).expect("uniform PTB");
    for slot in 0..8 {
        let pte = ptb.entry(slot);
        if pte.is_present() {
            let cte = Cte::new(pte.ppn().raw() as u32 + 5000, MemoryLevel::Ml1);
            assert!(compressed.embed_cte(slot, cte.truncated()));
        }
    }
    // Software never sees the embedded CTEs.
    assert_eq!(compressed.decompress(), ptb);
    // The embedded CTE verifies against the matching full CTE and fails
    // against a migrated one.
    let t = compressed.embedded_cte(leaf.slot).expect("embedded");
    let full = Cte::new(leaf.next_ppn.raw() as u32 + 5000, MemoryLevel::Ml1);
    assert!(t.matches(&full));
    let migrated = Cte::new(1, MemoryLevel::Ml2);
    assert!(!t.matches(&migrated));
}

/// Fig. 1's qualitative claim on a scaled workload: under block-level
/// CTEs, CTE misses per LLC miss are comparable to (or exceed) TLB misses
/// per LLC miss.
#[test]
fn cte_misses_rival_tlb_misses_under_compresso() {
    let mut w = WorkloadProfile::by_name("graphColoring").expect("known");
    w.sim_pages = 24_576;
    let mut cfg = SystemConfig::new(w, SchemeKind::Compresso);
    cfg.warmup_accesses = 20_000;
    let r = System::new(cfg).run(60_000);
    let tlb = r.stats.tlb_miss_per_llc_miss();
    let cte = r.stats.cte_miss_per_llc_miss();
    assert!(tlb > 0.02, "TLB misses too rare: {tlb}");
    assert!(cte > 0.02, "CTE misses too rare: {cte}");
    assert!(cte > tlb * 0.6, "CTE misses ({cte:.3}) should rival TLB misses ({tlb:.3})");
}

/// The §IV claim: switching from block-level to page-level CTEs removes a
/// large share of CTE misses at identical cache capacity.
#[test]
fn page_level_ctes_cut_misses() {
    let mut w = WorkloadProfile::by_name("connComp").expect("known");
    w.sim_pages = 24_576;
    let mut block_cfg = SystemConfig::new(w.clone(), SchemeKind::Compresso);
    block_cfg.warmup_accesses = 20_000;
    // Page-level CTEs at the same 64 KiB capacity (the §IV comparison).
    block_cfg.cte_cache.size_bytes = 64 * 1024;
    let rb = System::new(block_cfg).run(60_000);

    let mut page_cfg = SystemConfig::new(w, SchemeKind::OsInspired);
    page_cfg.warmup_accesses = 20_000;
    let rp = System::new(page_cfg).run(60_000);
    assert!(
        rp.stats.cte_miss_per_llc_miss() < rb.stats.cte_miss_per_llc_miss(),
        "page-level {:.3} vs block-level {:.3}",
        rp.stats.cte_miss_per_llc_miss(),
        rb.stats.cte_miss_per_llc_miss()
    );
}
