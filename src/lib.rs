//! Umbrella crate for the TMCC reproduction workspace.
//!
//! This crate exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. The actual functionality lives
//! in the member crates; see [`tmcc`] for the system entry point.

pub use tmcc;
pub use tmcc_compression as compression;
pub use tmcc_deflate as deflate;
pub use tmcc_sim_dram as sim_dram;
pub use tmcc_sim_mem as sim_mem;
pub use tmcc_types as types;
pub use tmcc_workloads as workloads;
