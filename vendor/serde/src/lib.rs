//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of serde's surface this workspace relies on: a [`Serialize`]
//! trait (here: conversion to an in-memory JSON [`Value`]) and the
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros re-exported
//! from the companion `serde_derive` stand-in. `Deserialize` derives are
//! accepted and expand to nothing — nothing in the workspace deserializes.

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON value — the target of [`Serialize::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (kept exact; JSON has no integer limit).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number. Non-finite values serialize as `null`.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object with insertion-ordered keys (deterministic output).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in a [`Value::Map`]; `None` for other variants or
    /// missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The unsigned integer, if this is a non-negative JSON integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The signed integer, if this is a JSON integer in `i64` range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// The float, if this is any JSON number. Integers convert; a
    /// [`Value::F64`] is returned bit-exactly.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string slice, if this is a JSON string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a JSON boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is a JSON array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value entries, if this is a JSON object.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Strict field-by-field reader over a serialized struct's
/// [`Value::Map`], for hand-written decoders (the workspace's derive
/// stand-in has no `Deserialize` codegen).
///
/// Strictness is the point: every named field must be present with the
/// right shape, and [`FieldReader::finish`] fails if any key was left
/// unread — so a struct field added without a matching decode line
/// surfaces as a loud error in round-trip tests, not as silently dropped
/// data.
pub struct FieldReader<'a> {
    ty: &'static str,
    entries: &'a [(String, Value)],
    used: Vec<bool>,
}

impl<'a> FieldReader<'a> {
    /// Opens a reader over `v`, which must be a [`Value::Map`]. `ty` is
    /// the decoded type's name, used in error messages.
    pub fn open(v: &'a Value, ty: &'static str) -> Result<Self, String> {
        match v {
            Value::Map(entries) => Ok(Self { ty, entries, used: vec![false; entries.len()] }),
            other => Err(format!("{ty}: expected object, found {other:?}")),
        }
    }

    /// The raw value of `name`, marking it consumed.
    pub fn value(&mut self, name: &str) -> Result<&'a Value, String> {
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if k == name {
                self.used[i] = true;
                return Ok(v);
            }
        }
        Err(format!("{}: missing field {name:?}", self.ty))
    }

    /// Reads `name` as a `u64`.
    pub fn u64(&mut self, name: &str) -> Result<u64, String> {
        let ty = self.ty;
        self.value(name)?.as_u64().ok_or_else(|| format!("{ty}: field {name:?} is not a u64"))
    }

    /// Reads `name` as an `f64` (bit-exact for float-typed fields).
    pub fn f64(&mut self, name: &str) -> Result<f64, String> {
        let ty = self.ty;
        self.value(name)?.as_f64().ok_or_else(|| format!("{ty}: field {name:?} is not a number"))
    }

    /// Reads `name` as a string slice.
    pub fn str(&mut self, name: &str) -> Result<&'a str, String> {
        let ty = self.ty;
        self.value(name)?.as_str().ok_or_else(|| format!("{ty}: field {name:?} is not a string"))
    }

    /// Reads `name` as a bool.
    pub fn bool(&mut self, name: &str) -> Result<bool, String> {
        let ty = self.ty;
        self.value(name)?.as_bool().ok_or_else(|| format!("{ty}: field {name:?} is not a bool"))
    }

    /// Verifies every key was consumed.
    pub fn finish(self) -> Result<(), String> {
        for (i, (k, _)) in self.entries.iter().enumerate() {
            if !self.used[i] {
                return Err(format!("{}: unknown field {k:?}", self.ty));
            }
        }
        Ok(())
    }
}

/// Conversion to a JSON [`Value`] — the stand-in for `serde::Serialize`.
pub trait Serialize {
    /// Converts `self` to a JSON value tree.
    fn to_value(&self) -> Value;
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_extract_and_reject() {
        let v = Value::Map(vec![
            ("n".into(), Value::U64(7)),
            ("x".into(), Value::F64(0.5)),
            ("s".into(), Value::Str("hi".into())),
        ]);
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(7));
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(0.5));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("s").and_then(Value::as_u64), None);
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(Value::Seq(vec![Value::Null]).as_seq().map(<[Value]>::len), Some(1));
    }

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::U64(3));
        assert_eq!((-2i64).to_value(), Value::I64(-2));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(vec![1u8, 2].to_value(), Value::Seq(vec![Value::U64(1), Value::U64(2)]));
    }
}
