//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of serde's surface this workspace relies on: a [`Serialize`]
//! trait (here: conversion to an in-memory JSON [`Value`]) and the
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros re-exported
//! from the companion `serde_derive` stand-in. `Deserialize` derives are
//! accepted and expand to nothing — nothing in the workspace deserializes.

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON value — the target of [`Serialize::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (kept exact; JSON has no integer limit).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number. Non-finite values serialize as `null`.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object with insertion-ordered keys (deterministic output).
    Map(Vec<(String, Value)>),
}

/// Conversion to a JSON [`Value`] — the stand-in for `serde::Serialize`.
pub trait Serialize {
    /// Converts `self` to a JSON value tree.
    fn to_value(&self) -> Value;
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::U64(3));
        assert_eq!((-2i64).to_value(), Value::I64(-2));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(vec![1u8, 2].to_value(), Value::Seq(vec![Value::U64(1), Value::U64(2)]));
    }
}
