//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! `throughput` / `sample_size` / `finish`, [`Bencher::iter`] /
//! `iter_with_setup`, [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a simple calibrated wall-clock loop (a warm-up pass
//! sizes the batch, then `sample_size` timed batches report the median
//! per-iteration time). Good enough for relative comparisons in this
//! offline environment; not a statistical replacement for criterion.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from `std::hint`.
pub use std::hint::black_box;

/// Work-per-iteration declaration used to print throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Parses command-line options. This stand-in accepts and ignores
    /// cargo-bench's arguments (e.g. `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 0, // 0 = inherit the harness default
            throughput: None,
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.default_sample_size, None, &mut f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work done per iteration, for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Measures `f` and prints its per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = if self.sample_size == 0 {
            self._criterion.default_sample_size
        } else {
            self.sample_size
        };
        run_benchmark(name, samples, self.throughput, &mut f);
        self
    }

    /// Ends the group (printing-only in this stand-in).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-running `setup` outside the clock each
    /// iteration.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Smoke mode (`TMCC_BENCH_SMOKE=1`): shrink warm-up and sample counts so
/// a full bench binary runs in well under a second. CI uses it to assert
/// every benchmark still *executes*; the timings it prints are noise.
fn smoke_mode() -> bool {
    std::env::var_os("TMCC_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let smoke = smoke_mode();
    let (sample_target, samples) =
        if smoke { (Duration::from_micros(200), 1) } else { (Duration::from_millis(10), samples) };
    // Warm-up: find an iteration count taking roughly one sample target.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= sample_target || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];

    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {:.2} GiB/s", n as f64 / median / (1u64 << 30) as f64)
        }
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:.2} Melem/s", n as f64 / median / 1e6)
        }
        _ => String::new(),
    };
    println!("  {name}: {:.3} us/iter{rate}", median * 1e6);
}

/// Collects benchmark functions into a runnable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_returns() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.throughput(Throughput::Bytes(64));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_function("with-setup", |b| {
            b.iter_with_setup(|| vec![1u8; 64], |v| v.iter().map(|&x| x as u64).sum::<u64>())
        });
        g.finish();
    }
}
