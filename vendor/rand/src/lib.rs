//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand`'s 0.8 API it actually uses: the
//! [`Rng`] / [`SeedableRng`] traits, [`rngs::SmallRng`], `gen`,
//! `gen_range`, and `gen_bool`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed on every platform, which
//! is exactly what the simulator's reproducibility guarantees need.
//! Statistical quality matches the upstream SmallRng for simulation
//! purposes; the exact output streams differ from upstream.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from the generator's raw output
/// (the stand-in for `rand::distributions::Standard` sampling).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value of `T` can be drawn from (stand-in for
/// `rand::distributions::uniform::SampleRange<T>`). Generic over the
/// output type so call sites infer the integer type from context, as
/// with upstream rand.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The raw-output half of the generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// The user-facing sampling interface (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with uniformly distributed data.
    #[inline]
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_from(self)
    }
}

/// Buffer types that [`Rng::fill`] can populate.
pub trait Fill {
    /// Overwrites `self` with data drawn from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl Fill for [u64] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for slot in self.iter_mut() {
            *slot = rng.next_u64();
        }
    }
}

impl Fill for [u32] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for slot in self.iter_mut() {
            *slot = rng.next_u32();
        }
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: this stand-in uses the same generator for `StdRng`.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = r.gen_range(1..=255u8);
            assert!((1..=255).contains(&y));
            let z = r.gen_range(0..64u64);
            assert!(z < 64);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
