//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the slice of proptest this workspace uses: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, `any::<T>()`,
//! integer-range strategies, tuple strategies, `prop::collection::vec`,
//! `prop::array::uniform32`, `prop::bool::ANY`, [`ProptestConfig`], and
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name (fully reproducible, no
//! persistence files), and failing cases are reported without shrinking.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random source (xoshiro256++, seeded from the
/// test name and case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the generator for one test case.
    pub fn new(test_seed: u64, case: u64) -> Self {
        let mut sm = test_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// FNV-1a hash of a test name — the per-test seed.
pub fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runner configuration (stand-in for `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Maps generated values to a new strategy and draws from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Types with a canonical full-range strategy (stand-in for `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy for `T` — see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// A half-open length range for collection strategies; the
        /// `From` impls let call sites pass `8..64`, `1..=9`, or a bare
        /// count and have the literals infer `usize`, as with upstream.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi_exclusive: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi_exclusive: r.end }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
            }
        }

        /// A `Vec` strategy: length drawn from `len`, elements from `elem`.
        pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { elem, len: len.into() }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            len: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.hi_exclusive - self.len.lo) as u64;
                let n = self.len.lo + (rng.next_u64() % span) as usize;
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use crate::{Strategy, TestRng};

        /// A `[T; 32]` strategy drawing each element from `elem`.
        pub fn uniform32<S: Strategy>(elem: S) -> Uniform32<S> {
            Uniform32 { elem }
        }

        /// See [`uniform32`].
        pub struct Uniform32<S> {
            elem: S,
        }

        impl<S: Strategy> Strategy for Uniform32<S> {
            type Value = [S::Value; 32];
            fn generate(&self, rng: &mut TestRng) -> [S::Value; 32] {
                std::array::from_fn(|_| self.elem.generate(rng))
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// The strategy producing either boolean.
        pub struct AnyBool;

        /// Uniformly random booleans.
        pub const ANY: AnyBool = AnyBool;

        impl Strategy for AnyBool {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Asserts a condition inside a property (plain panic on failure; this
/// stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __seed = $crate::fnv(stringify!($name));
                let ($($arg,)+) = ($($strat,)+);
                for __case in 0..__config.cases as u64 {
                    let mut __rng = $crate::TestRng::new(__seed, __case);
                    let ($($arg,)+) = ($($crate::Strategy::generate(&$arg, &mut __rng),)+);
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(b == (b as u8 == 1));
        }

        #[test]
        fn vec_lengths_honour_range(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn maps_compose(y in (0u32..4).prop_map(|v| v * 10)) {
            prop_assert!(y % 10 == 0 && y < 40);
        }

        #[test]
        fn flat_maps_compose(z in (1usize..4).prop_flat_map(|n| prop::collection::vec(any::<bool>(), n..n + 1))) {
            prop_assert!(!z.is_empty() && z.len() < 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(1, 2);
        let mut b = crate::TestRng::new(1, 2);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
