//! Offline stand-in for `serde_json`.
//!
//! Emits deterministic JSON text from the vendored `serde` crate's
//! [`serde::Value`] tree. Object keys keep declaration order (the derive
//! emits fields in struct order), so the same value always produces
//! byte-identical output — a property the simulator's reproducibility
//! tests rely on.
//!
//! [`from_str`] parses JSON text back into a [`serde::Value`] tree. The
//! parse is *exact* for anything this crate emitted: floats are written
//! with Rust's shortest-round-trip formatting and read back with
//! `str::parse::<f64>`, so serialize → parse → serialize is the identity
//! on bytes. The sweep journal's crash-safe replay relies on this.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization/parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_seq(items, indent, depth, out),
        Value::Map(entries) => write_map(entries, indent, depth, out),
    }
}

/// JSON numbers must be finite; non-finite floats become `null` (matching
/// serde_json's lossy behaviour for formats without NaN).
fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{}` on f64 is the shortest representation that round-trips,
        // which is stable for a given bit pattern — determinism preserved.
        let s = format!("{x}");
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(items: &[Value], indent: Option<usize>, depth: usize, out: &mut String) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        write_value(item, indent, depth + 1, out);
    }
    newline_indent(indent, depth, out);
    out.push(']');
}

fn write_map(entries: &[(String, Value)], indent: Option<usize>, depth: usize, out: &mut String) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        write_string(k, out);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(v, indent, depth + 1, out);
    }
    newline_indent(indent, depth, out);
    out.push('}');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

/// Parses JSON text into a [`Value`] tree.
///
/// Integers without a fraction or exponent become [`Value::U64`] /
/// [`Value::I64`] (kept exact); any other number becomes [`Value::F64`]
/// via `str::parse`, which reconstructs the original bit pattern for
/// floats emitted by [`to_string`] / [`to_string_pretty`].
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected {:?} at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error(format!("invalid number bytes at {start}")))?;
        if float {
            let x: f64 =
                text.parse().map_err(|_| Error(format!("invalid float {text:?} at {start}")))?;
            return Ok(Value::F64(x));
        }
        if text.starts_with('-') {
            let n: i64 =
                text.parse().map_err(|_| Error(format!("invalid integer {text:?} at {start}")))?;
            Ok(Value::I64(n))
        } else {
            let n: u64 =
                text.parse().map_err(|_| Error(format!("invalid integer {text:?} at {start}")))?;
            Ok(Value::U64(n))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error(format!("invalid \\u escape {hex:?}")))?;
                            // The emitter only escapes control characters;
                            // surrogate pairs are out of scope here.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("invalid codepoint {code:#x}")))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("invalid escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Take the full UTF-8 scalar, not just one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error(format!("invalid UTF-8 at byte {}", self.pos)))?;
                    let c = rest.chars().next().expect("non-empty rest");
                    if (c as u32) < 0x20 {
                        return Err(Error(format!("raw control character at byte {}", self.pos)));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => return Err(Error(format!("expected ',' or ']', found {other:?}"))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => return Err(Error(format!("expected ',' or '}}', found {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn floats_always_carry_a_decimal_or_exponent() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Map(vec![("k".into(), Value::U64(7))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": 7\n}");
    }

    #[test]
    fn parse_round_trips_compact_and_pretty() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(u64::MAX)),
            ("b".into(), Value::I64(-42)),
            ("c".into(), Value::F64(0.1 + 0.2)),
            ("d".into(), Value::Str("q\"\\\nend".into())),
            ("e".into(), Value::Seq(vec![Value::Bool(false), Value::Null])),
            ("f".into(), Value::Map(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
        // Serialize → parse → serialize is the identity on bytes.
        assert_eq!(to_string(&from_str(&compact).unwrap()).unwrap(), compact);
    }

    #[test]
    fn parse_preserves_float_bits() {
        for x in [1.0, 0.5, 1e300, 1.0 / 3.0, f64::MIN_POSITIVE, 123_456_789.123_456_78] {
            let text = to_string(&x).unwrap();
            match from_str(&text).unwrap() {
                Value::F64(y) => assert_eq!(x.to_bits(), y.to_bits(), "{text}"),
                other => panic!("expected float for {text}, got {other:?}"),
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "nul", "1 2", "{\"a\":01x}"] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }
}
