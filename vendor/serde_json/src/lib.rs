//! Offline stand-in for `serde_json`.
//!
//! Emits deterministic JSON text from the vendored `serde` crate's
//! [`serde::Value`] tree. Object keys keep declaration order (the derive
//! emits fields in struct order), so the same value always produces
//! byte-identical output — a property the simulator's reproducibility
//! tests rely on.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error (this stand-in never fails; the type exists for
/// call-site compatibility).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_seq(items, indent, depth, out),
        Value::Map(entries) => write_map(entries, indent, depth, out),
    }
}

/// JSON numbers must be finite; non-finite floats become `null` (matching
/// serde_json's lossy behaviour for formats without NaN).
fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{}` on f64 is the shortest representation that round-trips,
        // which is stable for a given bit pattern — determinism preserved.
        let s = format!("{x}");
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(items: &[Value], indent: Option<usize>, depth: usize, out: &mut String) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        write_value(item, indent, depth + 1, out);
    }
    newline_indent(indent, depth, out);
    out.push(']');
}

fn write_map(entries: &[(String, Value)], indent: Option<usize>, depth: usize, out: &mut String) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        write_string(k, out);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(v, indent, depth + 1, out);
    }
    newline_indent(indent, depth, out);
    out.push('}');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn floats_always_carry_a_decimal_or_exponent() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Map(vec![("k".into(), Value::U64(7))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": 7\n}");
    }
}
