//! Offline stand-in for `serde_derive`.
//!
//! Provides `#[derive(Serialize)]` generating an impl of the vendored
//! `serde::Serialize` trait (conversion to `serde::Value`), and a
//! `#[derive(Deserialize)]` that expands to nothing (nothing in this
//! workspace deserializes). Supports the shapes the workspace uses:
//! named-field structs, tuple structs, unit structs, and fieldless enums.
//! No generics, no variant payloads — deriving on those is a compile
//! error rather than silent misbehaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code.parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error parses"),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<String>),
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if *id.to_string() == *"struct" => "struct",
        Some(TokenTree::Ident(id)) if *id.to_string() == *"enum" => "enum",
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive(Serialize) stand-in: generics on `{name}` unsupported"));
    }
    let shape = if kind == "struct" {
        match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => return Err(format!("unsupported struct body for `{name}`: {other:?}")),
        }
    } else {
        match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_unit_variants(g.stream(), &name)?)
            }
            other => return Err(format!("expected enum body for `{name}`, found {other:?}")),
        }
    };
    Ok(render(&name, &shape))
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the attribute body group
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if *id.to_string() == *"pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Extracts field names from a named-struct body, tolerating attributes,
/// visibility, and types containing angle brackets or grouped tokens.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        // Consume the type: everything up to a comma at angle depth 0.
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // the comma (or past the end)
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_tokens = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                fields += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        fields += 1;
    }
    fields
}

fn parse_unit_variants(stream: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name in `{name}`, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "derive(Serialize) stand-in: variant `{name}::{variant}` carries data, unsupported"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the comma.
                while let Some(t) = tokens.get(i) {
                    if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    i += 1;
                }
                i += 1;
            }
            None => {
                variants.push(variant);
                break;
            }
            other => return Err(format!("unexpected token after `{name}::{variant}`: {other:?}")),
        }
        variants.push(variant);
    }
    Ok(variants)
}

fn render(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Seq(vec![{}])", entries.join(", "))
        }
        Shape::Unit => "::serde::Value::Map(vec![])".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string())"))
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
}
