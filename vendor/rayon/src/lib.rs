//! Offline stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! Implements exactly the subset the workspace uses: a persistent
//! work-stealing thread pool built with [`ThreadPoolBuilder`],
//! `ThreadPool::install`, `ThreadPool::scope` with lifetime-scoped task
//! spawning, and parallel iteration over owned `Vec`s / borrowed slices
//! with `map`, `for_each` and `collect`.
//!
//! The pool keeps its workers alive for its whole lifetime. Each worker
//! owns a double-ended chunk queue; tasks spawned from a worker go to that
//! worker's queue (popped LIFO by the owner), tasks spawned from outside
//! the pool land in a shared injector, and an idle worker steals FIFO from
//! the front of its siblings' queues — so a skewed chunk's tail migrates
//! to whichever worker drains first. Parallel iterators split their input
//! into contiguous index chunks, and every result is written back **by
//! input index**, so output order always equals input order regardless of
//! how chunks get stolen — the property the sweep harness's
//! byte-identical-JSON guarantee rests on.
//!
//! A thread that waits for a scope to finish *helps*: it executes queued
//! tasks itself instead of blocking, so nested scopes on a saturated pool
//! cannot deadlock. Task panics are captured and re-thrown when the
//! owning scope joins, matching rayon's behaviour.
//!
//! [`current_num_threads`] reports the **installed** pool's size, and `1`
//! when no pool is installed: an uninstalled thread is serial, full stop.
//! (An earlier revision fell back to the host's parallelism, which let
//! code outside any pool silently fan out past the operator's `--jobs`
//! choice.)

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A lifetime-erased unit of work (see [`Scope::spawn`] for the erasure
/// safety argument).
type Task = Box<dyn FnOnce() + Send>;

/// `WORKER_INDEX` value on threads that are not pool workers.
const NOT_A_WORKER: usize = usize::MAX;

thread_local! {
    /// Thread count `install`ed on the current thread (0 = unset).
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
    /// Pool that parallel iterators on this thread dispatch into.
    static AMBIENT_POOL: RefCell<Option<Arc<PoolInner>>> = const { RefCell::new(None) };
    /// Deque index of the pool worker running this thread.
    static WORKER_INDEX: Cell<usize> = const { Cell::new(NOT_A_WORKER) };
}

/// Number of threads parallel iterators on this thread will use: the
/// installed pool's size, or 1 (serial) when no pool is installed.
pub fn current_num_threads() -> usize {
    let installed = CURRENT_THREADS.with(|c| c.get());
    if installed > 0 {
        installed
    } else {
        1
    }
}

/// Error returned by [`ThreadPoolBuilder::build`] (worker-thread spawn
/// failure).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (auto) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; 0 means "one per available CPU".
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool, spawning its persistent workers.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        let inner = Arc::new(PoolInner {
            deques: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            work_signal: Condvar::new(),
            shutdown: AtomicBool::new(false),
            num_threads: n,
        });
        let workers = (0..n)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tmcc-rayon-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .map_err(|_| ThreadPoolBuildError(()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ThreadPool { inner, workers })
    }
}

/// Shared state of one pool: the per-worker deques, the injector for
/// outside spawns, and the sleep/wake machinery.
struct PoolInner {
    /// One chunk deque per worker: the owner pushes and pops the back
    /// (LIFO keeps its cache warm); thieves steal from the front.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks spawned from threads outside the pool.
    injector: Mutex<VecDeque<Task>>,
    /// Wakes sleeping workers when work arrives (paired with `injector`).
    work_signal: Condvar,
    shutdown: AtomicBool,
    num_threads: usize,
}

impl PoolInner {
    /// Queues a task: onto the calling worker's own deque, or the
    /// injector when the caller is not a pool worker.
    fn push(&self, task: Task) {
        let w = WORKER_INDEX.with(|c| c.get());
        if w < self.deques.len() {
            self.deques[w].lock().expect("deque lock").push_back(task);
        } else {
            self.injector.lock().expect("injector lock").push_back(task);
        }
        // One task, one wakeup: notify_all here turns a fine-grained
        // spawn stream (thousands of tenant quanta per round) into a
        // futex storm that wakes every idle worker per push. A stranded
        // wakeup is bounded by the workers' timed wait.
        self.work_signal.notify_one();
    }

    /// Next task for the thread at deque `index` (pass [`NOT_A_WORKER`]
    /// for helper threads): own deque's back, then the injector, then
    /// stealing the front of each sibling deque.
    fn find_task(&self, index: usize) -> Option<Task> {
        if index < self.deques.len() {
            if let Some(t) = self.deques[index].lock().expect("deque lock").pop_back() {
                return Some(t);
            }
        }
        if let Some(t) = self.injector.lock().expect("injector lock").pop_front() {
            return Some(t);
        }
        for (victim, deque) in self.deques.iter().enumerate() {
            if victim == index {
                continue;
            }
            if let Some(t) = deque.lock().expect("deque lock").pop_front() {
                return Some(t);
            }
        }
        None
    }
}

/// Runs one queued task with this pool installed, so the task's own
/// nested parallel iterators dispatch back into the same pool no matter
/// which thread (worker or helping waiter) picked it up.
fn run_task(inner: &Arc<PoolInner>, task: Task) {
    let _install = InstallGuard::enter(inner);
    task();
}

/// RAII for `install`-style thread-local state: restores the previous
/// pool/thread-count even if the guarded code unwinds.
struct InstallGuard {
    prev_threads: usize,
    prev_pool: Option<Arc<PoolInner>>,
}

impl InstallGuard {
    fn enter(inner: &Arc<PoolInner>) -> Self {
        let prev_threads = CURRENT_THREADS.with(|c| c.replace(inner.num_threads));
        let prev_pool = AMBIENT_POOL.with(|p| p.borrow_mut().replace(Arc::clone(inner)));
        Self { prev_threads, prev_pool }
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT_THREADS.with(|c| c.set(self.prev_threads));
        AMBIENT_POOL.with(|p| *p.borrow_mut() = self.prev_pool.take());
    }
}

fn worker_loop(inner: &Arc<PoolInner>, index: usize) {
    WORKER_INDEX.with(|c| c.set(index));
    loop {
        if let Some(task) = inner.find_task(index) {
            run_task(inner, task);
            continue;
        }
        let guard = inner.injector.lock().expect("injector lock");
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        if !guard.is_empty() {
            continue;
        }
        // Timed wait: a push onto a *sibling deque* between our scan and
        // this wait would fire the signal before we listen; the timeout
        // bounds that race instead of a heavier two-phase sleep protocol.
        let _ = inner.work_signal.wait_timeout(guard, Duration::from_millis(5));
    }
}

/// Join state of one `scope` call.
struct ScopeState {
    /// Spawned-but-unfinished task count.
    remaining: AtomicUsize,
    /// First captured panic payload, re-thrown at scope exit.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Signals `remaining == 0` (paired with `done_lock`).
    done_lock: Mutex<()>,
    done_signal: Condvar,
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`]. Tasks may
/// borrow anything that outlives `'scope`; the scope call does not return
/// until every spawned task has finished.
pub struct Scope<'scope> {
    inner: Arc<PoolInner>,
    state: Arc<ScopeState>,
    /// Invariant over `'scope` (as in rayon), so the compiler cannot
    /// shrink the lifetime the spawned closures' captures must outlive.
    marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `f` on the pool. Panics inside `f` are captured and
    /// re-thrown when the scope joins.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.remaining.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let wrapper = move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().expect("panic slot");
                slot.get_or_insert(payload);
            }
            if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _guard = state.done_lock.lock().expect("done lock");
                state.done_signal.notify_all();
            }
        };
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(wrapper);
        // SAFETY: `scope_on` blocks until `remaining` reaches zero, i.e.
        // until this closure has run to completion, so every `'scope`
        // borrow it captures strictly outlives its execution. The
        // lifetime is erased only to store the task in the pool's
        // `'static` deques.
        let task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(task)
        };
        self.inner.push(task);
    }
}

/// Runs `op` with a [`Scope`] on `inner`, then waits for every spawned
/// task — executing queued tasks itself while it waits, so nested scopes
/// cannot deadlock the pool.
fn scope_on<'scope, OP, R>(inner: &Arc<PoolInner>, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let state = Arc::new(ScopeState {
        remaining: AtomicUsize::new(0),
        panic: Mutex::new(None),
        done_lock: Mutex::new(()),
        done_signal: Condvar::new(),
    });
    let scope = Scope { inner: Arc::clone(inner), state: Arc::clone(&state), marker: PhantomData };
    // Even if `op` itself panics, already-spawned tasks still borrow the
    // caller's stack — the join below must happen before we unwind.
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    let helper_index = WORKER_INDEX.with(|c| c.get());
    while state.remaining.load(Ordering::Acquire) > 0 {
        if let Some(task) = inner.find_task(helper_index) {
            run_task(inner, task);
        } else {
            let guard = state.done_lock.lock().expect("done lock");
            if state.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            let _ = state.done_signal.wait_timeout(guard, Duration::from_micros(500));
        }
    }
    match result {
        Ok(r) => {
            if let Some(payload) = state.panic.lock().expect("panic slot").take() {
                resume_unwind(payload);
            }
            r
        }
        Err(payload) => resume_unwind(payload),
    }
}

/// A fixed-size pool of persistent work-stealing workers.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool").field("num_threads", &self.inner.num_threads).finish()
    }
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.inner.num_threads
    }

    /// Runs `op` with this pool as the ambient pool: parallel iterators
    /// inside `op` dispatch onto this pool's workers.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let _install = InstallGuard::enter(&self.inner);
        op()
    }

    /// Runs `op` with a [`Scope`] that spawns tasks onto this pool, and
    /// returns once `op` *and every spawned task* have finished. The
    /// calling thread helps execute queued tasks while it waits.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        scope_on(&self.inner, op)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.inner.injector.lock().expect("injector lock");
            self.inner.work_signal.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Whether fanning work out to pool workers can actually overlap with
/// the caller. On a single-core host every worker wakeup is a forced
/// context switch, so dispatch degrades into pure overhead (measured
/// ~1.4x wall on thousand-tenant rounds): the caller's thread runs the
/// items inline instead. Results are byte-identical either way — the
/// chunked path commits in input order — so this is a latency decision
/// only. Cached because `available_parallelism` is a syscall.
fn dispatch_worthwhile() -> bool {
    static WORTHWHILE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *WORTHWHILE
        .get_or_init(|| std::thread::available_parallelism().map(|n| n.get() > 1).unwrap_or(false))
}

/// Drives `f` over `items` on the ambient pool as stealable contiguous
/// chunks; results come back in input order.
fn drive<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let threads = current_num_threads();
    let n = items.len();
    let pool = AMBIENT_POOL.with(|p| p.borrow().clone());
    let Some(pool) = pool.filter(|_| threads > 1 && n > 1 && dispatch_worthwhile()) else {
        return items.into_iter().map(f).collect();
    };
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // A few chunks per worker, so a slow chunk's siblings are stealable.
    let chunk = n.div_ceil(threads * 4).max(1);
    scope_on(&pool, |scope| {
        let slots = &slots;
        let out = &out;
        for start in (0..n).step_by(chunk) {
            let end = (start + chunk).min(n);
            scope.spawn(move || {
                for i in start..end {
                    let item = slots[i].lock().expect("slot lock").take().expect("item taken once");
                    *out[i].lock().expect("out lock") = Some(f(item));
                }
            });
        }
    });
    out.into_iter().map(|m| m.into_inner().expect("out lock").expect("worker wrote")).collect()
}

/// A parallel iterator (eager, index-ordered).
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    /// Executes the pipeline, returning items in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps each item through `f` (applied in parallel at drive time).
    fn map<R: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Applies `f` to every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.map(f).drive();
    }

    /// Collects the (input-ordered) results.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }
}

/// Root parallel iterator over owned items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        // No map stage: nothing to parallelize.
        self.items
    }
}

/// `map` adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        drive(self.base.drive(), &self.f)
    }
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;

    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

/// `par_iter` over borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: Send + 'a;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IntoParIter<&'a T>;

    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IntoParIter<&'a T>;

    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter { items: self.iter().collect() }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_collect_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(8).build().expect("pool");
        let input: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = pool.install(|| input.into_par_iter().map(|x| x * 2).collect());
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let f = |x: u64| x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        let input: Vec<u64> = (0..257).collect();
        let serial = ThreadPoolBuilder::new().num_threads(1).build().expect("pool");
        let parallel = ThreadPoolBuilder::new().num_threads(8).build().expect("pool");
        let a: Vec<u64> = serial.install(|| input.clone().into_par_iter().map(f).collect());
        let b: Vec<u64> = parallel.install(|| input.into_par_iter().map(f).collect());
        assert_eq!(a, b);
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1u32, 2, 3];
        let pool = ThreadPoolBuilder::new().num_threads(2).build().expect("pool");
        let sum: Vec<u32> = pool.install(|| v.par_iter().map(|&x| x + 1).collect());
        assert_eq!(sum, vec![2, 3, 4]);
        assert_eq!(v.len(), 3); // still usable
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().expect("pool");
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn for_each_runs_every_item() {
        let hits = AtomicU64::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        pool.install(|| {
            (0..50u64).collect::<Vec<_>>().into_par_iter().for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn uninstalled_threads_are_serial() {
        // The fallback must be 1 — an uninstalled thread never fans out to
        // the host's parallelism. Run on a fresh thread so other tests'
        // thread-locals can't leak in.
        let n = std::thread::spawn(current_num_threads).join().expect("join");
        assert_eq!(n, 1);
    }

    #[test]
    fn installed_count_is_authoritative_inside_tasks() {
        // Pool tasks see the *pool's* size — not the host's CPU count —
        // wherever they execute (worker or helping waiter).
        let pool = ThreadPoolBuilder::new().num_threads(3).build().expect("pool");
        let seen = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                seen.store(current_num_threads(), Ordering::Release);
            });
        });
        assert_eq!(seen.load(Ordering::Acquire), 3);
    }

    #[test]
    fn scope_joins_borrowed_tasks() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for i in 0..32u64 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (0..32).sum::<u64>());
    }

    #[test]
    fn scope_propagates_task_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().expect("pool");
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task boom"));
            });
        }));
        assert!(r.is_err(), "task panic must re-throw at the scope join");
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // More outer tasks than workers, each running an inner scope: the
        // waiters must help drain the queues instead of blocking.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().expect("pool");
        let hits = AtomicU64::new(0);
        pool.scope(|outer| {
            for _ in 0..6 {
                let hits = &hits;
                let pool = &pool;
                outer.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                hits.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 24);
    }

    #[test]
    fn stolen_chunks_keep_input_order() {
        // Skew the per-item cost so early chunks outlive later ones and
        // stealing definitely happens; order must still hold.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        let input: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = pool.install(|| {
            input
                .into_par_iter()
                .map(|x| {
                    if x < 4 {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    x * 3
                })
                .collect()
        });
        assert_eq!(out, (0..64).map(|x| x * 3).collect::<Vec<_>>());
    }
}
