//! Offline stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! Implements exactly the subset the workspace uses: a fixed-size thread
//! pool built with [`ThreadPoolBuilder`], `ThreadPool::install`, and
//! parallel iteration over owned `Vec`s / borrowed slices with `map`,
//! `for_each` and `collect`.
//!
//! Unlike real rayon there is no work stealing and no global pool reuse:
//! each parallel-iterator drive spawns scoped worker threads that pull
//! item indices from a shared atomic counter. Results are written back by
//! index, so **output order always equals input order** regardless of how
//! the OS schedules the workers — the property the sweep harness's
//! byte-identical-JSON guarantee rests on. Worker panics propagate to the
//! caller when the scope joins, matching rayon's behaviour.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Thread count `install`ed on the current thread (0 = unset).
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads parallel iterators on this thread will use.
pub fn current_num_threads() -> usize {
    let installed = CURRENT_THREADS.with(|c| c.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Error returned by [`ThreadPoolBuilder::build`] (the stand-in never
/// actually fails; the type exists for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (auto) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; 0 means "one per available CPU".
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A fixed-size thread pool.
///
/// The stand-in keeps no persistent worker threads; the pool is a
/// capacity that `install` scopes onto the calling thread and that
/// parallel iterators consult when spawning their scoped workers.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool as the ambient pool: parallel iterators
    /// inside `op` use `self.num_threads` workers.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let prev = CURRENT_THREADS.with(|c| c.replace(self.num_threads));
        let result = op();
        CURRENT_THREADS.with(|c| c.set(prev));
        result
    }
}

/// Drives `f` over `items` on `threads` scoped workers; results come back
/// in input order.
fn drive<T: Send, R: Send>(items: Vec<T>, threads: usize, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().expect("slot lock").take().expect("item taken once");
                let r = f(item);
                *out[i].lock().expect("out lock") = Some(r);
            });
        }
    });
    out.into_iter().map(|m| m.into_inner().expect("out lock").expect("worker wrote")).collect()
}

/// A parallel iterator (eager, index-ordered).
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    /// Executes the pipeline, returning items in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps each item through `f` (applied in parallel at drive time).
    fn map<R: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Applies `f` to every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.map(f).drive();
    }

    /// Collects the (input-ordered) results.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }
}

/// Root parallel iterator over owned items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        // No map stage: nothing to parallelize.
        self.items
    }
}

/// `map` adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        drive(self.base.drive(), current_num_threads(), &self.f)
    }
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;

    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

/// `par_iter` over borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: Send + 'a;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IntoParIter<&'a T>;

    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IntoParIter<&'a T>;

    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter { items: self.iter().collect() }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(8).build().expect("pool");
        let input: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = pool.install(|| input.into_par_iter().map(|x| x * 2).collect());
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let f = |x: u64| x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        let input: Vec<u64> = (0..257).collect();
        let serial = ThreadPoolBuilder::new().num_threads(1).build().expect("pool");
        let parallel = ThreadPoolBuilder::new().num_threads(8).build().expect("pool");
        let a: Vec<u64> = serial.install(|| input.clone().into_par_iter().map(f).collect());
        let b: Vec<u64> = parallel.install(|| input.into_par_iter().map(f).collect());
        assert_eq!(a, b);
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1u32, 2, 3];
        let pool = ThreadPoolBuilder::new().num_threads(2).build().expect("pool");
        let sum: Vec<u32> = pool.install(|| v.par_iter().map(|&x| x + 1).collect());
        assert_eq!(sum, vec![2, 3, 4]);
        assert_eq!(v.len(), 3); // still usable
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().expect("pool");
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::AtomicU64;
        let hits = AtomicU64::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        pool.install(|| {
            (0..50u64).collect::<Vec<_>>().into_par_iter().for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }
}
