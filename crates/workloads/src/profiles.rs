//! Per-workload calibrated profiles.
//!
//! One [`WorkloadProfile`] per paper workload, combining:
//!
//! * the **paper footprint** (Table IV col A) and a **scaled simulated
//!   footprint** — scaled so simulations finish on a laptop while every
//!   footprint still exceeds the TLB's 8 MiB and the CTE caches' reach by
//!   a large factor, preserving miss-rate relationships;
//! * an [`AccessPattern`] tuned per workload: `shortestPath` and `canneal`
//!   are the most memory-intensive and CTE-cache-hostile (they gain most
//!   in Fig. 17), `kcore` and `triangleCount` have hot working sets that
//!   fit the CTE cache (they gain least);
//! * a [`ContentProfile`] whose real compressibility matches the
//!   workload's Table IV / Fig. 15 compression ratios.

use crate::access::{AccessPattern, AccessStream};
use crate::content::{ContentProfile, PageContent};

/// Which suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// IBM GraphBIG kernels over the datagen-8_5-fb-like graph.
    GraphBig,
    /// SPEC CPU2017 (mcf, omnetpp — single-threaded, run as 4 instances).
    Spec,
    /// PARSEC 3.0.
    Parsec,
    /// The §VII "smaller workloads" sensitivity suite.
    Small,
    /// The §VIII bandwidth-intensive interleaving suite.
    Bandwidth,
    /// Synthetic key-value serving tenants (Zipf-skewed key popularity)
    /// for the multi-tenant scenarios.
    KeyValue,
}

/// A fully calibrated synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Paper name of the workload.
    pub name: &'static str,
    /// Suite.
    pub class: WorkloadClass,
    /// Paper memory footprint in GB (Table IV col A; approximate for the
    /// small suite).
    pub paper_footprint_gb: f64,
    /// Simulated footprint in 4 KiB pages.
    pub sim_pages: u64,
    /// Access-stream parameters.
    pub pattern: AccessPattern,
    /// Page-content mixture.
    pub content: ContentProfile,
}

impl WorkloadProfile {
    /// The twelve large/irregular workloads of Figs. 1/2/16/17 and
    /// Table IV, in the paper's order.
    pub fn large_suite() -> Vec<Self> {
        let graph = |name: &'static str, pattern: AccessPattern| WorkloadProfile {
            name,
            class: WorkloadClass::GraphBig,
            paper_footprint_gb: 106.0,
            sim_pages: 65_536, // 256 MiB
            pattern,
            content: ContentProfile::graph_analytics(),
        };
        // Baseline irregular graph pattern.
        let base = AccessPattern::irregular();
        // Hot-set-friendly kernels (low CTE miss rate, Fig. 2):
        let local = AccessPattern {
            p_hot: 0.72,
            hot_fraction: 0.018, // ~1.2K hot pages: inside CTE$ reach
            p_seq: 0.16,
            warm_fraction: 0.12,
            tail_fraction: 0.01,
            mean_work_cycles: 10,
            ..base
        };
        // Bandwidth-hungry, cache-hostile kernels:
        let hostile = AccessPattern {
            p_hot: 0.18,
            p_seq: 0.18,
            hot_fraction: 0.01,
            mean_work_cycles: 3,
            ..base
        };
        vec![
            graph("pageRank", AccessPattern { mean_work_cycles: 5, ..base }),
            graph("graphColoring", base),
            graph("connComp", base),
            graph("degCentr", AccessPattern { p_seq: 0.35, ..base }),
            graph("shortestPath", hostile),
            graph("bfs", AccessPattern { p_hot: 0.3, ..base }),
            graph("dfs", AccessPattern { p_hot: 0.28, p_seq: 0.2, ..base }),
            graph("kcore", local),
            graph("triangleCount", AccessPattern { hot_fraction: 0.022, ..local }),
            WorkloadProfile {
                name: "mcf",
                class: WorkloadClass::Spec,
                paper_footprint_gb: 15.0,
                sim_pages: 24_576, // 96 MiB
                pattern: AccessPattern {
                    p_seq: 0.12,
                    p_hot: 0.30,
                    hot_fraction: 0.015,
                    seq_run_blocks: 8,
                    write_fraction: 0.22,
                    warm_fraction: 0.15,
                    tail_fraction: 0.02,
                    mean_work_cycles: 6,
                    zipf_theta: 0.0,
                },
                content: ContentProfile::mcf(),
            },
            WorkloadProfile {
                name: "omnetpp",
                class: WorkloadClass::Spec,
                paper_footprint_gb: 1.0,
                sim_pages: 16_384, // 64 MiB
                pattern: AccessPattern {
                    p_seq: 0.22,
                    p_hot: 0.42,
                    hot_fraction: 0.03,
                    seq_run_blocks: 12,
                    write_fraction: 0.3,
                    // omnetpp's simulation working set is small relative
                    // to its footprint; at iso-savings budgets most of the
                    // footprint must be ML2-resident without thrash.
                    warm_fraction: 0.15,
                    tail_fraction: 0.015,
                    mean_work_cycles: 8,
                    zipf_theta: 0.0,
                },
                content: ContentProfile::omnetpp(),
            },
            WorkloadProfile {
                name: "canneal",
                class: WorkloadClass::Parsec,
                paper_footprint_gb: 1.1,
                sim_pages: 18_432, // 72 MiB
                pattern: AccessPattern {
                    p_seq: 0.08,
                    p_hot: 0.15,
                    hot_fraction: 0.01,
                    seq_run_blocks: 4,
                    write_fraction: 0.35,
                    warm_fraction: 0.25,
                    tail_fraction: 0.03,
                    mean_work_cycles: 3,
                    zipf_theta: 0.0,
                },
                content: ContentProfile::canneal(),
            },
        ]
    }

    /// The §VII small-workload suite (remaining PARSEC + RocksDB).
    pub fn small_suite() -> Vec<Self> {
        let small =
            |name: &'static str, content: ContentProfile, pattern: AccessPattern| WorkloadProfile {
                name,
                class: WorkloadClass::Small,
                paper_footprint_gb: 0.3,
                sim_pages: 6_144, // 24 MiB: "small and regular"
                pattern,
                content,
            };
        let regular = AccessPattern { warm_fraction: 0.28, ..AccessPattern::streaming() };
        vec![
            small("blackscholes", ContentProfile::highly_compressible(), regular),
            small("bodytrack", ContentProfile::omnetpp(), AccessPattern { p_seq: 0.7, ..regular }),
            small(
                "freqmine",
                ContentProfile::graph_analytics(),
                AccessPattern { p_hot: 0.4, hot_fraction: 0.08, ..regular },
            ),
            small("swaptions", ContentProfile::highly_compressible(), regular),
            small("streamcluster", ContentProfile::mcf(), AccessPattern { p_seq: 0.85, ..regular }),
            small(
                "rocksdb",
                ContentProfile::mcf(),
                AccessPattern {
                    p_seq: 0.4,
                    p_hot: 0.35,
                    hot_fraction: 0.05,
                    seq_run_blocks: 24,
                    write_fraction: 0.3,
                    warm_fraction: 0.4,
                    tail_fraction: 0.015,
                    mean_work_cycles: 6,
                    zipf_theta: 0.0,
                },
            ),
        ]
    }

    /// The §VIII bandwidth-intensive suite used for the interleaving study
    /// (workloads from the paper's reference [60]).
    pub fn bandwidth_suite() -> Vec<Self> {
        let bw = |name: &'static str, p_seq: f64, work: u32| WorkloadProfile {
            name,
            class: WorkloadClass::Bandwidth,
            paper_footprint_gb: 4.0,
            sim_pages: 32_768,
            pattern: AccessPattern {
                p_seq,
                p_hot: 0.1,
                hot_fraction: 0.02,
                seq_run_blocks: 64,
                write_fraction: 0.35,
                warm_fraction: 0.5,
                tail_fraction: 0.01,
                mean_work_cycles: work,
                zipf_theta: 0.0,
            },
            content: ContentProfile::graph_analytics(),
        };
        vec![
            bw("stream", 0.95, 1),
            bw("sp_D", 0.25, 1),
            bw("hpcg", 0.55, 2),
            bw("lulesh", 0.7, 2),
            bw("miniFE", 0.6, 2),
            bw("gups", 0.05, 1),
        ]
    }

    /// The key-value serving tenants used by the multi-tenant (`mt_*`)
    /// scenarios: Zipf-skewed point lookups shaped like a memcached/LSM
    /// serving tier, not drawn from the paper (which never measured
    /// contention).
    pub fn kv_suite() -> Vec<Self> {
        let kv = |name: &'static str,
                  content: ContentProfile,
                  pattern: AccessPattern|
         -> WorkloadProfile {
            WorkloadProfile {
                name,
                class: WorkloadClass::KeyValue,
                paper_footprint_gb: 0.0, // not a paper workload
                sim_pages: 6_144,        // 24 MiB per tenant
                pattern,
                content,
            }
        };
        vec![
            // The common case: skewed point lookups over compressible
            // serving data.
            kv("kv_zipf", ContentProfile::graph_analytics(), AccessPattern::zipfian_kv(0.8)),
            // A cache-tier tenant: most traffic pinned to a hot tier.
            kv(
                "kv_cache",
                ContentProfile::omnetpp(),
                AccessPattern { p_hot: 0.55, hot_fraction: 0.03, ..AccessPattern::zipfian_kv(0.7) },
            ),
            // A scan-heavy analytical tenant (range queries).
            kv(
                "kv_scan",
                ContentProfile::mcf(),
                AccessPattern { p_seq: 0.5, seq_run_blocks: 32, ..AccessPattern::zipfian_kv(0.6) },
            ),
            // The adversary: near-uniform churn over poorly compressible
            // values, write-heavy, barely any compute between requests.
            kv(
                "kv_hostile",
                ContentProfile::canneal(),
                AccessPattern {
                    p_seq: 0.04,
                    p_hot: 0.10,
                    warm_fraction: 0.55,
                    tail_fraction: 0.05,
                    write_fraction: 0.45,
                    mean_work_cycles: 3,
                    ..AccessPattern::zipfian_kv(0.2)
                },
            ),
        ]
    }

    /// Finds a workload by paper name across every suite.
    pub fn by_name(name: &str) -> Option<Self> {
        Self::large_suite()
            .into_iter()
            .chain(Self::small_suite())
            .chain(Self::bandwidth_suite())
            .chain(Self::kv_suite())
            .find(|w| w.name == name)
    }

    /// Instantiates the access stream for this workload.
    pub fn stream(&self, seed: u64) -> AccessStream {
        AccessStream::new(self.pattern, self.sim_pages, seed)
    }

    /// Instantiates the page-content source for this workload.
    pub fn page_content(&self, seed: u64) -> PageContent {
        PageContent::new(self.content.clone(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_large_workloads_in_paper_order() {
        let names: Vec<&str> = WorkloadProfile::large_suite().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            [
                "pageRank",
                "graphColoring",
                "connComp",
                "degCentr",
                "shortestPath",
                "bfs",
                "dfs",
                "kcore",
                "triangleCount",
                "mcf",
                "omnetpp",
                "canneal"
            ]
        );
    }

    #[test]
    fn footprints_exceed_tlb_and_cte_reach() {
        // TLB: 2048 pages. TMCC CTE$: 8192 pages. Compresso CTE$: 2048.
        // The *warm* (actively touched) region must exceed the TLB's and
        // Compresso's reach so translation misses occur; the footprint
        // must exceed TMCC's CTE reach.
        for w in WorkloadProfile::large_suite() {
            let warm = (w.sim_pages as f64 * w.pattern.warm_fraction) as u64;
            assert!(warm > 2048, "{} warm set {warm} within TLB/CTE reach", w.name);
            assert!(
                w.sim_pages > 8192,
                "{} footprint {} within TMCC CTE$ reach",
                w.name,
                w.sim_pages
            );
        }
    }

    #[test]
    fn hot_sets_of_local_kernels_fit_cte_cache() {
        let kcore = WorkloadProfile::by_name("kcore").unwrap();
        let hot_pages = (kcore.sim_pages as f64 * kcore.pattern.hot_fraction) as u64;
        assert!(hot_pages < 8192, "kcore hot set must fit TMCC CTE$");
    }

    #[test]
    fn by_name_finds_all_suites() {
        assert!(WorkloadProfile::by_name("shortestPath").is_some());
        assert!(WorkloadProfile::by_name("rocksdb").is_some());
        assert!(WorkloadProfile::by_name("hpcg").is_some());
        assert!(WorkloadProfile::by_name("kv_zipf").is_some());
        assert!(WorkloadProfile::by_name("nonexistent").is_none());
    }

    #[test]
    fn kv_suite_is_zipf_skewed_except_the_adversary() {
        let suite = WorkloadProfile::kv_suite();
        assert_eq!(suite.len(), 4);
        for w in &suite {
            assert_eq!(w.class, WorkloadClass::KeyValue);
            assert!(w.pattern.zipf_theta > 0.0, "{} must be zipfian", w.name);
        }
        let theta = |n: &str| suite.iter().find(|w| w.name == n).unwrap().pattern.zipf_theta;
        // The hostile tenant spreads its traffic nearly uniformly.
        assert!(theta("kv_hostile") < theta("kv_zipf"));
    }

    #[test]
    fn streams_are_reproducible() {
        let w = WorkloadProfile::by_name("pageRank").unwrap();
        let mut a = w.stream(1);
        let mut b = w.stream(1);
        assert_eq!(a.take_accesses(64), b.take_accesses(64));
    }

    #[test]
    fn memory_intensity_ordering_matches_fig16() {
        // shortestPath and canneal are the most access-intensive.
        let suite = WorkloadProfile::large_suite();
        let work = |n: &str| {
            suite
                .iter()
                .find(|w| w.name == n)
                .map(|w| w.pattern.mean_work_cycles)
                .expect("workload present")
        };
        assert!(work("shortestPath") <= work("pageRank"));
        assert!(work("canneal") <= work("kcore"));
    }
}
