//! Page-content generation.
//!
//! The capacity side of every experiment depends on how well resident
//! pages compress under (a) block-level compression (Compresso / ML1) and
//! (b) page-level Deflate (TMCC's ML2) — Fig. 15 and Table IV cols D/E.
//! This module synthesizes page bytes from a small set of **templates**
//! whose real compressibility under this repo's actual codecs spans the
//! regimes real memory dumps exhibit, and mixes them per workload
//! ([`ContentProfile`]).
//!
//! Pages are generated deterministically from `(workload seed, page
//! index)`, so the simulator can regenerate any page at any time without
//! storing multi-GiB images.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tmcc_types::addr::PAGE_SIZE;

/// A content regime with known compressibility characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PageTemplate {
    /// Mostly zero bytes with `density` scattered nonzero values —
    /// untouched heap tails, sparse matrices. Compresses under everything.
    Sparse {
        /// Fraction of nonzero bytes (0..1).
        density: f64,
    },
    /// Repetitions of `vocab` distinct `record_len`-byte records in random
    /// order — serialized objects, adjacency metadata. Deflate finds the
    /// repeats; 64 B block codecs mostly cannot.
    RecordPack {
        /// Number of distinct records.
        vocab: u16,
        /// Record length in bytes.
        record_len: u16,
    },
    /// 8-byte pointers sharing their high 5 bytes — pointer-dense nodes.
    /// Both BDI and Deflate do well.
    Pointers,
    /// 4-byte integers in a narrow range — counters, indices. BDI-friendly.
    SmallInts {
        /// Range of the integers.
        span: u32,
    },
    /// Doubles with a handful of exponents and random mantissas — numeric
    /// state. Deflate gets a little; block codecs almost nothing.
    FloatLike,
    /// Words from a tiny vocabulary — logs, symbol tables. Deflate-only.
    TextLike,
    /// Uniform random bytes — encrypted/compressed/hashed content.
    Random,
}

impl PageTemplate {
    fn fill(self, rng: &mut SmallRng, page: &mut [u8]) {
        match self {
            PageTemplate::Sparse { density } => {
                let n = (page.len() as f64 * density) as usize;
                for _ in 0..n {
                    let i = rng.gen_range(0..page.len());
                    page[i] = rng.gen_range(1..=255);
                }
            }
            PageTemplate::RecordPack { vocab, record_len } => {
                let rl = record_len.max(8) as usize;
                let v = vocab.max(1) as usize;
                let records: Vec<Vec<u8>> =
                    (0..v).map(|_| (0..rl).map(|_| rng.gen()).collect()).collect();
                let mut pos = 0;
                while pos < page.len() {
                    let r = &records[rng.gen_range(0..v)];
                    let n = r.len().min(page.len() - pos);
                    page[pos..pos + n].copy_from_slice(&r[..n]);
                    pos += n;
                }
            }
            PageTemplate::Pointers => {
                let base: u64 = 0x0000_7f00_0000_0000 | (rng.gen::<u64>() & 0xffff_f000);
                for chunk in page.chunks_exact_mut(8) {
                    let p = base + (rng.gen::<u64>() & 0xf_ffff) * 8;
                    chunk.copy_from_slice(&p.to_le_bytes());
                }
            }
            PageTemplate::SmallInts { span } => {
                let base: u32 = rng.gen_range(0..1 << 20);
                for chunk in page.chunks_exact_mut(4) {
                    let v = base + rng.gen_range(0..span.max(1));
                    chunk.copy_from_slice(&v.to_le_bytes());
                }
            }
            PageTemplate::FloatLike => {
                let exps: Vec<u16> = (0..4).map(|_| 0x3ff0 | rng.gen_range(0u16..16)).collect();
                for chunk in page.chunks_exact_mut(8) {
                    let mantissa: u64 = rng.gen::<u64>() & 0x000f_ffff_ffff_ffff;
                    let exp = exps[rng.gen_range(0..exps.len())] as u64;
                    let bits = (exp << 48) | mantissa;
                    chunk.copy_from_slice(&bits.to_le_bytes());
                }
            }
            PageTemplate::TextLike => {
                const WORDS: &[&[u8]] = &[
                    b"vertex ",
                    b"edge ",
                    b"weight=",
                    b"0.125 ",
                    b"node_",
                    b"visited ",
                    b"queue ",
                    b"status=ok ",
                    b"[info] ",
                    b"update ",
                ];
                let mut pos = 0;
                while pos < page.len() {
                    let w = WORDS[rng.gen_range(0..WORDS.len())];
                    let n = w.len().min(page.len() - pos);
                    page[pos..pos + n].copy_from_slice(&w[..n]);
                    pos += n;
                }
            }
            PageTemplate::Random => {
                rng.fill(page);
            }
        }
    }
}

/// A per-workload mixture of templates.
///
/// # Examples
///
/// ```
/// use tmcc_workloads::{ContentProfile, PageContent};
///
/// let profile = ContentProfile::graph_analytics();
/// let content = PageContent::new(profile, 99);
/// let a = content.page_bytes(7);
/// assert_eq!(a, content.page_bytes(7), "deterministic");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ContentProfile {
    templates: Vec<(PageTemplate, f64)>,
}

impl ContentProfile {
    /// Builds a profile from `(template, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `templates` is empty or weights are not positive.
    pub fn new(templates: Vec<(PageTemplate, f64)>) -> Self {
        assert!(!templates.is_empty(), "profile needs at least one template");
        assert!(templates.iter().all(|&(_, w)| w > 0.0), "weights must be positive");
        Self { templates }
    }

    /// GraphBIG-like: adjacency records + sparse + pointers.
    /// Calibrated to Deflate ≈ 3×, block-level ≈ 1.3× (Table IV rows 1-9).
    pub fn graph_analytics() -> Self {
        Self::new(vec![
            (PageTemplate::RecordPack { vocab: 8, record_len: 48 }, 0.44),
            (PageTemplate::Sparse { density: 0.08 }, 0.26),
            (PageTemplate::Pointers, 0.12),
            (PageTemplate::TextLike, 0.08),
            (PageTemplate::Random, 0.10),
        ])
    }

    /// mcf-like: pointer-and-cost records, little block-level structure.
    /// Calibrated to Deflate ≈ 2.5×, block ≈ 1.1×.
    pub fn mcf() -> Self {
        Self::new(vec![
            (PageTemplate::RecordPack { vocab: 10, record_len: 40 }, 0.62),
            (PageTemplate::SmallInts { span: 4000 }, 0.12),
            (PageTemplate::Sparse { density: 0.05 }, 0.08),
            (PageTemplate::FloatLike, 0.04),
            (PageTemplate::Random, 0.14),
        ])
    }

    /// omnetpp-like: small integers and message text. BDI does unusually
    /// well (block ≈ 1.6×), Deflate ≈ 2.5×.
    pub fn omnetpp() -> Self {
        Self::new(vec![
            (PageTemplate::Sparse { density: 0.05 }, 0.50),
            (PageTemplate::RecordPack { vocab: 8, record_len: 36 }, 0.24),
            (PageTemplate::Random, 0.26),
        ])
    }

    /// canneal-like: netlist elements, mostly high-entropy. Deflate ≈ 1.5×,
    /// block ≈ 1.15×.
    pub fn canneal() -> Self {
        Self::new(vec![
            (PageTemplate::Random, 0.42),
            (PageTemplate::FloatLike, 0.18),
            (PageTemplate::RecordPack { vocab: 10, record_len: 32 }, 0.30),
            (PageTemplate::Sparse { density: 0.05 }, 0.10),
        ])
    }

    /// Highly compressible (blackscholes-like option records).
    pub fn highly_compressible() -> Self {
        Self::new(vec![
            (PageTemplate::RecordPack { vocab: 12, record_len: 40 }, 0.5),
            (PageTemplate::Sparse { density: 0.03 }, 0.3),
            (PageTemplate::SmallInts { span: 100 }, 0.2),
        ])
    }

    /// The `(template, weight)` pairs.
    pub fn templates(&self) -> &[(PageTemplate, f64)] {
        &self.templates
    }
}

/// Deterministic page-content source for one workload instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PageContent {
    profile: ContentProfile,
    seed: u64,
    total_weight: f64,
}

impl PageContent {
    /// Binds a profile to a workload seed.
    pub fn new(profile: ContentProfile, seed: u64) -> Self {
        let total_weight = profile.templates.iter().map(|&(_, w)| w).sum();
        Self { profile, seed, total_weight }
    }

    /// The template used for page `index`.
    pub fn template_of(&self, index: u64) -> PageTemplate {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ index.wrapping_mul(0x9E37_79B9));
        let mut pick = rng.gen::<f64>() * self.total_weight;
        for &(t, w) in &self.profile.templates {
            if pick < w {
                return t;
            }
            pick -= w;
        }
        self.profile.templates.last().expect("non-empty").0
    }

    /// The 4 KiB content of page `index`, regenerated on demand.
    pub fn page_bytes(&self, index: u64) -> Vec<u8> {
        let mut page = vec![0u8; PAGE_SIZE];
        self.fill_page(index, &mut page);
        page
    }

    /// Regenerates page `index` into a caller-owned buffer — the
    /// allocation-free form of [`page_bytes`](Self::page_bytes) used by
    /// `PageStore` to materialize pages into one reusable scratch buffer.
    ///
    /// # Panics
    ///
    /// Panics unless `page` is exactly one page long.
    pub fn fill_page(&self, index: u64, page: &mut [u8]) {
        assert_eq!(page.len(), PAGE_SIZE, "page buffer must be exactly {PAGE_SIZE} bytes");
        page.fill(0);
        let mut rng =
            SmallRng::seed_from_u64(self.seed ^ index.wrapping_mul(0x9E37_79B9).rotate_left(17));
        self.template_of(index).fill(&mut rng, page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmcc_compression::{BestOfCodec, BlockCodec};
    use tmcc_deflate::MemDeflate;

    fn ratios(profile: ContentProfile, pages: u64) -> (f64, f64) {
        let content = PageContent::new(profile, 42);
        let deflate = MemDeflate::default();
        let block = BestOfCodec::new();
        let mut raw = 0usize;
        let mut dz = 0usize;
        let mut bz = 0usize;
        for i in 0..pages {
            let p = content.page_bytes(i);
            raw += p.len();
            dz += deflate.compressed_size(&p);
            bz += p
                .chunks_exact(64)
                .map(|b| {
                    let arr: &[u8; 64] = b.try_into().expect("64B");
                    block.compressed_size(arr)
                })
                .sum::<usize>();
        }
        (raw as f64 / dz as f64, raw as f64 / bz as f64)
    }

    #[test]
    fn pages_are_deterministic() {
        let c = PageContent::new(ContentProfile::graph_analytics(), 7);
        assert_eq!(c.page_bytes(123), c.page_bytes(123));
        let c2 = PageContent::new(ContentProfile::graph_analytics(), 8);
        assert_ne!(c.page_bytes(123), c2.page_bytes(123));
    }

    #[test]
    fn graph_profile_in_calibration_band() {
        let (deflate, block) = ratios(ContentProfile::graph_analytics(), 60);
        // Targets: Deflate ~3.0, block ~1.3 (Table IV). Generous bands.
        assert!((2.2..4.2).contains(&deflate), "deflate ratio {deflate}");
        assert!((1.1..1.9).contains(&block), "block ratio {block}");
    }

    #[test]
    fn canneal_profile_is_poorly_compressible() {
        let (deflate, block) = ratios(ContentProfile::canneal(), 60);
        assert!((1.1..2.1).contains(&deflate), "deflate ratio {deflate}");
        assert!(block < 1.5, "block ratio {block}");
    }

    #[test]
    fn omnetpp_block_beats_mcf_block() {
        let (_, omnet_block) = ratios(ContentProfile::omnetpp(), 60);
        let (_, mcf_block) = ratios(ContentProfile::mcf(), 60);
        assert!(
            omnet_block > mcf_block,
            "omnetpp {omnet_block} should beat mcf {mcf_block} at block level"
        );
    }

    #[test]
    fn deflate_beats_block_everywhere() {
        for profile in [
            ContentProfile::graph_analytics(),
            ContentProfile::mcf(),
            ContentProfile::omnetpp(),
            ContentProfile::canneal(),
            ContentProfile::highly_compressible(),
        ] {
            let (deflate, block) = ratios(profile, 40);
            assert!(deflate > block * 0.95, "deflate {deflate} vs block {block}");
        }
    }

    #[test]
    fn highly_compressible_is_high() {
        let (deflate, _) = ratios(ContentProfile::highly_compressible(), 40);
        assert!(deflate > 4.0, "got {deflate}");
    }
}
