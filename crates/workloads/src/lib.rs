//! Synthetic workload suite.
//!
//! The paper evaluates GraphBIG (datagen-8_5-fb), SPEC CPU2017 `mcf` /
//! `omnetpp`, PARSEC `canneal` plus the remaining PARSEC programs and a
//! RocksDB/Twitter setup. None of those binaries, datasets or gem5
//! checkpoints are available here, so this crate substitutes **calibrated
//! synthetic equivalents** along the two axes every paper result depends
//! on:
//!
//! 1. the *access stream* — footprint, locality, irregularity and memory
//!    intensity, which determine TLB/CTE/cache miss behaviour
//!    ([`access`]);
//! 2. the *resident bytes* — per-page content whose real compressibility
//!    under block-level compression and Deflate matches the per-workload
//!    numbers the paper reports (Fig. 15, Table IV cols D/E) ([`content`]).
//!
//! [`profiles`] holds one [`profiles::WorkloadProfile`] per paper workload
//! with both calibrations, plus the scaled-down simulated footprints (the
//! paper simulates ~105 GB graph footprints in gem5; we scale to ≤ a few
//! hundred MiB while keeping TLB/LLC/CTE-reach *relationships* intact —
//! footprints stay far larger than every cache's reach).

pub mod access;
pub mod content;
pub mod profiles;
pub mod store;

pub use access::{AccessEvent, AccessPattern, AccessStream};
pub use content::{ContentProfile, PageContent, PageTemplate};
pub use profiles::{WorkloadClass, WorkloadProfile};
pub use store::PageStore;
