//! Lazy page materialization: generate-on-read, verify-on-write.
//!
//! The simulator's page contents are a pure function of `(workload seed,
//! page index)` ([`PageContent`]), so a simulated footprint of a terabyte
//! costs the host *nothing* to hold — any page can be rematerialized on
//! demand. [`PageStore`] is the abstraction that makes that invariant
//! explicit and enforceable:
//!
//! * **generate-on-read** — [`PageStore::read`] regenerates the page into
//!   one reusable 4 KiB scratch buffer; steady-state reads allocate
//!   nothing, regardless of simulated footprint.
//! * **verify-on-write** — [`PageStore::write`] compares written bytes
//!   against the regenerated reference. Bytes that match the deterministic
//!   source are *discarded* (they are derivable); only pages that diverge
//!   are **pinned** — stored as real host buffers — until a later write
//!   converges back or [`PageStore::release`] drops them.
//!
//! The host-resident state is therefore exactly: one scratch page, plus
//! one 4 KiB buffer per *currently divergent* page. Experiments that never
//! mutate content (all the paper's figures — writes perturb the size model
//! via dirty epochs, not the bytes) run with zero pinned pages at any
//! footprint, which is what lets the `capacity_cliff` experiment family
//! sweep simulated footprints to 1 TB under a flat host RSS.

use crate::content::PageContent;
use tmcc_types::addr::PAGE_SIZE;
use tmcc_types::fxhash::FxHashMap;

/// Deterministic lazy page store over a workload's content source.
///
/// # Examples
///
/// ```
/// use tmcc_workloads::{ContentProfile, PageContent, PageStore};
///
/// let mut store = PageStore::new(PageContent::new(ContentProfile::mcf(), 7));
/// let golden = store.read(42).to_vec();
/// assert!(store.write(42, &golden), "matching bytes need no storage");
/// assert_eq!(store.pinned_pages(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct PageStore {
    content: PageContent,
    /// Reusable materialization buffer for generate-on-read.
    scratch: Vec<u8>,
    /// Pages whose last written bytes diverge from the deterministic
    /// source — the only content the host actually holds.
    pinned: FxHashMap<u64, Box<[u8]>>,
    reads: u64,
    writes: u64,
    divergent_writes: u64,
}

impl PageStore {
    /// Wraps a content source.
    pub fn new(content: PageContent) -> Self {
        Self {
            content,
            scratch: vec![0u8; PAGE_SIZE],
            pinned: FxHashMap::default(),
            reads: 0,
            writes: 0,
            divergent_writes: 0,
        }
    }

    /// The underlying deterministic content source.
    pub fn content(&self) -> &PageContent {
        &self.content
    }

    /// The current bytes of page `index`: the pinned buffer when the page
    /// has diverged, otherwise the content regenerated into the scratch
    /// buffer (no allocation).
    pub fn read(&mut self, index: u64) -> &[u8] {
        self.reads += 1;
        if let Some(p) = self.pinned.get(&index) {
            return p;
        }
        self.content.fill_page(index, &mut self.scratch);
        &self.scratch
    }

    /// Accepts a full-page write. Returns `true` when `bytes` match the
    /// deterministic source (nothing is stored; any previous pin is
    /// dropped) and `false` when the page diverged and had to be pinned.
    ///
    /// # Panics
    ///
    /// Panics unless `bytes` is exactly one page.
    pub fn write(&mut self, index: u64, bytes: &[u8]) -> bool {
        assert_eq!(bytes.len(), PAGE_SIZE, "writes are whole pages");
        self.writes += 1;
        self.content.fill_page(index, &mut self.scratch);
        if bytes == &self.scratch[..] {
            self.pinned.remove(&index);
            true
        } else {
            self.divergent_writes += 1;
            self.pinned.insert(index, bytes.into());
            false
        }
    }

    /// Whether page `index` currently diverges from the source.
    pub fn is_pinned(&self, index: u64) -> bool {
        self.pinned.contains_key(&index)
    }

    /// Drops the pinned bytes of page `index` (the page reverts to its
    /// deterministic content — e.g. it was freed and will be re-zeroed by
    /// the workload). Returns whether it was pinned.
    pub fn release(&mut self, index: u64) -> bool {
        self.pinned.remove(&index).is_some()
    }

    /// Number of currently divergent (host-resident) pages.
    pub fn pinned_pages(&self) -> usize {
        self.pinned.len()
    }

    /// `(reads, writes, divergent_writes)` since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.reads, self.writes, self.divergent_writes)
    }

    /// Host heap the store holds: the scratch page plus every pinned page
    /// (map overhead excluded; it is proportional to the pin count).
    pub fn heap_bytes(&self) -> usize {
        self.scratch.capacity() + self.pinned.len() * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ContentProfile;

    fn store() -> PageStore {
        PageStore::new(PageContent::new(ContentProfile::graph_analytics(), 11))
    }

    #[test]
    fn read_matches_eager_generation() {
        let mut s = store();
        for idx in [0u64, 1, 7, 1 << 30, u64::MAX / 3] {
            let got = s.read(idx).to_vec();
            assert_eq!(got, s.content().page_bytes(idx), "page {idx}");
        }
        assert_eq!(s.heap_bytes(), PAGE_SIZE, "reads pin nothing");
    }

    #[test]
    fn matching_write_stores_nothing() {
        let mut s = store();
        let golden = s.read(5).to_vec();
        assert!(s.write(5, &golden));
        assert_eq!(s.pinned_pages(), 0);
        assert_eq!(s.stats(), (1, 1, 0));
    }

    #[test]
    fn divergent_write_pins_until_convergent_write() {
        let mut s = store();
        let mut bytes = s.read(9).to_vec();
        bytes[100] ^= 0xFF;
        assert!(!s.write(9, &bytes));
        assert!(s.is_pinned(9));
        assert_eq!(s.read(9), &bytes[..], "reads see the written bytes");
        assert_eq!(s.heap_bytes(), 2 * PAGE_SIZE);
        // Writing the deterministic content back unpins.
        bytes[100] ^= 0xFF;
        assert!(s.write(9, &bytes));
        assert!(!s.is_pinned(9));
        assert_eq!(s.stats(), (2, 2, 1));
    }

    #[test]
    fn release_reverts_to_source() {
        let mut s = store();
        let mut bytes = s.read(3).to_vec();
        bytes[0] = bytes[0].wrapping_add(1);
        s.write(3, &bytes);
        assert!(s.release(3));
        assert!(!s.release(3));
        let got = s.read(3).to_vec();
        assert_eq!(got, s.content().page_bytes(3));
    }

    #[test]
    fn footprint_is_independent_of_read_range() {
        let mut s = store();
        for idx in (0..2048u64).map(|i| i * 0x1_0000_0000) {
            let _ = s.read(idx);
        }
        assert_eq!(s.heap_bytes(), PAGE_SIZE, "a TB-scale sweep holds one scratch page");
    }
}
