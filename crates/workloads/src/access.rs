//! Access-stream generation.
//!
//! One parameterized generator covers the whole suite: each access either
//! (a) continues a sequential burst (streaming phases, edge-list scans),
//! (b) touches the *hot set* (frontier vertices, metadata), or (c) jumps to
//! a uniformly random cold page (pointer chasing, irregular graph visits).
//! The (hot, cold, sequential) mix plus footprint reproduces each
//! workload's TLB/CTE behaviour; memory intensity (work per access) sets
//! its bandwidth demand (Fig. 16).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tmcc_types::addr::{VirtAddr, PAGE_SIZE};

/// One memory access issued by the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// The virtual address touched.
    pub vaddr: VirtAddr,
    /// Whether it is a store.
    pub write: bool,
    /// Core work (in cycles) between the previous access and this one —
    /// the compute the CPU overlaps with memory.
    pub work_cycles: u32,
}

/// Locality/irregularity parameters of a stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessPattern {
    /// Probability an access is part of a sequential run.
    pub p_seq: f64,
    /// Probability an access targets the hot set (rest go to cold pages).
    pub p_hot: f64,
    /// Fraction of the footprint forming the hot set.
    pub hot_fraction: f64,
    /// Mean sequential-run length in blocks once a run starts.
    pub seq_run_blocks: u32,
    /// Fraction of accesses that are stores.
    pub write_fraction: f64,
    /// Fraction of the footprint forming the *warm* region that cold
    /// draws normally land in (uniformly). Sized well beyond every
    /// TLB/CTE-cache reach, it sets the translation miss rates.
    pub warm_fraction: f64,
    /// Fraction of cold draws that instead touch a uniformly random page
    /// of the whole footprint — the rare revisits of frozen data that ML2
    /// absorbs. This directly controls the ML2 access rate (Fig. 21).
    pub tail_fraction: f64,
    /// Mean core cycles of work between accesses (memory intensity knob;
    /// smaller = more bandwidth-hungry).
    pub mean_work_cycles: u32,
    /// Zipf skew θ for ordinary cold draws within the warm region. 0
    /// keeps the historical uniform draw (bit-identical streams); θ > 0
    /// (clamped below 1) skews draws towards low page ranks with
    /// P(rank) ∝ rank^-θ — the key-popularity shape of key-value serving
    /// traffic ("millions of users" behind a cache tier).
    pub zipf_theta: f64,
}

impl AccessPattern {
    /// An irregular, memory-hungry graph-analytics-like pattern.
    pub fn irregular() -> Self {
        Self {
            p_seq: 0.18,
            p_hot: 0.30,
            hot_fraction: 0.02,
            seq_run_blocks: 8,
            write_fraction: 0.25,
            warm_fraction: 0.18,
            tail_fraction: 0.02,
            mean_work_cycles: 6,
            zipf_theta: 0.0,
        }
    }

    /// A cache-friendly streaming pattern.
    pub fn streaming() -> Self {
        Self {
            p_seq: 0.90,
            p_hot: 0.06,
            hot_fraction: 0.01,
            seq_run_blocks: 48,
            write_fraction: 0.3,
            warm_fraction: 0.5,
            tail_fraction: 0.01,
            mean_work_cycles: 12,
            zipf_theta: 0.0,
        }
    }

    /// A key-value-store request mix: point lookups with Zipf-skewed key
    /// popularity (θ), a modest hot tier, and occasional range scans.
    pub fn zipfian_kv(theta: f64) -> Self {
        Self {
            p_seq: 0.10,
            p_hot: 0.25,
            hot_fraction: 0.02,
            seq_run_blocks: 16,
            write_fraction: 0.30,
            warm_fraction: 0.35,
            tail_fraction: 0.02,
            mean_work_cycles: 6,
            zipf_theta: theta,
        }
    }
}

/// A deterministic, seeded access stream over `footprint_pages` pages.
///
/// # Examples
///
/// ```
/// use tmcc_workloads::{AccessPattern, AccessStream};
///
/// let mut s = AccessStream::new(AccessPattern::irregular(), 10_000, 42);
/// let a = s.next_access();
/// assert!(a.vaddr.vpn().raw() < 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct AccessStream {
    pattern: AccessPattern,
    footprint_pages: u64,
    hot_pages: u64,
    rng: SmallRng,
    /// Persistent sequential cursor (block index within the warm region).
    seq_block: u64,
}

impl AccessStream {
    /// Creates a stream over `footprint_pages` pages of virtual address
    /// space starting at VPN 0.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_pages` is zero.
    pub fn new(pattern: AccessPattern, footprint_pages: u64, seed: u64) -> Self {
        assert!(footprint_pages > 0, "footprint must be nonzero");
        let hot_pages = ((footprint_pages as f64 * pattern.hot_fraction) as u64).max(1);
        Self {
            pattern,
            footprint_pages,
            hot_pages,
            rng: SmallRng::seed_from_u64(seed ^ 0x5DEE_CE66),
            seq_block: 0,
        }
    }

    /// Number of pages the stream can touch.
    pub fn footprint_pages(&self) -> u64 {
        self.footprint_pages
    }

    /// The pattern parameters.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// Produces the next access.
    pub fn next_access(&mut self) -> AccessEvent {
        let warm_pages = ((self.footprint_pages as f64 * self.pattern.warm_fraction) as u64)
            .clamp(1, self.footprint_pages);
        let warm_blocks = warm_pages * (PAGE_SIZE as u64 / 64);
        let block = {
            let r: f64 = self.rng.gen();
            if r < self.pattern.p_seq {
                // Sequential scan through the warm data. The cursor
                // persists across other access types; occasionally it
                // repositions (a new scan starts elsewhere).
                let reposition = 1.0 / (self.pattern.seq_run_blocks.max(1) as f64 * 2.0);
                if self.rng.gen::<f64>() < reposition {
                    self.seq_block = self.rng.gen_range(0..warm_blocks);
                }
                self.seq_block = (self.seq_block + 1) % warm_blocks;
                self.seq_block
            } else if r < self.pattern.p_seq + self.pattern.p_hot {
                // Hot set access.
                let page = self.rng.gen_range(0..self.hot_pages);
                page * 64 + self.rng.gen_range(0..64u64)
            } else if self.rng.gen::<f64>() < self.pattern.tail_fraction {
                // Rare revisit of frozen data anywhere in the footprint —
                // the accesses ML2 exists to absorb.
                let page = self.rng.gen_range(0..self.footprint_pages);
                page * 64 + self.rng.gen_range(0..64u64)
            } else {
                // Ordinary cold access within the warm region.
                let warm = ((self.footprint_pages as f64 * self.pattern.warm_fraction) as u64)
                    .clamp(1, self.footprint_pages);
                let page = if self.pattern.zipf_theta > 0.0 {
                    // Zipf-skewed rank via the bounded-Pareto inverse
                    // CDF: P(rank) ∝ rank^-θ over [0, warm). Only taken
                    // when θ > 0, so θ = 0 streams keep their historical
                    // RNG consumption bit-for-bit.
                    let theta = self.pattern.zipf_theta.min(0.99);
                    let u: f64 = self.rng.gen();
                    ((warm as f64 * u.powf(1.0 / (1.0 - theta))) as u64).min(warm - 1)
                } else {
                    self.rng.gen_range(0..warm)
                };
                page * 64 + self.rng.gen_range(0..64u64)
            }
        };
        let write = self.rng.gen::<f64>() < self.pattern.write_fraction;
        let jitter = self.pattern.mean_work_cycles.max(1);
        let work_cycles = self.rng.gen_range(0..=jitter * 2);
        AccessEvent { vaddr: VirtAddr::new(block * 64), write, work_cycles }
    }

    /// Produces `n` accesses (convenience for tests and warmup).
    pub fn take_accesses(&mut self, n: usize) -> Vec<AccessEvent> {
        (0..n).map(|_| self.next_access()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stays_within_footprint() {
        let mut s = AccessStream::new(AccessPattern::irregular(), 100, 1);
        for _ in 0..10_000 {
            let a = s.next_access();
            assert!(a.vaddr.vpn().raw() < 100);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = AccessStream::new(AccessPattern::irregular(), 1000, 7);
        let mut b = AccessStream::new(AccessPattern::irregular(), 1000, 7);
        assert_eq!(a.take_accesses(1000), b.take_accesses(1000));
    }

    #[test]
    fn seeds_differ() {
        let mut a = AccessStream::new(AccessPattern::irregular(), 1000, 7);
        let mut b = AccessStream::new(AccessPattern::irregular(), 1000, 8);
        assert_ne!(a.take_accesses(100), b.take_accesses(100));
    }

    #[test]
    fn irregular_touches_many_pages() {
        let mut s = AccessStream::new(AccessPattern::irregular(), 50_000, 3);
        let pages: HashSet<u64> =
            s.take_accesses(20_000).iter().map(|a| a.vaddr.vpn().raw()).collect();
        assert!(pages.len() > 5_000, "only {} pages touched", pages.len());
    }

    #[test]
    fn streaming_is_more_local_than_irregular() {
        let count_pages = |pattern| {
            let mut s = AccessStream::new(pattern, 50_000, 3);
            s.take_accesses(20_000)
                .iter()
                .map(|a| a.vaddr.vpn().raw())
                .collect::<HashSet<_>>()
                .len()
        };
        assert!(count_pages(AccessPattern::streaming()) < count_pages(AccessPattern::irregular()));
    }

    #[test]
    fn cold_tail_is_rarely_touched() {
        let mut s = AccessStream::new(AccessPattern::irregular(), 100_000, 5);
        let accesses = s.take_accesses(200_000);
        // Pages beyond the warm region are reached only by tail draws and
        // the occasional sequential wrap.
        let tail = accesses.iter().filter(|a| a.vaddr.vpn().raw() >= 50_000).count();
        let frac = tail as f64 / accesses.len() as f64;
        assert!(frac < 0.05, "cold-tail fraction {frac}");
        assert!(frac > 0.0005, "tail must still be touched sometimes: {frac}");
    }

    #[test]
    fn zipf_skews_towards_low_ranks() {
        let uniform = AccessPattern { p_seq: 0.0, p_hot: 0.0, ..AccessPattern::zipfian_kv(0.0) };
        let skewed = AccessPattern { zipf_theta: 0.9, ..uniform };
        let head_share = |pattern| {
            let mut s = AccessStream::new(pattern, 10_000, 3);
            let warm_head = 10_000 / 10; // top decile of the footprint
            let hits =
                s.take_accesses(20_000).iter().filter(|a| a.vaddr.vpn().raw() < warm_head).count();
            hits as f64 / 20_000.0
        };
        let u = head_share(uniform);
        let z = head_share(skewed);
        assert!(z > 2.0 * u, "zipf head share {z} vs uniform {u}");
    }

    #[test]
    fn zipf_zero_is_bit_identical_to_legacy_uniform() {
        let p = AccessPattern::irregular();
        assert_eq!(p.zipf_theta, 0.0);
        let mut a = AccessStream::new(p, 5000, 9);
        let mut b = AccessStream::new(AccessPattern { zipf_theta: 0.0, ..p }, 5000, 9);
        assert_eq!(a.take_accesses(2000), b.take_accesses(2000));
    }

    #[test]
    fn write_fraction_respected() {
        let mut p = AccessPattern::irregular();
        p.write_fraction = 0.5;
        let mut s = AccessStream::new(p, 1000, 11);
        let writes = s.take_accesses(20_000).iter().filter(|a| a.write).count();
        let frac = writes as f64 / 20_000.0;
        assert!((frac - 0.5).abs() < 0.03, "write fraction {frac}");
    }
}
