//! A DDR4 DRAM timing model (the paper's Ramulator substitute).
//!
//! Models the parts of DRAM behaviour the paper's results depend on
//! (Table III, §VI, §VIII):
//!
//! * bank state — open rows, precharge/activate/CAS timing
//!   (tCL = tRCD = tRP = 13.75 ns, DDR4-3200);
//! * channel bus occupancy (25.6 GB/s per channel ⇒ 2.5 ns per 64 B burst)
//!   and read/write turnaround per **rank**, so TMCC's rank-scoped write
//!   mode for page migrations can be expressed (§VI);
//! * FR-FCFS-with-row-cap scheduling effects, approximated by bounding how
//!   many consecutive same-row bursts keep priority (cap 4, Table III);
//! * the address-mapping / interleaving policies of §VIII (Fig. 22),
//!   including XOR-based bank hashing "like Intel Skylake".
//!
//! The model is *time-stamped first-come-first-served with bank/bus
//! resource tracking*: each access computes its completion time from the
//! involved bank's and channel's availability. That reproduces queueing,
//! row-locality and turnaround phenomena without a full event-driven
//! scheduler.

pub mod mapping;

pub use mapping::{AddressMapping, InterleavePolicy, Location};

use tmcc_types::addr::DramAddr;

/// DDR4-3200 timing parameters (Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// CAS latency, ns.
    pub t_cl_ns: f64,
    /// RAS-to-CAS delay, ns.
    pub t_rcd_ns: f64,
    /// Row precharge, ns.
    pub t_rp_ns: f64,
    /// Time a 64 B burst occupies the channel bus, ns (64 B / 25.6 GB/s).
    pub t_burst_ns: f64,
    /// Read↔write turnaround penalty on a rank, ns.
    pub t_turnaround_ns: f64,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// FR-FCFS row-access cap (Table III: 4).
    pub row_access_cap: u32,
    /// Number of memory controllers.
    pub mcs: usize,
    /// Channels per MC.
    pub channels_per_mc: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            t_cl_ns: 13.75,
            t_rcd_ns: 13.75,
            t_rp_ns: 13.75,
            t_burst_ns: 2.5,
            t_turnaround_ns: 7.5,
            row_bytes: 8192,
            row_access_cap: 4,
            mcs: 1,
            channels_per_mc: 1,
            ranks: 8,
            banks: 16,
        }
    }
}

impl DramConfig {
    /// The §VIII interleaving study system: 2 MCs × 2 channels.
    pub fn two_mc_two_channel() -> Self {
        Self { mcs: 2, channels_per_mc: 2, ..Default::default() }
    }

    /// Total channels.
    pub fn total_channels(&self) -> usize {
        self.mcs * self.channels_per_mc
    }

    /// Peak bandwidth of the whole system, GB/s.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.total_channels() as f64 * 64.0 / self.t_burst_ns
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    ready_ns: f64,
    /// Consecutive same-row hits served (for the row-access cap).
    row_streak: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct RankState {
    /// Last direction: false = read, true = write.
    last_write: bool,
    initialized: bool,
}

/// Aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct DramStats {
    /// Read bursts served.
    pub reads: u64,
    /// Write bursts served.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (activate needed).
    pub row_misses: u64,
    /// Total ns the channel buses were occupied.
    pub bus_busy_ns: f64,
}

impl DramStats {
    /// Decodes a `DramStats` from its own serialization (strict: every
    /// field present, no unknown keys) — the sweep journal's replay path.
    pub fn from_value(v: &serde::Value) -> Result<Self, String> {
        let mut f = serde::FieldReader::open(v, "DramStats")?;
        let stats = Self {
            reads: f.u64("reads")?,
            writes: f.u64("writes")?,
            row_hits: f.u64("row_hits")?,
            row_misses: f.u64("row_misses")?,
            bus_busy_ns: f.f64("bus_busy_ns")?,
        };
        f.finish()?;
        Ok(stats)
    }

    /// Row-buffer hit rate.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// The DRAM timing model.
///
/// # Examples
///
/// ```
/// use tmcc_sim_dram::{DramConfig, DramSim, InterleavePolicy};
/// use tmcc_types::addr::DramAddr;
///
/// let mut dram = DramSim::new(DramConfig::default(), InterleavePolicy::baseline());
/// let t1 = dram.access(0.0, DramAddr::new(0), false);
/// // A second access to the same row is a row-buffer hit: cheaper.
/// let t2 = dram.access(t1, DramAddr::new(64), false) - t1;
/// assert!(t2 < t1);
/// ```
#[derive(Debug, Clone)]
pub struct DramSim {
    cfg: DramConfig,
    mapping: AddressMapping,
    banks: Vec<BankState>,
    ranks: Vec<RankState>,
    channel_free_ns: Vec<f64>,
    /// Background (migration/writeback) traffic queues separately and
    /// never delays demand bursts on the bus (§VI: migrations have lower
    /// priority than LLC accesses; writes are drained opportunistically).
    background_free_ns: Vec<f64>,
    stats: DramStats,
    start_ns: Option<f64>,
    last_ns: f64,
}

impl DramSim {
    /// Builds the model with an interleaving policy.
    pub fn new(cfg: DramConfig, policy: InterleavePolicy) -> Self {
        let nbanks = cfg.total_channels() * cfg.ranks * cfg.banks;
        Self {
            cfg,
            mapping: AddressMapping::new(cfg, policy),
            banks: vec![BankState::default(); nbanks],
            ranks: vec![RankState::default(); cfg.total_channels() * cfg.ranks],
            channel_free_ns: vec![0.0; cfg.total_channels()],
            background_free_ns: vec![0.0; cfg.total_channels()],
            stats: DramStats::default(),
            start_ns: None,
            last_ns: 0.0,
        }
    }

    /// The configured geometry/timing.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// The address mapping in use.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Performs one demand 64 B access starting no earlier than `now_ns`;
    /// returns its completion time in ns.
    pub fn access(&mut self, now_ns: f64, addr: DramAddr, write: bool) -> f64 {
        self.access_with_priority(now_ns, addr, write, false)
    }

    /// Performs one *background* access (page migration, lazy writeback):
    /// it contends for banks but is scheduled into bus idle slots behind
    /// all demand traffic, so it never pushes demand bursts back.
    pub fn access_background(&mut self, now_ns: f64, addr: DramAddr, write: bool) -> f64 {
        self.access_with_priority(now_ns, addr, write, true)
    }

    fn access_with_priority(
        &mut self,
        now_ns: f64,
        addr: DramAddr,
        write: bool,
        background: bool,
    ) -> f64 {
        let loc = self.mapping.locate(addr);
        let ch = loc.global_channel(&self.cfg);
        let rank_idx = ch * self.cfg.ranks + loc.rank;
        let bank_idx = rank_idx * self.cfg.banks + loc.bank;

        self.start_ns.get_or_insert(now_ns);

        // Wait for the bank (the data bus is arbitrated at burst time).
        let bank = &mut self.banks[bank_idx];
        let mut start = now_ns.max(bank.ready_ns);

        // Rank read/write turnaround. Background migration writes use the
        // paper's rank-scoped write mode (§VI): they are batched into a
        // single rank's write window and do not flip the rank's direction
        // for demand traffic.
        let rank = &mut self.ranks[rank_idx];
        if !background {
            if rank.initialized && rank.last_write != write {
                start += self.cfg.t_turnaround_ns;
            }
            rank.initialized = true;
            rank.last_write = write;
        }

        // Row-buffer behaviour, with the FR-FCFS row-access cap: after
        // `cap` consecutive hits the row loses priority, modelled as a
        // forced reopen (the capped stream yields the bank). Background
        // accesses are scheduled around the demand stream (FR-FCFS + the
        // write-drain batching of §VI), so they neither see nor disturb
        // the demand stream's open row: they are charged a full reopen and
        // leave `open_row` untouched.
        let hit = !background
            && bank.open_row == Some(loc.row)
            && bank.row_streak < self.cfg.row_access_cap;
        let access_ns = if background {
            // Batched background transfers stream at CAS granularity
            // within their write/read window; their activates are hidden
            // inside the batch (§VI's write-drain batching).
            self.stats.row_misses = self.stats.row_misses.saturating_add(1);
            self.cfg.t_cl_ns
        } else if hit {
            bank.row_streak += 1;
            self.stats.row_hits = self.stats.row_hits.saturating_add(1);
            self.cfg.t_cl_ns
        } else {
            let reopen = bank.open_row.is_some();
            if bank.open_row == Some(loc.row) {
                // Cap expiry: same row, but re-arbitrated.
                bank.row_streak = 1;
                self.stats.row_hits = self.stats.row_hits.saturating_add(1);
                self.cfg.t_cl_ns + self.cfg.t_burst_ns
            } else {
                bank.row_streak = 1;
                self.stats.row_misses = self.stats.row_misses.saturating_add(1);
                let pre = if reopen { self.cfg.t_rp_ns } else { 0.0 };
                pre + self.cfg.t_rcd_ns + self.cfg.t_cl_ns
            }
        };
        if !background {
            bank.open_row = Some(loc.row);
        }

        // The array access completes at `start + access_ns`; the 64 B data
        // burst then needs the channel's data bus for t_burst. Bus
        // contention queues bursts back to back (25.6 GB/s per channel).
        let data_ready = start + access_ns;
        let bus_start = if background {
            data_ready.max(self.channel_free_ns[ch]).max(self.background_free_ns[ch])
        } else {
            data_ready.max(self.channel_free_ns[ch])
        };
        let done = bus_start + self.cfg.t_burst_ns;
        if background {
            self.background_free_ns[ch] = done;
        } else {
            self.channel_free_ns[ch] = done;
        }
        // The bank is held for the array access itself; a burst waiting
        // for its bus slot sits in the MC's data buffer and does not block
        // the bank. Row hits pipeline at burst granularity. Background
        // accesses slot into bank idle time (their own FIFO order is kept
        // by `background_free_ns`), so they hold the bank only briefly.
        bank.ready_ns = if background {
            bank.ready_ns.max(start + self.cfg.t_burst_ns)
        } else if hit {
            start + self.cfg.t_burst_ns
        } else {
            start + access_ns
        };
        self.stats.bus_busy_ns += self.cfg.t_burst_ns;
        if write {
            self.stats.writes = self.stats.writes.saturating_add(1);
        } else {
            self.stats.reads = self.stats.reads.saturating_add(1);
        }
        self.last_ns = self.last_ns.max(done);
        done
    }

    /// Latency of an access starting at `now_ns`.
    pub fn access_latency(&mut self, now_ns: f64, addr: DramAddr, write: bool) -> f64 {
        self.access(now_ns, addr, write) - now_ns
    }

    /// Counters so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Fraction of peak bandwidth used between the first and last access.
    pub fn bandwidth_utilization(&self) -> f64 {
        match self.start_ns {
            Some(start) if self.last_ns > start => {
                let elapsed = self.last_ns - start;
                self.stats.bus_busy_ns / (elapsed * self.cfg.total_channels() as f64)
            }
            _ => 0.0,
        }
    }

    /// Clears counters (keeps bank state).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        self.start_ns = None;
        self.last_ns = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> DramSim {
        DramSim::new(DramConfig::default(), InterleavePolicy::baseline())
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut d = sim();
        let first = d.access_latency(0.0, DramAddr::new(0), false);
        let second = d.access_latency(100.0, DramAddr::new(64), false);
        assert!(second < first, "row hit {second} vs activate {first}");
        // First access: tRCD + tCL + burst = 30 ns.
        assert!((first - 30.0).abs() < 0.1, "{first}");
        // Row hit: tCL + burst = 16.25 ns.
        assert!((second - 16.25).abs() < 0.1, "{second}");
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut d = sim();
        let row_bytes = d.config().row_bytes;
        let _ = d.access(0.0, DramAddr::new(0), false);
        // Same bank, different row ⇒ precharge + activate + CAS. With the
        // XOR bank hash, scan candidate addresses for one that maps to
        // bank 0 again with a different row.
        let mapping = *d.mapping();
        let target = (1..4096u64)
            .map(|k| k * row_bytes)
            .find(|&a| {
                let l = mapping.locate(DramAddr::new(a));
                let base = mapping.locate(DramAddr::new(0));
                l.rank == base.rank && l.bank == base.bank && l.row != base.row
            })
            .expect("some address conflicts with row 0");
        let conflict = d.access_latency(1000.0, DramAddr::new(target), false);
        assert!((conflict - 43.75 - 2.5).abs() < 2.6, "{conflict}");
    }

    #[test]
    fn queueing_delays_back_to_back_accesses() {
        let mut d = sim();
        // Two simultaneous accesses to the same bank: the second waits.
        let t1 = d.access(0.0, DramAddr::new(0), false);
        let t2 = d.access(0.0, DramAddr::new(64), false);
        assert!(t2 > t1);
    }

    #[test]
    fn turnaround_charged_on_direction_change() {
        let mut d = sim();
        let _ = d.access(0.0, DramAddr::new(0), false);
        let w = d.access_latency(1000.0, DramAddr::new(64), true);
        // Row hit + turnaround.
        assert!((w - (16.25 + 7.5)).abs() < 0.1, "{w}");
    }

    #[test]
    fn row_cap_limits_streaks() {
        let mut d = sim();
        let mut lat = Vec::new();
        for i in 0..6u64 {
            // Spaced-out same-row accesses: no bank/bus queueing between
            // them, so latency differences come from the row-cap logic.
            let l = d.access_latency(1e4 * (i as f64 + 1.0), DramAddr::new(i * 64), false);
            lat.push(l);
        }
        // Accesses 1..=3 are plain row hits; the 4th consecutive same-row
        // access exhausts the FR-FCFS cap and re-arbitrates (one extra
        // burst slot).
        assert!(lat[4] > lat[1], "cap expiry {} vs hit {}", lat[4], lat[1]);
    }

    #[test]
    fn utilization_reflects_traffic_density() {
        let mut dense = sim();
        let mut t = 0.0;
        for i in 0..1000u64 {
            t = dense.access(t, DramAddr::new(i * 64), false);
        }
        let mut sparse = sim();
        let mut t2 = 0.0;
        for i in 0..1000u64 {
            t2 = sparse.access(t2 + 100.0, DramAddr::new(i * 64), false);
        }
        assert!(dense.bandwidth_utilization() > sparse.bandwidth_utilization());
        assert!(dense.bandwidth_utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn stats_count_reads_and_writes() {
        let mut d = sim();
        d.access(0.0, DramAddr::new(0), false);
        d.access(100.0, DramAddr::new(64), true);
        let s = d.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
        assert_eq!(s.row_hits + s.row_misses, 2);
    }
}
