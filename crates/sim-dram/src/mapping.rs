//! DRAM address mapping and interleaving policies (paper §VIII, Fig. 22).
//!
//! CPUs interleave adjacent physical ranges across channels and memory
//! controllers to balance bandwidth. Because TMCC compresses at page
//! granularity inside one MC, it "requires address mapping to only
//! interleave memory across memory controllers at ≥ 4 KiB granularity"
//! (§VIII). The three policies evaluated in Fig. 22:
//!
//! * **baseline** — 512 B interleaving across MCs, 256 B across the
//!   channels within each MC (TMCC-*incompatible*; the comparison
//!   yardstick);
//! * **coarse-MC** — 4 KiB across MCs, 256 B across channels
//!   (TMCC-compatible);
//! * **page-channel** — 4 KiB across MCs *and* channels (no sub-page
//!   interleaving at all; TMCC-compatible, worst bandwidth balance).
//!
//! Bank/row decoding applies an XOR-based hash "like Intel Skylake"
//! (Table III) so that strided streams spread across banks.

use crate::DramConfig;
use tmcc_types::addr::DramAddr;

/// Interleaving granularities for MCs and channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterleavePolicy {
    /// Bytes of consecutive address space per MC before switching.
    pub mc_granularity: u64,
    /// Bytes per channel within an MC before switching.
    pub channel_granularity: u64,
}

impl InterleavePolicy {
    /// The Fig. 22 baseline: 512 B across MCs, 256 B across channels.
    pub fn baseline() -> Self {
        Self { mc_granularity: 512, channel_granularity: 256 }
    }

    /// TMCC-compatible: 4 KiB across MCs, 256 B across channels.
    pub fn coarse_mc() -> Self {
        Self { mc_granularity: 4096, channel_granularity: 256 }
    }

    /// TMCC-compatible, fully page-granular: 4 KiB across MCs and channels.
    pub fn page_channel() -> Self {
        Self { mc_granularity: 4096, channel_granularity: 4096 }
    }

    /// Whether TMCC's page-level compression can operate under this policy
    /// (§VIII: MC interleaving must be at least page-granular).
    pub fn tmcc_compatible(&self) -> bool {
        self.mc_granularity >= 4096
    }
}

/// A fully decoded DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Memory-controller index.
    pub mc: usize,
    /// Channel within the MC.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Bank within the rank.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
    /// Column byte offset within the row.
    pub column: u64,
}

impl Location {
    /// Flattened channel index across all MCs.
    pub fn global_channel(&self, cfg: &DramConfig) -> usize {
        self.mc * cfg.channels_per_mc + self.channel
    }
}

/// Decodes DRAM byte addresses into device coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    cfg_mcs: usize,
    cfg_channels: usize,
    cfg_ranks: usize,
    cfg_banks: usize,
    row_bytes: u64,
    policy: InterleavePolicy,
}

impl AddressMapping {
    /// Builds the mapping for a configuration and policy.
    ///
    /// # Panics
    ///
    /// Panics unless `banks` and `ranks` are powers of two. The XOR bank
    /// hash folds row bits into the bank selector bitwise; with a
    /// non-power-of-two device count the fold both skews the bank
    /// distribution and breaks decode injectivity (two columns of one row
    /// can alias onto the same bank), so such geometries are rejected
    /// outright — no real DDR4/DDR5 part ships them either.
    pub fn new(cfg: DramConfig, policy: InterleavePolicy) -> Self {
        assert!(
            cfg.banks.is_power_of_two(),
            "banks per rank must be a power of two (got {})",
            cfg.banks
        );
        assert!(
            cfg.ranks.is_power_of_two(),
            "ranks per channel must be a power of two (got {})",
            cfg.ranks
        );
        Self {
            cfg_mcs: cfg.mcs,
            cfg_channels: cfg.channels_per_mc,
            cfg_ranks: cfg.ranks,
            cfg_banks: cfg.banks,
            row_bytes: cfg.row_bytes,
            policy,
        }
    }

    /// The interleaving policy.
    pub fn policy(&self) -> InterleavePolicy {
        self.policy
    }

    /// Decodes `addr`.
    pub fn locate(&self, addr: DramAddr) -> Location {
        let a = addr.raw();
        let mc = ((a / self.policy.mc_granularity) % self.cfg_mcs as u64) as usize;
        // Strip the MC selector, keeping addresses within an MC dense.
        let within_mc = collapse(a, self.policy.mc_granularity, self.cfg_mcs as u64);
        let channel =
            ((within_mc / self.policy.channel_granularity) % self.cfg_channels as u64) as usize;
        let within_ch =
            collapse(within_mc, self.policy.channel_granularity, self.cfg_channels as u64);
        // Within a channel: column bits, then bank/rank with XOR hash.
        let column = within_ch % self.row_bytes;
        let row_seq = within_ch / self.row_bytes;
        let banks = self.cfg_banks as u64;
        let ranks = self.cfg_ranks as u64;
        // XOR-based bank hash (Skylake-like): bank bits XOR row low bits.
        // Both counts are powers of two (checked at construction), so the
        // fold is an exact bitwise XOR of the row index into the bank
        // selector — unbiased and invertible for fixed (rank, row).
        let row = row_seq / (banks * ranks);
        let bank = ((row_seq ^ row) & (banks - 1)) as usize;
        let rank = ((row_seq / banks) & (ranks - 1)) as usize;
        Location { mc, channel, rank, bank, row, column }
    }
}

/// Removes the interleave-selector bits from `a`, producing a dense
/// address within the selected unit.
fn collapse(a: u64, granularity: u64, units: u64) -> u64 {
    let block = a / granularity;
    let offset = a % granularity;
    (block / units) * granularity + offset
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping(policy: InterleavePolicy) -> AddressMapping {
        AddressMapping::new(DramConfig::two_mc_two_channel(), policy)
    }

    #[test]
    fn baseline_interleaves_sub_page() {
        let m = mapping(InterleavePolicy::baseline());
        let a = m.locate(DramAddr::new(0));
        let b = m.locate(DramAddr::new(512));
        assert_ne!(a.mc, b.mc, "512 B apart lands on different MCs");
        let c = m.locate(DramAddr::new(256));
        assert_ne!(a.channel, c.channel, "256 B apart switches channel");
    }

    #[test]
    fn coarse_mc_keeps_pages_on_one_mc() {
        let m = mapping(InterleavePolicy::coarse_mc());
        let base = 12345 * 4096u64;
        let mc0 = m.locate(DramAddr::new(base)).mc;
        for off in (0..4096).step_by(64) {
            assert_eq!(m.locate(DramAddr::new(base + off)).mc, mc0);
        }
        assert_ne!(m.locate(DramAddr::new(base + 4096)).mc, mc0);
    }

    #[test]
    fn page_channel_keeps_pages_on_one_channel() {
        let m = mapping(InterleavePolicy::page_channel());
        let base = 777 * 4096u64;
        let first = m.locate(DramAddr::new(base));
        for off in (0..4096).step_by(64) {
            let l = m.locate(DramAddr::new(base + off));
            assert_eq!((l.mc, l.channel), (first.mc, first.channel));
        }
    }

    #[test]
    fn compatibility_flags() {
        assert!(!InterleavePolicy::baseline().tmcc_compatible());
        assert!(InterleavePolicy::coarse_mc().tmcc_compatible());
        assert!(InterleavePolicy::page_channel().tmcc_compatible());
    }

    #[test]
    fn mapping_is_injective_over_a_region() {
        use std::collections::HashSet;
        let m = mapping(InterleavePolicy::baseline());
        let mut seen = HashSet::new();
        for i in 0..20000u64 {
            let l = m.locate(DramAddr::new(i * 64));
            assert!(
                seen.insert((l.mc, l.channel, l.rank, l.bank, l.row, l.column)),
                "collision at block {i}"
            );
        }
    }

    #[test]
    fn bank_hash_uniform_over_sequential_rows() {
        // Chi-square-style check: a row-sequential sweep (the worst case
        // the XOR hash exists to spread) must hit every (rank, bank) pair
        // uniformly. The old `(row_seq ^ (row_seq / (banks*ranks))) %
        // banks` formula happened to be unbiased only because banks*ranks
        // was a power of two; this pins the property down explicitly.
        for (banks, ranks) in [(16usize, 8usize), (8, 2), (4, 1), (32, 4)] {
            let cfg = DramConfig { banks, ranks, ..DramConfig::default() };
            let m = AddressMapping::new(cfg, InterleavePolicy::coarse_mc());
            let sweeps = 16u64; // full periods of the bank/rank pattern
            let rows = sweeps * (banks * ranks) as u64;
            let mut counts = vec![0u64; banks * ranks];
            for r in 0..rows {
                let l = m.locate(DramAddr::new(r * cfg.row_bytes));
                counts[l.rank * banks + l.bank] += 1;
            }
            let expect = sweeps as f64;
            let chi2: f64 = counts.iter().map(|&c| (c as f64 - expect).powi(2) / expect).sum();
            // The XOR hash permutes banks within each period, so a
            // sequential sweep is *exactly* uniform; any skew at all is a
            // regression (threshold far below the p=0.001 critical value
            // for banks*ranks-1 degrees of freedom).
            assert!(
                chi2 < 1e-9,
                "bank distribution skewed: chi2={chi2} for {banks}x{ranks}, counts={counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "banks per rank must be a power of two")]
    fn rejects_non_pow2_banks() {
        let cfg = DramConfig { banks: 12, ..DramConfig::default() };
        let _ = AddressMapping::new(cfg, InterleavePolicy::baseline());
    }

    #[test]
    #[should_panic(expected = "ranks per channel must be a power of two")]
    fn rejects_non_pow2_ranks() {
        let cfg = DramConfig { ranks: 3, ..DramConfig::default() };
        let _ = AddressMapping::new(cfg, InterleavePolicy::baseline());
    }

    #[test]
    fn sequential_rows_spread_across_banks() {
        // Within one channel, consecutive row-sized regions must land in
        // different banks (bank bits sit above the column bits).
        let m = AddressMapping::new(DramConfig::default(), InterleavePolicy::baseline());
        let cfg = DramConfig::default();
        let mut banks = std::collections::HashSet::new();
        for r in 0..32u64 {
            let l = m.locate(DramAddr::new(r * cfg.row_bytes));
            banks.insert((l.rank, l.bank));
        }
        assert!(banks.len() > 8, "rows should spread across banks, got {}", banks.len());
    }
}
