//! Property tests pinning the succinct structures to naive reference
//! models: [`BitVec`] / [`RankSelect`] against a `Vec<bool>`, and
//! [`PackedSeq`] against a `Vec<u64>`. Arbitrary op traces must leave
//! every observable (get, rank, select, counts, iteration order)
//! identical to the model, including at word boundaries and on all-zero /
//! all-one blocks.

use proptest::prelude::*;
use tmcc_types::bitvec::{BitVec, RankSelect};
use tmcc_types::packed::PackedSeq;

/// Reference rank: ones strictly below `index`.
fn ref_rank1(model: &[bool], index: usize) -> usize {
    model[..index].iter().filter(|&&b| b).count()
}

/// Reference select: position of the `k`-th set bit.
fn ref_select1(model: &[bool], k: usize) -> Option<usize> {
    model.iter().enumerate().filter(|&(_, &b)| b).nth(k).map(|(i, _)| i)
}

#[derive(Debug, Clone)]
enum BitOp {
    Set(usize),
    Clear(usize),
    SetTo(usize, bool),
    Push(bool),
    Grow(usize),
}

fn bit_op() -> impl Strategy<Value = BitOp> {
    // Index range deliberately exceeds typical lengths so ops cluster on
    // boundary words; out-of-range indices are wrapped by the executor.
    (any::<u8>(), 0usize..200, any::<bool>()).prop_map(|(kind, i, b)| match kind % 5 {
        0 => BitOp::Set(i),
        1 => BitOp::Clear(i),
        2 => BitOp::SetTo(i, b),
        3 => BitOp::Push(b),
        _ => BitOp::Grow(i),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every observable of `BitVec` matches the `Vec<bool>` model after an
    /// arbitrary trace of set/clear/push/grow ops.
    #[test]
    fn bitvec_matches_vec_bool(
        init_len in 0usize..150,
        ops in prop::collection::vec(bit_op(), 0..120),
    ) {
        let mut bv = BitVec::with_len(init_len);
        let mut model = vec![false; init_len];
        for op in ops {
            match op {
                BitOp::Set(i) if !model.is_empty() => {
                    let i = i % model.len();
                    let was_clear = !model[i];
                    prop_assert_eq!(bv.set(i), was_clear);
                    model[i] = true;
                }
                BitOp::Clear(i) if !model.is_empty() => {
                    let i = i % model.len();
                    let was_set = model[i];
                    prop_assert_eq!(bv.clear(i), was_set);
                    model[i] = false;
                }
                BitOp::SetTo(i, b) if !model.is_empty() => {
                    let i = i % model.len();
                    let changed = model[i] != b;
                    prop_assert_eq!(bv.set_to(i, b), changed);
                    model[i] = b;
                }
                BitOp::Push(b) => {
                    bv.push(b);
                    model.push(b);
                }
                BitOp::Grow(n) => {
                    bv.grow(n);
                    if n > model.len() {
                        model.resize(n, false);
                    }
                }
                _ => {}
            }
        }
        prop_assert_eq!(bv.len(), model.len());
        prop_assert_eq!(bv.count_ones(), model.iter().filter(|&&b| b).count());
        for (i, &b) in model.iter().enumerate() {
            prop_assert_eq!(bv.get(i), b, "bit {}", i);
        }
        for i in 0..=model.len() {
            prop_assert_eq!(bv.rank1(i), ref_rank1(&model, i), "rank1 at {}", i);
            prop_assert_eq!(bv.rank0(i), i - ref_rank1(&model, i), "rank0 at {}", i);
        }
        for k in 0..=bv.count_ones() {
            prop_assert_eq!(bv.select1(k), ref_select1(&model, k), "select1 at {}", k);
        }
        let zeros: Vec<usize> =
            model.iter().enumerate().filter(|&(_, &b)| !b).map(|(i, _)| i).collect();
        for k in 0..=zeros.len() {
            prop_assert_eq!(bv.select0(k), zeros.get(k).copied(), "select0 at {}", k);
        }
        let ones: Vec<usize> =
            model.iter().enumerate().filter(|&(_, &b)| b).map(|(i, _)| i).collect();
        prop_assert_eq!(bv.iter_ones().collect::<Vec<_>>(), ones);
    }

    /// The frozen directory agrees with the mutable scan on rank and
    /// select for bitmaps built from arbitrary word patterns — including
    /// runs of all-zero and all-one 512-bit blocks.
    #[test]
    fn rank_select_directory_matches_bitvec(
        // Per-block fill style: 0 = empty, 1 = full, 2 = random words.
        blocks in prop::collection::vec((0u8..3, any::<u64>()), 1..12),
        tail_bits in 0usize..64,
    ) {
        let mut bv = BitVec::new();
        for &(style, seed) in &blocks {
            for w in 0..8usize {
                let word = match style {
                    0 => 0u64,
                    1 => !0u64,
                    _ => seed.rotate_left((w * 11) as u32) ^ (w as u64).wrapping_mul(0x9E37_79B9),
                };
                for b in 0..64 {
                    bv.push(word >> b & 1 == 1);
                }
            }
        }
        for b in 0..tail_bits {
            bv.push(b % 3 == 0);
        }
        let rs = RankSelect::build(bv.clone());
        prop_assert_eq!(rs.len(), bv.len());
        prop_assert_eq!(rs.count_ones(), bv.count_ones());
        let step = (bv.len() / 97).max(1);
        for i in (0..=bv.len()).step_by(step) {
            prop_assert_eq!(rs.rank1(i), bv.rank1(i), "rank1 at {}", i);
        }
        prop_assert_eq!(rs.rank1(bv.len()), bv.count_ones());
        let kstep = (bv.count_ones() / 61).max(1);
        for k in (0..bv.count_ones()).step_by(kstep) {
            prop_assert_eq!(rs.select1(k), bv.select1(k), "select1 at {}", k);
        }
        prop_assert_eq!(rs.select1(bv.count_ones()), None);
    }
}

#[derive(Debug, Clone)]
enum SeqOp {
    Push(u64),
    Set(usize, u64),
}

fn seq_op() -> impl Strategy<Value = SeqOp> {
    (any::<bool>(), 0usize..300, any::<u64>()).prop_map(|(push, i, v)| {
        if push {
            SeqOp::Push(v)
        } else {
            SeqOp::Set(i, v)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `PackedSeq` matches a `Vec<u64>` model under arbitrary push/set
    /// traces at every width, so straddled word boundaries never leak
    /// bits into neighbors.
    #[test]
    fn packed_seq_matches_vec_u64(
        width in 1u32..=64,
        init_len in 0usize..80,
        ops in prop::collection::vec(seq_op(), 0..100),
    ) {
        let mask = if width == 64 { !0u64 } else { (1u64 << width) - 1 };
        let mut seq = PackedSeq::with_len(width, init_len);
        let mut model = vec![0u64; init_len];
        for op in ops {
            match op {
                SeqOp::Push(v) => {
                    seq.push(v & mask);
                    model.push(v & mask);
                }
                SeqOp::Set(i, v) if !model.is_empty() => {
                    let i = i % model.len();
                    seq.set(i, v & mask);
                    model[i] = v & mask;
                }
                _ => {}
            }
        }
        prop_assert_eq!(seq.len(), model.len());
        for (i, &v) in model.iter().enumerate() {
            prop_assert_eq!(seq.get(i), v, "element {}", i);
        }
        prop_assert_eq!(seq.iter().collect::<Vec<_>>(), model);
    }
}
