//! Address-space newtypes and memory geometry constants.
//!
//! Four distinct address spaces appear in a system with hardware memory
//! compression (paper §II):
//!
//! 1. **Virtual addresses** ([`VirtAddr`], [`Vpn`]) — what programs issue.
//! 2. **Physical addresses** ([`PhysAddr`], [`Ppn`]) — what the OS page table
//!    produces. Under hardware compression the OS may see *more* physical
//!    pages than DRAM can hold uncompressed.
//! 3. **DRAM addresses** ([`DramAddr`]) — where bytes actually live; the
//!    memory controller's CTEs map physical → DRAM.
//! 4. **Block addresses** ([`BlockAddr`]) — 64-byte cacheline-granularity
//!    physical addresses used by the cache hierarchy.
//!
//! Keeping them as separate newtypes makes it a type error to, e.g., index a
//! CTE table with a DRAM address — the exact confusion the paper's added
//! translation layer invites.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of an OS page in bytes (4 KiB, paper §II).
pub const PAGE_SIZE: usize = 4096;
/// Size of a memory block / cacheline in bytes.
pub const BLOCK_SIZE: usize = 64;
/// Number of 64 B blocks in a 4 KiB page.
pub const BLOCKS_PER_PAGE: usize = PAGE_SIZE / BLOCK_SIZE;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// log2 of [`BLOCK_SIZE`].
pub const BLOCK_SHIFT: u32 = 6;

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<$name> for u64 {
            fn from(v: $name) -> u64 {
                v.0
            }
        }
    };
}

addr_newtype!(
    /// A byte-granularity virtual address.
    VirtAddr
);
addr_newtype!(
    /// A byte-granularity physical address (output of the OS page table).
    PhysAddr
);
addr_newtype!(
    /// A byte-granularity DRAM address (output of the CTE translation).
    DramAddr
);
addr_newtype!(
    /// A virtual page number: [`VirtAddr`] with the low 12 bits stripped.
    Vpn
);
addr_newtype!(
    /// A physical page number: [`PhysAddr`] with the low 12 bits stripped.
    Ppn
);
addr_newtype!(
    /// A 64 B-block-granularity physical address (cacheline number).
    BlockAddr
);

impl VirtAddr {
    /// The virtual page containing this address.
    #[inline]
    pub const fn vpn(self) -> Vpn {
        Vpn::new(self.0 >> PAGE_SHIFT)
    }

    /// Offset of this address within its page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE as u64 - 1)
    }
}

impl PhysAddr {
    /// The physical page containing this address.
    #[inline]
    pub const fn ppn(self) -> Ppn {
        Ppn::new(self.0 >> PAGE_SHIFT)
    }

    /// Offset of this address within its page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE as u64 - 1)
    }

    /// The 64 B block containing this address.
    #[inline]
    pub const fn block(self) -> BlockAddr {
        BlockAddr::new(self.0 >> BLOCK_SHIFT)
    }

    /// Index of this address's block within its page (`0..64`).
    #[inline]
    pub const fn block_in_page(self) -> usize {
        ((self.0 >> BLOCK_SHIFT) & (BLOCKS_PER_PAGE as u64 - 1)) as usize
    }
}

impl Vpn {
    /// First byte address of this page.
    #[inline]
    pub const fn base(self) -> VirtAddr {
        VirtAddr::new(self.0 << PAGE_SHIFT)
    }

    /// The VPN of the page-table block covering this page at walk level
    /// `level` (1 = leaf PTEs, 4 = root). Pages whose translations share a
    /// PTB share this value.
    ///
    /// A PTB holds eight PTEs, and each level-N entry covers `512^(N-1)`
    /// pages, so the PTB group key shifts by `3 + 9*(level-1)` bits.
    #[inline]
    pub const fn ptb_group(self, level: u8) -> u64 {
        self.0 >> (3 + 9 * (level as u64 - 1))
    }
}

impl Ppn {
    /// First byte address of this page.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr::new(self.0 << PAGE_SHIFT)
    }

    /// The `idx`-th 64 B block of this page.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= BLOCKS_PER_PAGE`.
    #[inline]
    pub fn block(self, idx: usize) -> BlockAddr {
        assert!(idx < BLOCKS_PER_PAGE, "block index {idx} out of page");
        BlockAddr::new((self.0 << (PAGE_SHIFT - BLOCK_SHIFT)) + idx as u64)
    }
}

impl BlockAddr {
    /// Byte address of the first byte in this block.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr::new(self.0 << BLOCK_SHIFT)
    }

    /// The physical page containing this block.
    #[inline]
    pub const fn ppn(self) -> Ppn {
        Ppn::new(self.0 >> (PAGE_SHIFT - BLOCK_SHIFT))
    }

    /// Index of this block within its page (`0..64`).
    #[inline]
    pub const fn index_in_page(self) -> usize {
        (self.0 & (BLOCKS_PER_PAGE as u64 - 1)) as usize
    }
}

impl DramAddr {
    /// The 4 KiB-aligned DRAM frame number containing this address.
    #[inline]
    pub const fn frame(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Byte offset within the 4 KiB frame.
    #[inline]
    pub const fn frame_offset(self) -> u64 {
        self.0 & (PAGE_SIZE as u64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_addr_decomposition() {
        let pa = PhysAddr::new(0x1234_5678);
        assert_eq!(pa.ppn().raw(), 0x1234_5678 >> 12);
        assert_eq!(pa.page_offset(), 0x678);
        assert_eq!(pa.block().base().raw(), 0x1234_5640);
        assert_eq!(pa.block_in_page(), (0x678 >> 6) as usize);
    }

    #[test]
    fn ppn_block_round_trip() {
        let ppn = Ppn::new(42);
        for idx in 0..BLOCKS_PER_PAGE {
            let b = ppn.block(idx);
            assert_eq!(b.ppn(), ppn);
            assert_eq!(b.index_in_page(), idx);
        }
    }

    #[test]
    #[should_panic(expected = "out of page")]
    fn ppn_block_rejects_out_of_range() {
        let _ = Ppn::new(1).block(BLOCKS_PER_PAGE);
    }

    #[test]
    fn vpn_ptb_group_levels() {
        // Adjacent pages share a leaf PTB (8 PTEs per PTB).
        assert_eq!(Vpn::new(0).ptb_group(1), Vpn::new(7).ptb_group(1));
        assert_ne!(Vpn::new(7).ptb_group(1), Vpn::new(8).ptb_group(1));
        // A level-2 PTB covers 8 * 512 pages.
        assert_eq!(Vpn::new(0).ptb_group(2), Vpn::new(8 * 512 - 1).ptb_group(2));
        assert_ne!(Vpn::new(0).ptb_group(2), Vpn::new(8 * 512).ptb_group(2));
    }

    #[test]
    fn dram_addr_frame() {
        let d = DramAddr::new(5 * PAGE_SIZE as u64 + 17);
        assert_eq!(d.frame(), 5);
        assert_eq!(d.frame_offset(), 17);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(PhysAddr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:?}", Vpn::new(16)), "Vpn(0x10)");
    }
}
