//! CRC-32 (IEEE 802.3, reflected) shared by the whole workspace.
//!
//! One implementation serves two very different masters: the sweep
//! journal's record checksums (crash-consistent resume in `tmcc-bench`)
//! and the compressed-page integrity seals of the codec layer. Keeping
//! them on the same polynomial means a corruption injected below the
//! codec is detected with exactly the arithmetic the journal already
//! trusts, and neither crate needs a table at build time — the bitwise
//! form is fast enough for 4 KiB payloads and journal lines alike.

/// CRC-32 (IEEE, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The standard CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let base = vec![0xA5u8; 64];
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
