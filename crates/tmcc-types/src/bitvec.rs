//! Succinct bit vectors with rank/select support.
//!
//! Two structures, following the `bitm`-style split between mutable and
//! indexed bitmaps:
//!
//! * [`BitVec`] — a growable, mutable bitmap storing one bit per element
//!   in packed 64-bit words. `get`/`set`/`clear` are O(1); `rank1` /
//!   `select1` scan whole words with `count_ones`, so they are O(n/64)
//!   but allocation-free. This is the workhorse behind free-slot maps
//!   and residency/present bits, where the bitmap mutates constantly.
//! * [`RankSelect`] — a frozen snapshot of a [`BitVec`] plus a cumulative
//!   rank directory (one counter per 512-bit block, ~1.6 % overhead).
//!   `rank1` is O(1) block lookup + ≤ 8 popcounts; `select1` binary
//!   searches the directory. Build it when a bitmap stops changing and
//!   many rank/select queries follow (residency reports, audits).
//!
//! Both structures are deliberately dependency-free: the simulator's
//! determinism contract means every consumer must get bit-exact answers
//! on every platform.

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// Words per [`RankSelect`] directory block (512 bits per block).
const BLOCK_WORDS: usize = 8;

/// A growable, mutable packed bitmap.
///
/// # Examples
///
/// ```
/// use tmcc_types::bitvec::BitVec;
///
/// let mut bv = BitVec::with_len(130);
/// bv.set(0);
/// bv.set(64);
/// bv.set(129);
/// assert_eq!(bv.count_ones(), 3);
/// assert_eq!(bv.rank1(65), 2); // ones strictly below index 65
/// assert_eq!(bv.select1(2), Some(129)); // third one (0-indexed)
/// bv.clear(64);
/// assert!(!bv.get(64));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl BitVec {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bitmap of `len` zero bits.
    pub fn with_len(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(WORD_BITS)], len, ones: 0 }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits (maintained incrementally, O(1)).
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Number of clear bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.ones
    }

    /// Bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bit index {index} out of range (len {})", self.len);
        self.words[index / WORD_BITS] >> (index % WORD_BITS) & 1 == 1
    }

    /// Sets bit `index`; returns `true` if it was previously clear.
    #[inline]
    pub fn set(&mut self, index: usize) -> bool {
        assert!(index < self.len, "bit index {index} out of range (len {})", self.len);
        let word = &mut self.words[index / WORD_BITS];
        let mask = 1u64 << (index % WORD_BITS);
        let changed = *word & mask == 0;
        *word |= mask;
        self.ones += changed as usize;
        changed
    }

    /// Clears bit `index`; returns `true` if it was previously set.
    #[inline]
    pub fn clear(&mut self, index: usize) -> bool {
        assert!(index < self.len, "bit index {index} out of range (len {})", self.len);
        let word = &mut self.words[index / WORD_BITS];
        let mask = 1u64 << (index % WORD_BITS);
        let changed = *word & mask != 0;
        *word &= !mask;
        self.ones -= changed as usize;
        changed
    }

    /// Sets bit `index` to `value`; returns `true` if the bit changed.
    #[inline]
    pub fn set_to(&mut self, index: usize, value: bool) -> bool {
        if value {
            self.set(index)
        } else {
            self.clear(index)
        }
    }

    /// Appends a bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(WORD_BITS) {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            let i = self.len - 1;
            self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
            self.ones += 1;
        }
    }

    /// Grows to `new_len` bits, zero-filling; no-op when already at least
    /// that long.
    pub fn grow(&mut self, new_len: usize) {
        if new_len > self.len {
            self.words.resize(new_len.div_ceil(WORD_BITS), 0);
            self.len = new_len;
        }
    }

    /// Drops any excess word capacity (pool-shrink hygiene).
    pub fn shrink_to_fit(&mut self) {
        self.words.shrink_to_fit();
    }

    /// Number of ones strictly below `index` (`index` may equal `len`).
    pub fn rank1(&self, index: usize) -> usize {
        assert!(index <= self.len, "rank index {index} out of range (len {})", self.len);
        let full = index / WORD_BITS;
        let mut ones: usize = self.words[..full].iter().map(|w| w.count_ones() as usize).sum();
        let rem = index % WORD_BITS;
        if rem != 0 {
            ones += (self.words[full] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        ones
    }

    /// Number of zeros strictly below `index`.
    pub fn rank0(&self, index: usize) -> usize {
        index - self.rank1(index)
    }

    /// Position of the `k`-th set bit (0-indexed), or `None` if fewer than
    /// `k + 1` bits are set.
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.ones {
            return None;
        }
        let mut remaining = k;
        for (wi, &w) in self.words.iter().enumerate() {
            let pop = w.count_ones() as usize;
            if remaining < pop {
                return Some(wi * WORD_BITS + select_in_word(w, remaining as u32) as usize);
            }
            remaining -= pop;
        }
        unreachable!("ones counter out of sync with words")
    }

    /// Position of the `k`-th clear bit (0-indexed), or `None`.
    pub fn select0(&self, k: usize) -> Option<usize> {
        if k >= self.count_zeros() {
            return None;
        }
        let mut remaining = k;
        for (wi, &w) in self.words.iter().enumerate() {
            let bits_here = WORD_BITS.min(self.len - wi * WORD_BITS);
            let zeros = bits_here - (w & low_mask(bits_here)).count_ones() as usize;
            if remaining < zeros {
                return Some(wi * WORD_BITS + select_in_word(!w, remaining as u32) as usize);
            }
            remaining -= zeros;
        }
        unreachable!("zero count out of sync with words")
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * WORD_BITS + bit)
            })
        })
    }

    /// Heap bytes owned by the bitmap (capacity, not length).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// The raw packed words (low bit of word 0 is bit 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Index of the `k`-th set bit within `word` (0-indexed). `k` must be less
/// than `word.count_ones()`.
#[inline]
fn select_in_word(mut word: u64, k: u32) -> u32 {
    for _ in 0..k {
        word &= word - 1; // clear lowest set bit
    }
    word.trailing_zeros()
}

/// Mask with the low `bits` bits set (`bits <= 64`).
#[inline]
fn low_mask(bits: usize) -> u64 {
    if bits >= WORD_BITS {
        !0
    } else {
        (1u64 << bits) - 1
    }
}

/// A frozen bitmap with a cumulative rank directory for O(1)-ish rank and
/// directory-guided select.
///
/// # Examples
///
/// ```
/// use tmcc_types::bitvec::{BitVec, RankSelect};
///
/// let mut bv = BitVec::with_len(10_000);
/// for i in (0..10_000).step_by(3) {
///     bv.set(i);
/// }
/// let rs = RankSelect::build(bv);
/// assert_eq!(rs.rank1(9_000), 3_000);
/// assert_eq!(rs.select1(1_000), Some(3_000));
/// ```
#[derive(Debug, Clone)]
pub struct RankSelect {
    bits: BitVec,
    /// `blocks[i]` = ones strictly before block `i` (one block = 8 words).
    blocks: Vec<u64>,
}

impl RankSelect {
    /// Freezes `bits` and builds the rank directory.
    pub fn build(bits: BitVec) -> Self {
        let n_blocks = bits.words.len().div_ceil(BLOCK_WORDS);
        let mut blocks = Vec::with_capacity(n_blocks + 1);
        let mut acc = 0u64;
        for chunk in bits.words.chunks(BLOCK_WORDS) {
            blocks.push(acc);
            acc += chunk.iter().map(|w| u64::from(w.count_ones())).sum::<u64>();
        }
        blocks.push(acc);
        Self { bits, blocks }
    }

    /// The underlying bitmap.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Total set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones()
    }

    /// Bit at `index`.
    pub fn get(&self, index: usize) -> bool {
        self.bits.get(index)
    }

    /// Ones strictly below `index`, using the directory.
    pub fn rank1(&self, index: usize) -> usize {
        assert!(index <= self.bits.len, "rank index {index} out of range");
        let block = index / (BLOCK_WORDS * WORD_BITS);
        let mut ones = self.blocks[block] as usize;
        let first_word = block * BLOCK_WORDS;
        let full = index / WORD_BITS;
        for &w in &self.bits.words[first_word..full] {
            ones += w.count_ones() as usize;
        }
        let rem = index % WORD_BITS;
        if rem != 0 {
            ones += (self.bits.words[full] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        ones
    }

    /// Zeros strictly below `index`.
    pub fn rank0(&self, index: usize) -> usize {
        index - self.rank1(index)
    }

    /// Position of the `k`-th set bit (0-indexed), binary-searching the
    /// directory before scanning at most one block.
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.bits.ones {
            return None;
        }
        // Last block whose cumulative count is <= k.
        let block = self.blocks.partition_point(|&c| c as usize <= k) - 1;
        let mut remaining = k - self.blocks[block] as usize;
        let first_word = block * BLOCK_WORDS;
        for (off, &w) in self.bits.words[first_word..].iter().enumerate() {
            let pop = w.count_ones() as usize;
            if remaining < pop {
                return Some(
                    (first_word + off) * WORD_BITS + select_in_word(w, remaining as u32) as usize,
                );
            }
            remaining -= pop;
        }
        unreachable!("directory out of sync with words")
    }

    /// Heap bytes owned by the bitmap plus directory.
    pub fn heap_bytes(&self) -> usize {
        self.bits.heap_bytes() + self.blocks.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_get_roundtrip() {
        let mut bv = BitVec::with_len(200);
        assert!(bv.set(7));
        assert!(!bv.set(7), "already set");
        assert!(bv.get(7));
        assert!(bv.clear(7));
        assert!(!bv.clear(7), "already clear");
        assert!(!bv.get(7));
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    fn word_boundaries() {
        let mut bv = BitVec::with_len(129);
        for i in [0, 63, 64, 127, 128] {
            bv.set(i);
        }
        assert_eq!(bv.count_ones(), 5);
        assert_eq!(bv.rank1(64), 2);
        assert_eq!(bv.rank1(65), 3);
        assert_eq!(bv.rank1(129), 5);
        assert_eq!(bv.select1(0), Some(0));
        assert_eq!(bv.select1(2), Some(64));
        assert_eq!(bv.select1(4), Some(128));
        assert_eq!(bv.select1(5), None);
    }

    #[test]
    fn rank_select_inverse() {
        let mut bv = BitVec::with_len(1000);
        for i in (0..1000).step_by(7) {
            bv.set(i);
        }
        for k in 0..bv.count_ones() {
            let pos = bv.select1(k).expect("in range");
            assert_eq!(bv.rank1(pos), k);
            assert!(bv.get(pos));
        }
    }

    #[test]
    fn select0_on_mixed_words() {
        let mut bv = BitVec::with_len(130);
        for i in 0..64 {
            bv.set(i);
        }
        assert_eq!(bv.select0(0), Some(64));
        assert_eq!(bv.select0(65), Some(129));
        assert_eq!(bv.select0(66), None);
    }

    #[test]
    fn push_and_grow() {
        let mut bv = BitVec::new();
        for i in 0..100 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 100);
        assert_eq!(bv.count_ones(), 34);
        bv.grow(150);
        assert_eq!(bv.len(), 150);
        assert!(!bv.get(149));
        assert_eq!(bv.count_ones(), 34);
    }

    #[test]
    fn iter_ones_matches_gets() {
        let mut bv = BitVec::with_len(300);
        let set: Vec<usize> = vec![0, 1, 63, 64, 65, 199, 299];
        for &i in &set {
            bv.set(i);
        }
        assert_eq!(bv.iter_ones().collect::<Vec<_>>(), set);
    }

    #[test]
    fn rank_select_directory_agrees_with_scan() {
        let mut bv = BitVec::with_len(5000);
        for i in (0..5000).step_by(11) {
            bv.set(i);
        }
        let rs = RankSelect::build(bv.clone());
        for i in (0..=5000).step_by(97) {
            assert_eq!(rs.rank1(i), bv.rank1(i), "rank at {i}");
        }
        for k in (0..bv.count_ones()).step_by(13) {
            assert_eq!(rs.select1(k), bv.select1(k), "select at {k}");
        }
        assert_eq!(rs.select1(bv.count_ones()), None);
    }

    #[test]
    fn all_zero_and_all_one_blocks() {
        let mut bv = BitVec::with_len(2048);
        for i in 512..1024 {
            bv.set(i);
        }
        let rs = RankSelect::build(bv);
        assert_eq!(rs.rank1(512), 0);
        assert_eq!(rs.rank1(1024), 512);
        assert_eq!(rs.rank1(2048), 512);
        assert_eq!(rs.select1(0), Some(512));
        assert_eq!(rs.select1(511), Some(1023));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let bv = BitVec::with_len(10);
        bv.get(10);
    }
}
