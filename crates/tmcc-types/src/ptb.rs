//! The hardware-compressed page-table-block encoding (paper Fig. 7c, §V-A).
//!
//! TMCC compresses each 64 B PTB *in place* (no migration, no block-level
//! translation) by exploiting two redundancies measured in Fig. 6:
//!
//! 1. all eight PTEs almost always share identical 24-bit status fields, so
//!    the status bits are stored **once**;
//! 2. the leading PPN bits are identical because installed DRAM is far
//!    smaller than the 2^40-page architectural limit, so each PPN is
//!    truncated to the bits that can actually vary.
//!
//! The space freed holds up to eight **truncated CTEs** (28 bits each for a
//! 1 TiB-per-MC system), one per PTE, letting a page walk prefetch the
//! compression translation for its next access. [`PtbGeometry`] computes how
//! many CTEs fit for a given machine size; the paper's numbers (8 for 1 TiB,
//! 7 for 4 TiB, 6 for 16 TiB per MC, §V-A5) fall out of the bit budget.
//!
//! Decompression is "≈1 cycle; only wiring to concatenate plaintext"
//! (§V-A6) — reflected here as a trivial field rearrangement.

use crate::cte::TruncatedCte;
use crate::pte::{PageTableBlock, Pte, PteFlags, PTES_PER_PTB};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bit budget of one 64-byte PTB.
const PTB_BITS: u32 = 512;
/// Encoding header: 6 bits of PPN-prefix length, a compressed-format marker
/// and a valid bit.
const HEADER_BITS: u32 = 8;
/// Width of the architectural PPN field.
const PPN_FIELD_BITS: u32 = 40;
/// Width of the shared status field.
const STATUS_BITS: u32 = 24;

/// Sizing parameters of the compressed-PTB encoding for a given machine.
///
/// # Examples
///
/// ```
/// use tmcc_types::ptb::PtbGeometry;
///
/// // The paper's default: 1 TiB DRAM per MC, OS sees 4x physical pages.
/// let g = PtbGeometry::from_capacities(1 << 40, 4.0);
/// assert_eq!(g.embeddable_ctes(), 8);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PtbGeometry {
    /// Bits needed to name any OS physical page (PPN bits that can vary).
    ppn_bits: u32,
    /// Bits of one truncated CTE: names a 4 KiB DRAM frame within one MC.
    cte_bits: u32,
}

impl PtbGeometry {
    /// Builds the geometry from the DRAM capacity managed by one memory
    /// controller (bytes) and the OS physical-memory expansion ratio.
    ///
    /// # Panics
    ///
    /// Panics if `dram_bytes_per_mc` is smaller than one page or the
    /// expansion ratio is not at least 1.
    pub fn from_capacities(dram_bytes_per_mc: u64, expansion_ratio: f64) -> Self {
        assert!(dram_bytes_per_mc >= 4096, "at least one DRAM frame required");
        assert!(expansion_ratio >= 1.0, "expansion ratio must be >= 1");
        let dram_frames = dram_bytes_per_mc / 4096;
        let os_pages = (dram_frames as f64 * expansion_ratio).ceil() as u64;
        let cte_bits = 64 - (dram_frames - 1).leading_zeros().max(24);
        let ppn_bits = (64 - (os_pages - 1).leading_zeros()).clamp(cte_bits, PPN_FIELD_BITS);
        Self { ppn_bits, cte_bits }
    }

    /// The paper's default configuration: 1 TiB per MC, 4× expansion.
    pub fn paper_default() -> Self {
        Self::from_capacities(1 << 40, 4.0)
    }

    /// Bits of one truncated PPN stored in the compressed PTB.
    pub fn ppn_bits(self) -> u32 {
        self.ppn_bits
    }

    /// Bits of one embedded truncated CTE.
    pub fn cte_bits(self) -> u32 {
        self.cte_bits
    }

    /// Length of the shared PPN prefix that is stored only once.
    pub fn prefix_bits(self) -> u32 {
        PPN_FIELD_BITS - self.ppn_bits
    }

    /// How many truncated CTEs fit alongside the compressed PTEs
    /// (paper §V-A5: 8 / 7 / 6 for 1 / 4 / 16 TiB per MC).
    pub fn embeddable_ctes(self) -> usize {
        let fixed =
            HEADER_BITS + STATUS_BITS + self.prefix_bits() + PTES_PER_PTB as u32 * self.ppn_bits;
        if fixed >= PTB_BITS {
            return 0;
        }
        (((PTB_BITS - fixed) / self.cte_bits) as usize).min(PTES_PER_PTB)
    }
}

impl Default for PtbGeometry {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Why a PTB could not be stored in the compressed encoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PtbCompressError {
    /// The eight PTEs do not share identical status bits (paper: TMCC
    /// compresses a PTB *only if* the status bits are identical).
    NonUniformStatus,
    /// Some PPN differs from the others within the prefix that the encoding
    /// truncates away, so truncation would lose information.
    PpnPrefixDiverges {
        /// Leading bits the PTB's PPNs actually share.
        common_bits: u32,
        /// Leading bits the geometry needs them to share.
        required_bits: u32,
    },
}

impl fmt::Display for PtbCompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonUniformStatus => write!(f, "PTB status bits differ across entries"),
            Self::PpnPrefixDiverges { common_bits, required_bits } => {
                write!(f, "PPNs share only {common_bits} leading bits, need {required_bits}")
            }
        }
    }
}

impl std::error::Error for PtbCompressError {}

/// A PTB stored in the compressed encoding of Fig. 7c, able to carry
/// embedded truncated CTEs.
///
/// The struct keeps decoded fields (hardware would keep packed bits); the
/// *capacity* rules are enforced from [`PtbGeometry`], so the simulator can
/// never embed more CTEs than the bit budget allows.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CompressedPtb {
    geometry: PtbGeometry,
    status: PteFlags,
    ppn_prefix: u64,
    ppn_suffixes: [u64; PTES_PER_PTB],
    /// Entry `i` holds the embedded CTE for the page `ppn_suffixes[i]` points
    /// to, if one has been written and slot `i` is within capacity.
    embedded: [Option<TruncatedCte>; PTES_PER_PTB],
    /// Bit `i` = even parity over `embedded[i]`'s frame bits. Maintained by
    /// every legitimate write; only
    /// [`corrupt_embedded_bit`](Self::corrupt_embedded_bit) changes state
    /// without it, so [`audit_embedded`](Self::audit_embedded) detects any
    /// odd-weight upset of an embedded CTE separately from payload CRCs.
    #[serde(default)]
    embedded_parity: u8,
}

impl CompressedPtb {
    /// Attempts to compress a software-visible PTB.
    ///
    /// Mirrors the hardware check: the encoding is only used when all status
    /// bits are identical and every PPN shares the prefix the machine-size
    /// geometry truncates (paper Fig. 7 caption).
    ///
    /// # Errors
    ///
    /// Returns [`PtbCompressError`] when the PTB does not satisfy either
    /// precondition; callers fall back to the uncompressed encoding.
    pub fn compress(ptb: &PageTableBlock, geometry: PtbGeometry) -> Result<Self, PtbCompressError> {
        if !ptb.uniform_status() {
            return Err(PtbCompressError::NonUniformStatus);
        }
        let required = geometry.prefix_bits();
        let common = ptb.common_ppn_prefix_bits();
        if common < required {
            return Err(PtbCompressError::PpnPrefixDiverges {
                common_bits: common,
                required_bits: required,
            });
        }
        let suffix_mask =
            if geometry.ppn_bits() == 64 { u64::MAX } else { (1u64 << geometry.ppn_bits()) - 1 };
        let first = ptb.entry(0).ppn().raw();
        let mut suffixes = [0u64; PTES_PER_PTB];
        for (i, s) in suffixes.iter_mut().enumerate() {
            *s = ptb.entry(i).ppn().raw() & suffix_mask;
        }
        Ok(Self {
            geometry,
            status: ptb.entry(0).flags(),
            ppn_prefix: first >> geometry.ppn_bits(),
            ppn_suffixes: suffixes,
            embedded: [None; PTES_PER_PTB],
            embedded_parity: 0,
        })
    }

    /// Even parity of one embedded slot's frame bits (0 for empty slots).
    fn slot_parity(&self, slot: usize) -> u8 {
        match self.embedded[slot] {
            Some(cte) => (cte.frame().count_ones() & 1) as u8,
            None => 0,
        }
    }

    /// Recomputes slot `slot`'s stored parity bit after a legitimate write.
    fn refresh_parity(&mut self, slot: usize) {
        let p = self.slot_parity(slot);
        self.embedded_parity = (self.embedded_parity & !(1 << slot)) | (p << slot);
    }

    /// Reconstructs the software-visible PTB ("≈1 cycle, only wiring",
    /// §V-A6). Embedded CTEs are invisible to software by construction.
    pub fn decompress(&self) -> PageTableBlock {
        let mut entries = [Pte::NOT_PRESENT; PTES_PER_PTB];
        for (i, e) in entries.iter_mut().enumerate() {
            let ppn = (self.ppn_prefix << self.geometry.ppn_bits()) | self.ppn_suffixes[i];
            *e = Pte::new(crate::addr::Ppn::new(ppn), self.status);
        }
        PageTableBlock::new(entries)
    }

    /// The geometry this PTB was encoded with.
    pub fn geometry(&self) -> PtbGeometry {
        self.geometry
    }

    /// Number of CTE slots this encoding can hold.
    pub fn capacity(&self) -> usize {
        self.geometry.embeddable_ctes()
    }

    /// The embedded CTE for PTE slot `slot`, if present.
    ///
    /// Slots beyond [`Self::capacity`] always return `None` (in larger
    /// machines the last PTEs simply have no room for their CTE, §V-A5).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn embedded_cte(&self, slot: usize) -> Option<TruncatedCte> {
        assert!(slot < PTES_PER_PTB, "slot out of range");
        self.embedded[slot]
    }

    /// Writes (or overwrites) the embedded CTE for PTE slot `slot`.
    ///
    /// Returns `false` without writing when `slot` is beyond the bit-budget
    /// capacity — the hardware simply cannot store that CTE.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn embed_cte(&mut self, slot: usize, cte: TruncatedCte) -> bool {
        assert!(slot < PTES_PER_PTB, "slot out of range");
        if slot >= self.capacity() {
            return false;
        }
        self.embedded[slot] = Some(cte);
        self.refresh_parity(slot);
        true
    }

    /// Clears the embedded CTE for `slot` (e.g., after OS rewrites the PTE).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn clear_cte(&mut self, slot: usize) {
        assert!(slot < PTES_PER_PTB, "slot out of range");
        self.embedded[slot] = None;
        self.refresh_parity(slot);
    }

    /// Fault-injection hook: flips one bit of embedded slot `slot` *without*
    /// updating parity — what a DRAM upset inside the compressed PTB does.
    /// `bit` is taken modulo `TruncatedCte::BITS + 1`; the extra position is
    /// the parity bit itself. Returns `false` (no flip) when the slot holds
    /// no CTE and the target is a frame bit.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn corrupt_embedded_bit(&mut self, slot: usize, bit: u32) -> bool {
        assert!(slot < PTES_PER_PTB, "slot out of range");
        let b = bit % (TruncatedCte::BITS + 1);
        if b == TruncatedCte::BITS {
            self.embedded_parity ^= 1 << slot;
            return true;
        }
        match self.embedded[slot] {
            Some(cte) => {
                self.embedded[slot] = Some(TruncatedCte::new(cte.frame() ^ (1 << b)));
                true
            }
            None => false,
        }
    }

    /// Read-only integrity audit: bitmask of slots whose stored parity bit
    /// disagrees with the parity recomputed over the embedded frame. Zero on
    /// an uncorrupted PTB; any odd-weight upset of a slot shows up here,
    /// even-weight bursts within one slot can escape.
    pub fn audit_embedded(&self) -> u8 {
        (0..PTES_PER_PTB as u32)
            .filter(|&s| self.embedded_parity >> s & 1 != self.slot_parity(s as usize))
            .fold(0, |m, s| m | (1 << s))
    }

    /// Drops every parity-violating embedded CTE (a corrupt embedding must
    /// not launch a speculative DRAM access — the walk falls back to the
    /// authoritative CTE fetch instead). Returns the number dropped.
    pub fn scrub_embedded(&mut self) -> u32 {
        let bad = self.audit_embedded();
        for slot in 0..PTES_PER_PTB {
            if bad >> slot & 1 != 0 {
                self.embedded[slot] = None;
                self.refresh_parity(slot);
            }
        }
        bad.count_ones()
    }

    /// Copies every embedded CTE from `stale` into `self` where the PTE's
    /// PPN is unchanged — the L2-cache action that preserves embeddings when
    /// the OS rewrites a PTB (paper §V-A4: "L2 copies into the incoming
    /// dirty block any embedded CTEs held in the stale L2 copy").
    pub fn preserve_embeddings_from(&mut self, stale: &CompressedPtb) {
        for slot in 0..PTES_PER_PTB.min(self.capacity()) {
            if self.embedded[slot].is_none()
                && self.ppn_suffixes[slot] == stale.ppn_suffixes[slot]
                && self.ppn_prefix == stale.ppn_prefix
            {
                self.embedded[slot] = stale.embedded[slot];
                // Copy the *stored* parity bit verbatim: recomputing here
                // would launder a corrupt stale embedding into a valid one.
                self.embedded_parity = (self.embedded_parity & !(1 << slot))
                    | (stale.embedded_parity >> slot & 1) << slot;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ppn;

    fn uniform_ptb(base: u64) -> PageTableBlock {
        let flags = PteFlags::present_rw();
        let mut entries = [Pte::NOT_PRESENT; PTES_PER_PTB];
        for (i, e) in entries.iter_mut().enumerate() {
            *e = Pte::new(Ppn::new(base + i as u64), flags);
        }
        PageTableBlock::new(entries)
    }

    #[test]
    fn geometry_matches_paper_capacities() {
        // §V-A5: 1 TiB per MC + 4x expansion -> 8 embedded CTEs.
        assert_eq!(PtbGeometry::from_capacities(1 << 40, 4.0).embeddable_ctes(), 8);
        // 4 TiB -> 7, 16 TiB -> 6.
        assert_eq!(PtbGeometry::from_capacities(1 << 42, 4.0).embeddable_ctes(), 7);
        assert_eq!(PtbGeometry::from_capacities(1 << 44, 4.0).embeddable_ctes(), 6);
    }

    #[test]
    fn geometry_truncated_cte_is_28_bits_at_1tib() {
        let g = PtbGeometry::paper_default();
        assert_eq!(g.cte_bits(), TruncatedCte::BITS);
        assert_eq!(g.ppn_bits(), 30); // 4 TiB of OS pages
        assert_eq!(g.prefix_bits(), 10);
    }

    #[test]
    fn compress_decompress_round_trip() {
        let ptb = uniform_ptb(0x12340);
        let c = CompressedPtb::compress(&ptb, PtbGeometry::paper_default()).unwrap();
        assert_eq!(c.decompress(), ptb);
    }

    #[test]
    fn compress_rejects_non_uniform_status() {
        let mut ptb = uniform_ptb(100);
        ptb.set_entry(2, Pte::new(Ppn::new(102), PteFlags::new(PteFlags::PRESENT, 0)));
        assert_eq!(
            CompressedPtb::compress(&ptb, PtbGeometry::paper_default()),
            Err(PtbCompressError::NonUniformStatus)
        );
    }

    #[test]
    fn compress_rejects_divergent_prefix() {
        let flags = PteFlags::present_rw();
        let mut entries = [Pte::NOT_PRESENT; PTES_PER_PTB];
        for (i, e) in entries.iter_mut().enumerate() {
            *e = Pte::new(Ppn::new(i as u64), flags);
        }
        // One PPN with a bit set in the truncated prefix region.
        entries[7] = Pte::new(Ppn::new(1 << 39), flags);
        let ptb = PageTableBlock::new(entries);
        let err = CompressedPtb::compress(&ptb, PtbGeometry::paper_default()).unwrap_err();
        assert!(matches!(err, PtbCompressError::PpnPrefixDiverges { .. }));
    }

    #[test]
    fn embed_respects_capacity() {
        let ptb = uniform_ptb(0);
        // 16 TiB machine: only 6 slots have room.
        let g = PtbGeometry::from_capacities(1 << 44, 4.0);
        let mut c = CompressedPtb::compress(&ptb, g).unwrap();
        assert!(c.embed_cte(0, TruncatedCte::new(1)));
        assert!(c.embed_cte(5, TruncatedCte::new(2)));
        assert!(!c.embed_cte(6, TruncatedCte::new(3)), "slot 6 exceeds budget");
        assert_eq!(c.embedded_cte(0), Some(TruncatedCte::new(1)));
        assert_eq!(c.embedded_cte(6), None);
    }

    #[test]
    fn embeddings_survive_decompress_invisible_to_software() {
        let ptb = uniform_ptb(500);
        let mut c = CompressedPtb::compress(&ptb, PtbGeometry::paper_default()).unwrap();
        c.embed_cte(3, TruncatedCte::new(77));
        // Software sees exactly the original PTB.
        assert_eq!(c.decompress(), ptb);
    }

    #[test]
    fn embedded_parity_detects_single_bit_flips() {
        let ptb = uniform_ptb(0x2000);
        let mut c = CompressedPtb::compress(&ptb, PtbGeometry::paper_default()).unwrap();
        c.embed_cte(2, TruncatedCte::new(0xABCDE));
        c.embed_cte(5, TruncatedCte::new(0x1));
        assert_eq!(c.audit_embedded(), 0);
        for bit in 0..TruncatedCte::BITS + 1 {
            let mut bad = c.clone();
            assert!(bad.corrupt_embedded_bit(2, bit));
            assert_eq!(bad.audit_embedded(), 1 << 2, "flip of bit {bit} must be seen");
            assert_eq!(bad.scrub_embedded(), 1);
            assert_eq!(bad.audit_embedded(), 0);
            assert_eq!(bad.embedded_cte(2), None, "corrupt embedding dropped");
            assert_eq!(bad.embedded_cte(5), Some(TruncatedCte::new(0x1)), "clean slot kept");
        }
        // An empty slot has no frame bits to corrupt.
        assert!(!c.corrupt_embedded_bit(0, 3));
    }

    #[test]
    fn embedded_double_flips_can_escape_parity() {
        let ptb = uniform_ptb(0x3000);
        let mut c = CompressedPtb::compress(&ptb, PtbGeometry::paper_default()).unwrap();
        c.embed_cte(1, TruncatedCte::new(0x100));
        c.corrupt_embedded_bit(1, 0);
        c.corrupt_embedded_bit(1, 4);
        assert_eq!(c.audit_embedded(), 0, "even-weight burst escapes parity");
        assert_eq!(c.embedded_cte(1), Some(TruncatedCte::new(0x111)), "silently wrong");
    }

    #[test]
    fn preserve_embeddings_carries_parity_verbatim() {
        let g = PtbGeometry::paper_default();
        let ptb = uniform_ptb(0x4000);
        let mut old = CompressedPtb::compress(&ptb, g).unwrap();
        old.embed_cte(0, TruncatedCte::new(7));
        old.corrupt_embedded_bit(0, 1); // now detectably corrupt in `old`
        let mut new = CompressedPtb::compress(&ptb, g).unwrap();
        new.preserve_embeddings_from(&old);
        assert_eq!(new.audit_embedded(), 1, "corruption must not launder through a copy");
    }

    #[test]
    fn preserve_embeddings_on_unchanged_slots() {
        let g = PtbGeometry::paper_default();
        let old_ptb = uniform_ptb(1000);
        let mut old = CompressedPtb::compress(&old_ptb, g).unwrap();
        old.embed_cte(0, TruncatedCte::new(11));
        old.embed_cte(1, TruncatedCte::new(22));

        // OS remaps slot 1 to a different PPN; slot 0 unchanged.
        let mut new_ptb = old_ptb;
        new_ptb.set_entry(1, Pte::new(Ppn::new(9999), PteFlags::present_rw()));
        let mut new = CompressedPtb::compress(&new_ptb, g).unwrap();
        new.preserve_embeddings_from(&old);
        assert_eq!(new.embedded_cte(0), Some(TruncatedCte::new(11)));
        assert_eq!(new.embedded_cte(1), None, "remapped slot must drop its CTE");
    }
}
