//! A vendored FxHash-style hasher for the workspace's hot-path maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, whose per-lookup
//! cost shows up directly in the simulator's per-access loop (every page
//! touch used to pay several hash invocations). The dense-slab refactor
//! removes most of those maps entirely; the few that must remain — the
//! page-table directory, the PTB embed/slot maps — key on small integers,
//! where a multiply-fold hash is both far cheaper and collision-adequate.
//!
//! The algorithm follows the well-known Firefox/rustc "Fx" construction:
//! fold each input word into the state with an xor-rotate-multiply step
//! using a 64-bit odd constant derived from the golden ratio. It is not
//! DoS-resistant; none of these maps take attacker-controlled keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio multiplier (⌊2^64 / φ⌋, forced odd).
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Rotation applied to the accumulated state before each fold, as in the
/// upstream Fx construction.
const ROTATE: u32 = 5;

/// The hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// The Fx step: rotate the state, xor the word in, multiply. The
    /// multiply must come *last* — `hashbrown` takes the bucket index
    /// from the hash's **low** bits, and only a trailing multiply leaves
    /// them mixed. (An earlier revision rotated after the xor and fed the
    /// multiply a value whose low bits were all zero for every key below
    /// 2^38, collapsing whole maps into one bucket chain.)
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    /// Finishes with an xor-fold of the high bits into the low bits:
    /// the workspace keys many maps on aligned addresses (PTB blocks,
    /// cacheline keys) whose trailing zeros would otherwise zero the low
    /// product bits the bucket mask reads.
    #[inline]
    fn finish(&self) -> u64 {
        self.hash ^ (self.hash >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (head, tail) = rest.split_at(8);
            self.fold(u64::from_le_bytes(head.try_into().expect("8-byte chunk")));
            rest = tail;
        }
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    /// Buckets seen when hashing `keys` into a 4096-way pow2 table using
    /// the LOW bits, exactly as `hashbrown`'s bucket mask does.
    fn low_bit_buckets(keys: impl Iterator<Item = u64>) -> usize {
        keys.map(|k| {
            let mut h = FxHasher::default();
            h.write_u64(k);
            h.finish() & 0xFFF
        })
        .collect::<HashSet<u64>>()
        .len()
    }

    // A hash behaving like a random function fills ~4096·(1−e⁻¹) ≈ 2589
    // of 4096 buckets at load factor 1; the failure mode being guarded
    // against (all keys in one chain) fills a handful. 2000 cleanly
    // separates the two.
    const HEALTHY_BUCKETS: usize = 2000;

    #[test]
    fn small_integer_keys_spread_in_low_bits() {
        // Sequential keys must not collide in the low bits a pow2-sized
        // table masks on.
        let n = low_bit_buckets(0u64..4096);
        assert!(n > HEALTHY_BUCKETS, "only {n} distinct low-12 buckets for sequential keys");
    }

    #[test]
    fn aligned_address_keys_spread_in_low_bits() {
        // Page/cacheline-aligned addresses (trailing zeros) are the
        // workspace's worst-case key shape; they collapsed to one bucket
        // under a multiply-first fold.
        let n = low_bit_buckets((0u64..4096).map(|k| k * 4096));
        assert!(n > HEALTHY_BUCKETS, "only {n} distinct low-12 buckets for 4096-aligned keys");
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 7919, i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 7919)), Some(&i));
        }
    }

    #[test]
    fn byte_writes_match_word_writes_for_len() {
        // Not required to be equal to write_u64 (std Hash prefixes lengths
        // anyway); just exercise the partial-word tail path.
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let full = h.finish();
        let mut g = FxHasher::default();
        g.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(full, g.finish());
    }
}
