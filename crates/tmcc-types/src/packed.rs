//! Fixed-width packed integer sequences (`cseq`-style compact sequences).
//!
//! [`PackedSeq`] stores unsigned integers of a fixed bit width back to
//! back in 64-bit words, so a sequence whose values fit in `w` bits costs
//! `w` bits per element instead of 64. The simulator uses it for metadata
//! whose value range is known and small — CTE slot indices, compression
//! classes, per-slot byte counts — where a `Vec<u64>` would waste 6-8× the
//! space at datacenter-scale page counts.
//!
//! Values may straddle word boundaries; `get`/`set` handle the split read
//! and read-modify-write explicitly, so no unsafe code and no platform
//! dependence.

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// A growable sequence of fixed-width unsigned integers.
///
/// # Examples
///
/// ```
/// use tmcc_types::packed::PackedSeq;
///
/// let mut seq = PackedSeq::new(13); // values 0..8192
/// for v in [0u64, 1, 4095, 8191] {
///     seq.push(v);
/// }
/// assert_eq!(seq.get(2), 4095);
/// seq.set(0, 7777);
/// assert_eq!(seq.get(0), 7777);
/// assert_eq!(seq.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSeq {
    words: Vec<u64>,
    width: u32,
    mask: u64,
    len: usize,
}

impl PackedSeq {
    /// An empty sequence of `width`-bit values (`1..=64`).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "width {width} must be in 1..=64");
        let mask = if width == 64 { !0 } else { (1u64 << width) - 1 };
        Self { words: Vec::new(), width, mask, len: 0 }
    }

    /// A sequence of `len` zeros of `width`-bit values.
    pub fn with_len(width: u32, len: usize) -> Self {
        let mut s = Self::new(width);
        s.words = vec![0; (len * width as usize).div_ceil(WORD_BITS)];
        s.len = len;
        s
    }

    /// Bit width per element.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Largest storable value.
    pub fn max_value(&self) -> u64 {
        self.mask
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn get(&self, index: usize) -> u64 {
        assert!(index < self.len, "index {index} out of range (len {})", self.len);
        let bit = index * self.width as usize;
        let word = bit / WORD_BITS;
        let off = bit % WORD_BITS;
        let lo = self.words[word] >> off;
        let have = WORD_BITS - off;
        let v = if have >= self.width as usize { lo } else { lo | (self.words[word + 1] << have) };
        v & self.mask
    }

    /// Stores `value` at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len` or `value` does not fit in the width.
    #[inline]
    pub fn set(&mut self, index: usize, value: u64) {
        assert!(index < self.len, "index {index} out of range (len {})", self.len);
        assert!(value <= self.mask, "value {value} exceeds {}-bit width", self.width);
        let bit = index * self.width as usize;
        let word = bit / WORD_BITS;
        let off = bit % WORD_BITS;
        self.words[word] = (self.words[word] & !(self.mask << off)) | (value << off);
        let have = WORD_BITS - off;
        if have < self.width as usize {
            let spill = self.width as usize - have;
            let spill_mask = (1u64 << spill) - 1;
            self.words[word + 1] = (self.words[word + 1] & !spill_mask) | (value >> have);
        }
    }

    /// Appends `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in the width.
    pub fn push(&mut self, value: u64) {
        let needed = ((self.len + 1) * self.width as usize).div_ceil(WORD_BITS);
        if needed > self.words.len() {
            self.words.resize(needed, 0);
        }
        self.len += 1;
        self.set(self.len - 1, value);
    }

    /// Removes all elements, keeping capacity.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Drops any excess word capacity.
    pub fn shrink_to_fit(&mut self) {
        self.words.shrink_to_fit();
    }

    /// Heap bytes owned by the sequence (capacity, not length).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// Iterator over all elements, in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straddling_values_roundtrip() {
        // width 13 → element 4 starts at bit 52 and straddles words 0/1.
        let mut s = PackedSeq::new(13);
        let vals = [1u64, 8191, 0, 4096, 8190, 17, 5555];
        for &v in &vals {
            s.push(v);
        }
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(s.get(i), v, "element {i}");
        }
        s.set(4, 123);
        assert_eq!(s.get(4), 123);
        assert_eq!(s.get(3), 4096, "neighbor untouched");
        assert_eq!(s.get(5), 17, "neighbor untouched");
    }

    #[test]
    fn width_64_uses_full_words() {
        let mut s = PackedSeq::new(64);
        s.push(u64::MAX);
        s.push(0);
        s.push(0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(s.get(0), u64::MAX);
        assert_eq!(s.get(2), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn width_1_is_a_bitmap() {
        let mut s = PackedSeq::with_len(1, 200);
        s.set(0, 1);
        s.set(63, 1);
        s.set(64, 1);
        s.set(199, 1);
        assert_eq!(s.iter().sum::<u64>(), 4);
    }

    #[test]
    fn with_len_starts_zeroed() {
        let s = PackedSeq::with_len(7, 100);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|v| v == 0));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_value_rejected() {
        let mut s = PackedSeq::new(4);
        s.push(16);
    }

    #[test]
    fn heap_cost_tracks_width() {
        let narrow = PackedSeq::with_len(4, 1024);
        let wide = PackedSeq::with_len(32, 1024);
        assert!(narrow.heap_bytes() * 4 <= wide.heap_bytes());
    }
}
