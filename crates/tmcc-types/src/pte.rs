//! x86-64-style page-table entries and page-table blocks.
//!
//! Per the paper (§V-A1, Fig. 7a): each 8-byte PTE consists of **24 status
//! bits** (the low 12 architectural flag bits and the high 12
//! ignored/protection bits, including XD) and a **40-bit physical page
//! number** in bits 12..52. A *page-table block* (PTB) is the 64-byte
//! cacheline fetched by one page-walk step and holds **eight** PTEs.
//!
//! The key empirical observation the TMCC design rests on (Fig. 6): adjacent
//! virtual pages almost always have identical status bits, and the most
//! significant PPN bits are identical because installed DRAM is much smaller
//! than the 2^40-page architectural limit. [`PageTableBlock::uniform_status`]
//! and [`PageTableBlock::common_ppn_prefix_bits`] expose exactly those two
//! properties; the compressed encoding that exploits them lives in
//! [`crate::ptb`].

use crate::addr::Ppn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of PTEs in one 64 B page-table block.
pub const PTES_PER_PTB: usize = 8;

/// Mask of the 40 PPN bits within a raw PTE (bits 12..52).
const PPN_MASK: u64 = ((1u64 << 40) - 1) << 12;

/// The 24 status bits of a PTE, split into the low 12 (bits 0..12) and high
/// 12 (bits 52..64) architectural positions.
///
/// Only a handful of individual flags are given names because the simulator
/// needs them; the rest travel as opaque bits, exactly as hardware treats
/// them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PteFlags {
    low: u16,  // 12 significant bits
    high: u16, // 12 significant bits
}

impl PteFlags {
    /// Present bit (bit 0).
    pub const PRESENT: u16 = 1 << 0;
    /// Writable bit (bit 1).
    pub const WRITABLE: u16 = 1 << 1;
    /// User-accessible bit (bit 2).
    pub const USER: u16 = 1 << 2;
    /// Accessed bit (bit 5).
    pub const ACCESSED: u16 = 1 << 5;
    /// Dirty bit (bit 6).
    pub const DIRTY: u16 = 1 << 6;
    /// Page-size bit (bit 7) — set in a level-2 entry that maps a 2 MiB page.
    pub const HUGE: u16 = 1 << 7;

    /// Builds flags from the low-12 and high-12 bit groups.
    ///
    /// # Panics
    ///
    /// Panics if either group has bits set above bit 11.
    pub fn new(low: u16, high: u16) -> Self {
        assert!(low < (1 << 12), "low status bits exceed 12 bits");
        assert!(high < (1 << 12), "high status bits exceed 12 bits");
        Self { low, high }
    }

    /// Typical flags for a present, writable, accessed kernel data page.
    pub fn present_rw() -> Self {
        Self::new(Self::PRESENT | Self::WRITABLE | Self::ACCESSED, 0)
    }

    /// The low-12 status bits.
    pub fn low(self) -> u16 {
        self.low
    }

    /// The high-12 status bits.
    pub fn high(self) -> u16 {
        self.high
    }

    /// Whether the present bit is set.
    pub fn is_present(self) -> bool {
        self.low & Self::PRESENT != 0
    }

    /// Whether the page-size (huge) bit is set.
    pub fn is_huge(self) -> bool {
        self.low & Self::HUGE != 0
    }

    /// Packs the 24 status bits into their positions in a raw 64-bit PTE.
    pub fn to_raw(self) -> u64 {
        (self.low as u64) | ((self.high as u64) << 52)
    }

    /// Extracts the 24 status bits from a raw 64-bit PTE.
    pub fn from_raw(raw: u64) -> Self {
        Self { low: (raw & 0xfff) as u16, high: ((raw >> 52) & 0xfff) as u16 }
    }
}

impl fmt::Debug for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PteFlags(low={:#05x}, high={:#05x})", self.low, self.high)
    }
}

/// A single 8-byte page-table entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Pte(u64);

impl Pte {
    /// A non-present (zero) entry.
    pub const NOT_PRESENT: Pte = Pte(0);

    /// Builds a PTE from a PPN and status flags.
    ///
    /// # Panics
    ///
    /// Panics if `ppn` does not fit in 40 bits.
    pub fn new(ppn: Ppn, flags: PteFlags) -> Self {
        assert!(ppn.raw() < (1 << 40), "PPN exceeds 40 bits");
        Self((ppn.raw() << 12) | flags.to_raw())
    }

    /// Reconstructs a PTE from its raw 64-bit representation.
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw 64-bit representation.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The 40-bit physical page number.
    pub fn ppn(self) -> Ppn {
        Ppn::new((self.0 & PPN_MASK) >> 12)
    }

    /// The 24 status bits.
    pub fn flags(self) -> PteFlags {
        PteFlags::from_raw(self.0)
    }

    /// Whether this entry maps anything.
    pub fn is_present(self) -> bool {
        self.flags().is_present()
    }

    /// Serializes to the 8 little-endian bytes hardware would see in DRAM.
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }

    /// Deserializes from 8 little-endian bytes.
    pub fn from_bytes(bytes: [u8; 8]) -> Self {
        Self(u64::from_le_bytes(bytes))
    }
}

impl fmt::Debug for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pte(ppn={:#x}, present={})", self.ppn().raw(), self.is_present())
    }
}

/// The 64-byte block of eight PTEs fetched by one page-walk step
/// (paper Fig. 7b).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PageTableBlock {
    entries: [Pte; PTES_PER_PTB],
}

impl PageTableBlock {
    /// Builds a PTB from eight entries.
    pub const fn new(entries: [Pte; PTES_PER_PTB]) -> Self {
        Self { entries }
    }

    /// The eight entries.
    pub fn entries(&self) -> &[Pte; PTES_PER_PTB] {
        &self.entries
    }

    /// Returns entry `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8`.
    pub fn entry(&self, idx: usize) -> Pte {
        self.entries[idx]
    }

    /// Replaces entry `idx` (what an OS write to the PTB does).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8`.
    pub fn set_entry(&mut self, idx: usize, pte: Pte) {
        self.entries[idx] = pte;
    }

    /// Whether all eight entries carry identical status bits — the property
    /// measured in the paper's Fig. 6 (99.94 % of L1 PTBs, 99.3 % of L2
    /// PTBs) and the precondition for the compressed-PTB encoding.
    pub fn uniform_status(&self) -> bool {
        let first = self.entries[0].flags();
        self.entries.iter().all(|e| e.flags() == first)
    }

    /// The number of *leading* PPN bits (of 40) identical across all eight
    /// entries. With `T` terabytes of installed DRAM the top
    /// `40 - log2(T·2^18)` bits are identical in practice (paper §V-A1).
    pub fn common_ppn_prefix_bits(&self) -> u32 {
        let first = self.entries[0].ppn().raw();
        let mut diff = 0u64;
        for e in &self.entries[1..] {
            diff |= e.ppn().raw() ^ first;
        }
        // Count identical leading bits within the 40-bit field.
        (diff << 24).leading_zeros().min(40)
    }

    /// Serializes to the 64 bytes hardware would see in DRAM.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        for (i, e) in self.entries.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&e.to_bytes());
        }
        out
    }

    /// Deserializes from 64 bytes.
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        let mut entries = [Pte::NOT_PRESENT; PTES_PER_PTB];
        for (i, e) in entries.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            *e = Pte::from_bytes(b);
        }
        Self { entries }
    }
}

impl fmt::Debug for PageTableBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageTableBlock")
            .field("uniform_status", &self.uniform_status())
            .field("entries", &self.entries)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ptb_with_ppns(ppns: [u64; 8]) -> PageTableBlock {
        let flags = PteFlags::present_rw();
        PageTableBlock::new(ppns.map(|p| Pte::new(Ppn::new(p), flags)))
    }

    #[test]
    fn pte_round_trip() {
        let flags = PteFlags::new(0xabc, 0x123);
        let pte = Pte::new(Ppn::new(0xdead_beef), flags);
        assert_eq!(pte.ppn().raw(), 0xdead_beef);
        assert_eq!(pte.flags(), flags);
        assert_eq!(Pte::from_bytes(pte.to_bytes()), pte);
    }

    #[test]
    #[should_panic(expected = "PPN exceeds 40 bits")]
    fn pte_rejects_wide_ppn() {
        let _ = Pte::new(Ppn::new(1 << 40), PteFlags::default());
    }

    #[test]
    #[should_panic(expected = "low status bits exceed 12 bits")]
    fn flags_reject_wide_low() {
        let _ = PteFlags::new(1 << 12, 0);
    }

    #[test]
    fn uniform_status_detection() {
        let mut ptb = ptb_with_ppns([1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(ptb.uniform_status());
        ptb.set_entry(3, Pte::new(Ppn::new(4), PteFlags::new(PteFlags::PRESENT, 0)));
        assert!(!ptb.uniform_status());
    }

    #[test]
    fn common_prefix_bits() {
        // All PPNs below 2^8 differ only in the low 8 bits: >= 32 common bits.
        let ptb = ptb_with_ppns([0, 1, 2, 3, 4, 5, 6, 255]);
        assert_eq!(ptb.common_ppn_prefix_bits(), 32);
        // Identical PPNs share all 40 bits.
        let same = ptb_with_ppns([9; 8]);
        assert_eq!(same.common_ppn_prefix_bits(), 40);
        // A difference in the top PPN bit leaves zero common bits.
        let wide = ptb_with_ppns([0, 1 << 39, 0, 0, 0, 0, 0, 0]);
        assert_eq!(wide.common_ppn_prefix_bits(), 0);
    }

    #[test]
    fn ptb_byte_round_trip() {
        let ptb = ptb_with_ppns([10, 20, 30, 40, 50, 60, 70, 80]);
        assert_eq!(PageTableBlock::from_bytes(&ptb.to_bytes()), ptb);
    }

    #[test]
    fn not_present_is_zero() {
        assert_eq!(Pte::NOT_PRESENT.raw(), 0);
        assert!(!Pte::NOT_PRESENT.is_present());
    }
}
