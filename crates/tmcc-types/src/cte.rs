//! Compression translation entries (CTEs).
//!
//! A CTE is the hardware-managed translation from a *physical* page (what the
//! OS page table produces) to a *DRAM* location (where the bytes actually
//! are). The paper uses two very different CTE shapes:
//!
//! * [`Cte`] — TMCC's 8-byte **page-level** entry (paper Fig. 13): one DRAM
//!   frame pointer for the whole 4 KiB page, an `isIncompressible` bit, the
//!   memory level the page currently lives in, and a 32-bit *pair vector*
//!   recording which adjacent block pairs of the page are stored in the
//!   compressed-PTB encoding. Because it translates a whole page, a 64 B
//!   cacheline of CTEs reaches 8 pages (32 KiB) — the source of TMCC's CTE
//!   cache-reach advantage (§IV).
//! * [`BlockMetadata`] — the Compresso-style 64-byte **block-level** entry
//!   (§III): individualized DRAM placement for each of the 64 blocks of a
//!   page, so one 64 B cacheline reaches only a single 4 KiB page.
//!
//! `BlockMetadata` is stored expanded in host memory for simulator
//! convenience; its **DRAM cost** is modelled by
//! [`BlockMetadata::SIZE_IN_DRAM`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which exclusive memory level a page currently resides in (paper §IV-A).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MemoryLevel {
    /// Uncompressed (or bandwidth-compressed) fast level; accessed at block
    /// granularity.
    Ml1,
    /// Aggressively Deflate-compressed capacity level; accessed at page
    /// granularity.
    Ml2,
}

/// TMCC's 8-byte page-level compression translation entry (paper Fig. 13).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cte {
    /// 28-bit DRAM frame number (1 TiB per memory controller / 4 KiB frames).
    frame: u32,
    /// Pair vector: bit *i* set means blocks `2i` and `2i+1` of the page are
    /// stored in the compressed-PTB encoding (paper §V-A4).
    pair_vector: u32,
    level: MemoryLevel,
    incompressible: bool,
}

impl Cte {
    /// Modelled size of one CTE in DRAM, in bytes.
    pub const SIZE_IN_DRAM: usize = 8;
    /// Number of frame bits in a full CTE (1 TiB / 4 KiB = 2^28 frames).
    pub const FRAME_BITS: u32 = 28;

    /// Creates a CTE mapping a page to DRAM frame `frame` in `level`.
    ///
    /// # Panics
    ///
    /// Panics if `frame` does not fit in [`Cte::FRAME_BITS`] bits.
    pub fn new(frame: u32, level: MemoryLevel) -> Self {
        assert!(frame < (1 << Self::FRAME_BITS), "frame exceeds 28 bits");
        Self { frame, pair_vector: 0, level, incompressible: false }
    }

    /// The DRAM frame this page starts at.
    pub fn frame(self) -> u32 {
        self.frame
    }

    /// Points the CTE at a new DRAM frame (page migration).
    ///
    /// # Panics
    ///
    /// Panics if `frame` does not fit in 28 bits.
    pub fn set_frame(&mut self, frame: u32, level: MemoryLevel) {
        assert!(frame < (1 << Self::FRAME_BITS), "frame exceeds 28 bits");
        self.frame = frame;
        self.level = level;
    }

    /// The memory level the page currently resides in.
    pub fn level(self) -> MemoryLevel {
        self.level
    }

    /// Whether the page was found incompressible on its last eviction
    /// attempt (used to keep it off the recency list, §IV-B).
    pub fn is_incompressible(self) -> bool {
        self.incompressible
    }

    /// Sets or clears the `isIncompressible` bit.
    pub fn set_incompressible(&mut self, v: bool) {
        self.incompressible = v;
    }

    /// Whether block pair `pair` (0..32) uses the compressed-PTB encoding.
    ///
    /// # Panics
    ///
    /// Panics if `pair >= 32`.
    pub fn pair_compressed(self, pair: usize) -> bool {
        assert!(pair < 32, "pair index out of range");
        self.pair_vector & (1 << pair) != 0
    }

    /// Marks block pair `pair` as (not) using the compressed-PTB encoding.
    ///
    /// # Panics
    ///
    /// Panics if `pair >= 32`.
    pub fn set_pair_compressed(&mut self, pair: usize, v: bool) {
        assert!(pair < 32, "pair index out of range");
        if v {
            self.pair_vector |= 1 << pair;
        } else {
            self.pair_vector &= !(1 << pair);
        }
    }

    /// The raw 32-bit pair vector.
    pub fn pair_vector(self) -> u32 {
        self.pair_vector
    }

    /// Truncates this CTE to the embeddable form carried inside a
    /// compressed PTB (paper §V-A5): just enough bits to name a 4 KiB DRAM
    /// frame within one memory controller.
    pub fn truncated(self) -> TruncatedCte {
        TruncatedCte::new(self.frame)
    }
}

impl fmt::Debug for Cte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cte(frame={:#x}, {:?}, incompressible={}, pairs={:#010x})",
            self.frame, self.level, self.incompressible, self.pair_vector
        )
    }
}

/// The truncated CTE embedded in compressed PTBs (paper §V-A5).
///
/// Only the 28-bit DRAM frame number survives truncation: enough to launch a
/// speculative DRAM access, which the memory controller later *verifies*
/// against the full CTE fetched in parallel (paper Fig. 8b).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TruncatedCte {
    frame: u32,
}

impl TruncatedCte {
    /// Number of bits a truncated CTE occupies inside a compressed PTB when
    /// one MC manages up to 1 TiB: `log2(1 TiB / 4 KiB) = 28`.
    pub const BITS: u32 = 28;

    /// Creates a truncated CTE pointing at DRAM frame `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame` does not fit in 28 bits.
    pub fn new(frame: u32) -> Self {
        assert!(frame < (1 << Self::BITS), "frame exceeds 28 bits");
        Self { frame }
    }

    /// The DRAM frame this entry speculatively names.
    pub fn frame(self) -> u32 {
        self.frame
    }

    /// Whether this embedded entry agrees with the authoritative CTE — the
    /// verification the MC performs after the parallel fetch (Fig. 8b/c).
    pub fn matches(self, full: &Cte) -> bool {
        self.frame == full.frame()
    }
}

impl fmt::Debug for TruncatedCte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruncatedCte(frame={:#x})", self.frame)
    }
}

/// Compresso-style block-level metadata entry (paper §III).
///
/// One entry covers a 4 KiB physical range and records, for each 64 B block,
/// where in DRAM it starts and how many bytes it compressed to. The page's
/// data occupies up to eight 512 B chunks obtained from the hardware free
/// list.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockMetadata {
    /// DRAM addresses (in 512 B-chunk units) backing this page, in use order.
    chunks: Vec<u32>,
    /// Per-block compressed size in bytes (0 for an all-zero block).
    block_sizes: Vec<u16>,
    /// Per-block starting byte offset within the concatenated chunk space.
    block_offsets: Vec<u16>,
}

impl BlockMetadata {
    /// Modelled size of one entry in DRAM, in bytes (paper: a 64 B CTE per
    /// 4 KiB page — 8× the cost of a TMCC CTE).
    pub const SIZE_IN_DRAM: usize = 64;
    /// Chunk granularity used by Compresso's free list (paper §II).
    pub const CHUNK_SIZE: usize = 512;
    /// Maximum number of chunks a page can occupy (8 × 512 B = 4 KiB).
    pub const MAX_CHUNKS: usize = 8;

    /// Lays out a page whose blocks compressed to `block_sizes` bytes each,
    /// packing blocks contiguously and returning the entry plus the number
    /// of chunks required. `chunks` supplies the chunk numbers to use.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` supplies fewer chunks than the layout needs, or if
    /// any block size exceeds 64.
    pub fn layout(block_sizes: &[u16; 64], chunks: &[u32]) -> Self {
        let mut offsets = [0u16; 64];
        let mut cursor = 0u16;
        for (i, &sz) in block_sizes.iter().enumerate() {
            assert!(sz <= 64, "block compresses to at most 64 bytes");
            offsets[i] = cursor;
            cursor += sz;
        }
        let needed = Self::chunks_needed(block_sizes);
        assert!(chunks.len() >= needed, "layout needs {needed} chunks, got {}", chunks.len());
        Self {
            chunks: chunks[..needed].to_vec(),
            block_sizes: block_sizes.to_vec(),
            block_offsets: offsets.to_vec(),
        }
    }

    /// Number of 512 B chunks needed to hold blocks of the given sizes.
    pub fn chunks_needed(block_sizes: &[u16; 64]) -> usize {
        let total: usize = block_sizes.iter().map(|&s| s as usize).sum();
        total.div_ceil(Self::CHUNK_SIZE).max(1)
    }

    /// The chunk numbers backing this page.
    pub fn chunks(&self) -> &[u32] {
        &self.chunks
    }

    /// Total compressed bytes of the page.
    pub fn compressed_len(&self) -> usize {
        self.block_sizes.iter().map(|&s| s as usize).sum()
    }

    /// DRAM byte address of block `idx`, given that chunk `c` starts at DRAM
    /// byte `c * 512`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 64`.
    pub fn block_dram_byte(&self, idx: usize) -> u64 {
        let off = self.block_offsets[idx] as usize;
        let chunk_slot = off / Self::CHUNK_SIZE;
        let within = off % Self::CHUNK_SIZE;
        self.chunks[chunk_slot] as u64 * Self::CHUNK_SIZE as u64 + within as u64
    }

    /// Compressed size of block `idx` in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 64`.
    pub fn block_size(&self, idx: usize) -> u16 {
        self.block_sizes[idx]
    }
}

impl fmt::Debug for BlockMetadata {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BlockMetadata({} chunks, {} compressed bytes)",
            self.chunks.len(),
            self.compressed_len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cte_round_trip_fields() {
        let mut cte = Cte::new(0x123_4567, MemoryLevel::Ml1);
        assert_eq!(cte.frame(), 0x123_4567);
        assert_eq!(cte.level(), MemoryLevel::Ml1);
        assert!(!cte.is_incompressible());
        cte.set_incompressible(true);
        assert!(cte.is_incompressible());
        cte.set_frame(7, MemoryLevel::Ml2);
        assert_eq!(cte.frame(), 7);
        assert_eq!(cte.level(), MemoryLevel::Ml2);
    }

    #[test]
    fn cte_pair_vector() {
        let mut cte = Cte::new(0, MemoryLevel::Ml1);
        assert!(!cte.pair_compressed(5));
        cte.set_pair_compressed(5, true);
        cte.set_pair_compressed(31, true);
        assert!(cte.pair_compressed(5));
        assert!(cte.pair_compressed(31));
        assert_eq!(cte.pair_vector(), (1 << 5) | (1 << 31));
        cte.set_pair_compressed(5, false);
        assert!(!cte.pair_compressed(5));
    }

    #[test]
    #[should_panic(expected = "frame exceeds 28 bits")]
    fn cte_rejects_wide_frame() {
        let _ = Cte::new(1 << 28, MemoryLevel::Ml1);
    }

    #[test]
    fn truncated_cte_verification() {
        let cte = Cte::new(99, MemoryLevel::Ml1);
        let t = cte.truncated();
        assert!(t.matches(&cte));
        let moved = Cte::new(100, MemoryLevel::Ml1);
        assert!(!t.matches(&moved), "stale embedded CTE must fail verify");
    }

    #[test]
    fn block_metadata_layout_and_lookup() {
        let mut sizes = [16u16; 64];
        sizes[0] = 0; // zero block
        sizes[1] = 64; // incompressible block
        let chunks: Vec<u32> = (100..108).collect();
        let needed = BlockMetadata::chunks_needed(&sizes);
        let md = BlockMetadata::layout(&sizes, &chunks);
        assert_eq!(md.chunks().len(), needed);
        assert_eq!(md.compressed_len(), 62 * 16 + 64);
        // Block 0 has zero size at offset 0; block 1 right after it.
        assert_eq!(md.block_dram_byte(0), 100 * 512);
        assert_eq!(md.block_dram_byte(1), 100 * 512);
        // Block 2 starts after the 64-byte block 1.
        assert_eq!(md.block_dram_byte(2), 100 * 512 + 64);
        assert_eq!(md.block_size(1), 64);
    }

    #[test]
    fn block_metadata_chunk_count_bounds() {
        let zeros = [0u16; 64];
        assert_eq!(BlockMetadata::chunks_needed(&zeros), 1);
        let full = [64u16; 64];
        assert_eq!(BlockMetadata::chunks_needed(&full), 8);
    }

    #[test]
    #[should_panic(expected = "layout needs")]
    fn block_metadata_rejects_short_chunk_supply() {
        let full = [64u16; 64];
        let _ = BlockMetadata::layout(&full, &[1, 2]);
    }
}
