//! Common vocabulary types for the TMCC reproduction.
//!
//! This crate defines the address-space newtypes, page-table encodings and
//! compression-translation-entry (CTE) layouts shared by every other crate in
//! the workspace. It deliberately contains **no behaviour** beyond
//! encoding/decoding and invariant checking, so that the simulator crates can
//! agree on bit-exact representations without depending on each other.
//!
//! The layouts follow the paper:
//!
//! * [`pte`] — x86-64-style page-table entries (24 status bits + 40-bit PPN)
//!   and the 64-byte page-table block (PTB) holding eight of them (paper
//!   Fig. 7a/b).
//! * [`ptb`] — the hardware-compressed PTB encoding with embedded truncated
//!   CTEs (paper Fig. 7c and §V-A5).
//! * [`cte`] — the 8-byte page-level CTE used by TMCC (paper Fig. 13) and the
//!   64-byte block-level metadata entry used by Compresso-style designs.
//! * [`addr`] — virtual/physical/DRAM address newtypes and geometry
//!   constants.
//! * [`bitvec`] / [`packed`] — succinct rank/select bitmaps and
//!   fixed-width packed sequences backing the simulator's hot metadata
//!   (free-slot maps, residency bits, CTE slot state) at datacenter-scale
//!   page counts.
//!
//! # Examples
//!
//! ```
//! use tmcc_types::addr::{PhysAddr, Ppn, PAGE_SIZE};
//!
//! let pa = PhysAddr::new(3 * PAGE_SIZE as u64 + 128);
//! assert_eq!(pa.ppn(), Ppn::new(3));
//! assert_eq!(pa.page_offset(), 128);
//! ```

pub mod addr;
pub mod bitvec;
pub mod crc32;
pub mod cte;
pub mod fxhash;
pub mod packed;
pub mod ptb;
pub mod pte;

pub use addr::{
    BlockAddr, DramAddr, PhysAddr, Ppn, VirtAddr, Vpn, BLOCKS_PER_PAGE, BLOCK_SIZE, PAGE_SIZE,
};
pub use bitvec::{BitVec, RankSelect};
pub use crc32::crc32;
pub use cte::{BlockMetadata, Cte, MemoryLevel, TruncatedCte};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use packed::PackedSeq;
pub use ptb::{CompressedPtb, PtbCompressError};
pub use pte::{PageTableBlock, Pte, PteFlags};
