//! Criterion benchmarks of the succinct metadata structures: the
//! mutable [`BitVec`], its frozen [`RankSelect`] snapshot, and the
//! fixed-width [`PackedSeq`]. These back residency maps, free lists and
//! CTE slot metadata on the simulator's hot path, so their per-op cost
//! bounds how cheaply a TB-scale footprint can be tracked.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tmcc_types::{BitVec, PackedSeq, RankSelect};

const BITS: usize = 1 << 20;
const OPS: usize = 1 << 12;

/// Deterministic index stream (splitmix-style; no rand dependency).
fn indices(seed: u64, bound: usize, n: usize) -> Vec<usize> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as usize % bound
        })
        .collect()
}

fn every_third(bits: usize) -> BitVec {
    let mut bv = BitVec::with_len(bits);
    for i in (0..bits).step_by(3) {
        bv.set(i);
    }
    bv
}

fn bench_bitvec(c: &mut Criterion) {
    let bv = every_third(BITS);
    let ranks = indices(1, BITS, OPS);
    let selects = indices(2, bv.count_ones(), OPS);
    let churn = indices(3, BITS, OPS);

    let mut g = c.benchmark_group("bitvec");
    g.throughput(Throughput::Elements(OPS as u64));
    g.bench_function("rank1/1Mi", |b| {
        b.iter(|| {
            for &i in &ranks {
                black_box(bv.rank1(i));
            }
        })
    });
    g.bench_function("select1/1Mi", |b| {
        b.iter(|| {
            for &k in &selects {
                black_box(bv.select1(k));
            }
        })
    });
    g.bench_function("set-clear-churn/1Mi", |b| {
        let mut live = bv.clone();
        b.iter(|| {
            for &i in &churn {
                live.set(i);
                live.clear(i);
            }
            black_box(live.count_ones())
        })
    });
    g.finish();
}

fn bench_rank_select(c: &mut Criterion) {
    let rs = RankSelect::build(every_third(BITS));
    let ranks = indices(4, BITS, OPS);
    let selects = indices(5, rs.count_ones(), OPS);

    let mut g = c.benchmark_group("rank-select");
    g.throughput(Throughput::Elements(OPS as u64));
    g.bench_function("build/1Mi", |b| {
        b.iter_with_setup(|| every_third(BITS), |bv| black_box(RankSelect::build(bv)))
    });
    g.bench_function("rank1/1Mi", |b| {
        b.iter(|| {
            for &i in &ranks {
                black_box(rs.rank1(i));
            }
        })
    });
    g.bench_function("select1/1Mi", |b| {
        b.iter(|| {
            for &k in &selects {
                black_box(rs.select1(k));
            }
        })
    });
    g.finish();
}

fn bench_packed_seq(c: &mut Criterion) {
    const WIDTH: u32 = 13; // CTE-slot-sized values, straddles words
    let len = BITS / 8;
    let mut seq = PackedSeq::with_len(WIDTH, len);
    for (pos, v) in indices(6, 1 << WIDTH, len).into_iter().enumerate() {
        seq.set(pos, v as u64);
    }
    let gets = indices(7, len, OPS);
    let sets = indices(8, len, OPS);

    let mut g = c.benchmark_group("packed-seq");
    g.throughput(Throughput::Elements(OPS as u64));
    g.bench_function("get/13-bit", |b| {
        b.iter(|| {
            for &i in &gets {
                black_box(seq.get(i));
            }
        })
    });
    g.bench_function("set/13-bit", |b| {
        let mut live = seq.clone();
        b.iter(|| {
            for &i in &sets {
                live.set(i, (i as u64 * 7) & live.max_value());
            }
            black_box(live.get(0))
        })
    });
    g.bench_function("push/13-bit", |b| {
        b.iter(|| {
            let mut s = PackedSeq::new(WIDTH);
            for i in 0..OPS as u64 {
                s.push(i & s.max_value());
            }
            black_box(s.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bitvec, bench_rank_select, bench_packed_seq);
criterion_main!(benches);
