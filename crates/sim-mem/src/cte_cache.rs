//! The memory controller's CTE cache (paper §II/III, Table III).
//!
//! CTEs live in DRAM as a flat table; the MC caches recently used 64 B CTE
//! blocks. The decisive parameter is *reach per line*:
//!
//! * Compresso's block-level CTEs: one 64 B metadata entry per 4 KiB page →
//!   a 64 B line reaches **4 KiB** (Table III: "Compresso: 128KB, 4KB reach
//!   per 64B CTE block");
//! * TMCC's page-level CTEs: 8 B per page → a 64 B line holds eight CTEs
//!   and reaches **32 KiB** (Table III: "TMCC: 64KB, 32KB reach per 64B CTE
//!   block").
//!
//! This 8× reach difference is most of §IV's 40 % CTE-miss reduction.
//!
//! The directory itself is a [`PackedCteSlots`] — tags and per-set recency
//! ranks in fixed-width packed sequences (5.5 B per line instead of a
//! 24 B generic cache line), because multi-tenant rosters instantiate one
//! CTE cache per tenant and the metadata must stay kilobytes-scale.

use crate::cte_slots::PackedCteSlots;
use tmcc_types::addr::Ppn;

/// Geometry of a CTE cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CteCacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Pages translated per 64 B line (1 for block-level CTEs, 8 for
    /// page-level CTEs).
    pub pages_per_line: usize,
    /// Associativity.
    pub ways: usize,
}

impl CteCacheConfig {
    /// TMCC's configuration: 64 KiB, page-level (8 pages / 32 KiB reach).
    pub fn tmcc() -> Self {
        Self { size_bytes: 64 * 1024, pages_per_line: 8, ways: 8 }
    }

    /// Compresso's configuration: 128 KiB, block-level (4 KiB reach).
    pub fn compresso() -> Self {
        Self { size_bytes: 128 * 1024, pages_per_line: 1, ways: 8 }
    }

    /// The §III experiment: a 4× (256 KiB) block-level metadata cache.
    pub fn compresso_4x() -> Self {
        Self { size_bytes: 256 * 1024, pages_per_line: 1, ways: 8 }
    }

    /// Number of 64 B lines.
    pub fn lines(&self) -> usize {
        self.size_bytes / 64
    }

    /// Total pages reachable when fully resident.
    pub fn page_reach(&self) -> usize {
        self.lines() * self.pages_per_line
    }
}

/// The CTE cache.
///
/// # Examples
///
/// ```
/// use tmcc_sim_mem::{CteCache, CteCacheConfig};
/// use tmcc_types::addr::Ppn;
///
/// let mut c = CteCache::new(CteCacheConfig::tmcc());
/// assert!(!c.access(Ppn::new(16)));
/// // Page-level lines cover eight adjacent pages.
/// assert!(c.access(Ppn::new(17)));
/// ```
#[derive(Debug, Clone)]
pub struct CteCache {
    cfg: CteCacheConfig,
    slots: PackedCteSlots,
    /// Fills that must not count as demand misses (see [`CteCache::fill`]).
    adjust: u64,
}

impl CteCache {
    /// Builds a CTE cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields zero or a non-power-of-two set count.
    pub fn new(cfg: CteCacheConfig) -> Self {
        let sets = cfg.lines() / cfg.ways;
        Self { cfg, slots: PackedCteSlots::new(sets, cfg.ways), adjust: 0 }
    }

    fn line_key(&self, ppn: Ppn) -> u64 {
        ppn.raw() / self.cfg.pages_per_line as u64
    }

    /// Looks up the CTE for `ppn`, filling the line on a miss. Returns
    /// whether it hit.
    pub fn access(&mut self, ppn: Ppn) -> bool {
        self.slots.access(self.line_key(ppn))
    }

    /// Whether the CTE for `ppn` is resident, without LRU side effects.
    pub fn contains(&self, ppn: Ppn) -> bool {
        self.slots.contains(self.line_key(ppn))
    }

    /// Fills the line for `ppn` without counting an access (used when the
    /// MC caches a CTE after fetching it from DRAM for verification,
    /// §VII).
    pub fn fill(&mut self, ppn: Ppn) {
        if !self.slots.contains(self.line_key(ppn)) {
            let _ = self.slots.access(self.line_key(ppn));
            // Remove the implicit miss this fill recorded.
            self.adjust = self.adjust.saturating_add(1);
        }
    }

    /// Invalidates the line covering `ppn`.
    pub fn invalidate(&mut self, ppn: Ppn) {
        let _ = self.slots.invalidate(self.line_key(ppn));
    }

    /// Drops every resident line (a flush storm); hit/miss counters are
    /// preserved.
    pub fn flush(&mut self) {
        self.slots.clear();
    }

    /// `(hits, misses)` over [`access`](Self::access) calls only.
    pub fn stats(&self) -> (u64, u64) {
        let (h, m) = self.slots.stats();
        (h, m - self.adjust)
    }

    /// Hit rate over `access` calls.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Clears counters (after warmup).
    pub fn reset_stats(&mut self) {
        self.slots.reset_stats();
        self.adjust = 0;
    }

    /// Fault-injection hook: flips one stored bit of directory line
    /// `line % capacity` *without* updating its parity (see
    /// [`PackedCteSlots::corrupt_line_bit`]).
    pub fn corrupt_slot_bit(&mut self, line: usize, bit: u32) {
        let cap = self.slots.capacity();
        self.slots.corrupt_line_bit(line % cap, bit);
    }

    /// Number of directory lines whose parity check currently fails.
    pub fn audit_parity(&self) -> usize {
        self.slots.audit_parity()
    }

    /// Invalidates every parity-violating line (a later walk refills it
    /// from the authoritative CTE table). Returns the lines dropped.
    pub fn scrub(&mut self) -> usize {
        self.slots.scrub()
    }

    /// Heap bytes the packed slot directory occupies on the host.
    pub fn heap_bytes(&self) -> usize {
        self.slots.heap_bytes()
    }

    /// The configured geometry.
    pub fn config(&self) -> CteCacheConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_level_line_reaches_eight_pages() {
        let mut c = CteCache::new(CteCacheConfig::tmcc());
        assert!(!c.access(Ppn::new(0)));
        for p in 1..8u64 {
            assert!(c.access(Ppn::new(p)), "page {p} shares the line");
        }
        assert!(!c.access(Ppn::new(8)), "next line");
    }

    #[test]
    fn block_level_line_reaches_one_page() {
        let mut c = CteCache::new(CteCacheConfig::compresso());
        assert!(!c.access(Ppn::new(0)));
        assert!(!c.access(Ppn::new(1)));
    }

    #[test]
    fn reach_matches_table3() {
        // 64 KiB / 64 B = 1024 lines x 8 pages = 8192 pages = 32 MiB reach.
        assert_eq!(CteCacheConfig::tmcc().page_reach() * 4096, 32 * 1024 * 1024);
        assert_eq!(CteCacheConfig::tmcc().page_reach(), 8192);
        // Compresso: 2048 lines x 1 page = 8 MiB reach.
        assert_eq!(CteCacheConfig::compresso().page_reach(), 2048);
    }

    #[test]
    fn fill_does_not_count_as_demand_miss() {
        let mut c = CteCache::new(CteCacheConfig::tmcc());
        c.fill(Ppn::new(40));
        assert_eq!(c.stats(), (0, 0));
        assert!(c.access(Ppn::new(40)));
        assert_eq!(c.stats(), (1, 0));
    }

    #[test]
    fn invalidate_forces_miss() {
        let mut c = CteCache::new(CteCacheConfig::tmcc());
        c.access(Ppn::new(0));
        c.invalidate(Ppn::new(3)); // same line
        assert!(!c.access(Ppn::new(0)));
    }
}
