//! Address-translation and cache-hierarchy models.
//!
//! This crate supplies the simulator substrate the paper gets from gem5: a
//! per-core TLB, a software-built 4-level x86-style page table with a
//! hardware page walker and page-walk cache, a three-level cache hierarchy,
//! and the two structures hardware memory compression adds — the **CTE
//! cache** in the memory controller (paper §II/III) and TMCC's 64-entry
//! **CTE buffer** in L2 (paper Fig. 10).
//!
//! Everything here is a *functional + hit/miss* model: structures track
//! exactly which addresses hit where, and expose the per-level latencies of
//! the paper's Table III; end-to-end timing is assembled by the `tmcc`
//! crate's system model.

pub mod cache;
pub mod cte_buffer;
pub mod cte_cache;
pub mod cte_slots;
pub mod hierarchy;
pub mod page_table;
pub mod tlb;
pub mod walker;

pub use cache::SetAssocCache;
pub use cte_buffer::{CteBuffer, CteBufferEntry};
pub use cte_cache::{CteCache, CteCacheConfig};
pub use cte_slots::PackedCteSlots;
pub use hierarchy::{CacheHierarchy, HierarchyConfig, HitLevel, MemAccess};
pub use page_table::{PageTable, PageTableConfig};
pub use tlb::Tlb;
pub use walker::{PageWalker, WalkResult};
