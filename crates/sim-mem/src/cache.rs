//! A generic set-associative cache model with LRU replacement.
//!
//! Used for the L1/L2/LLC tag arrays, the TLB, the page-walk cache and the
//! CTE cache. The model tracks tags, dirtiness and one *payload* value per
//! line (used, e.g., to hold the "compressed PTB" data bit the paper adds
//! to every L2/L3 cacheline, §V-A4).

/// One resident line.
#[derive(Debug, Clone)]
struct Line<P> {
    key: u64,
    dirty: bool,
    payload: P,
    /// LRU timestamp (larger = more recent).
    stamp: u64,
}

/// What an access did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The key was resident.
    Hit,
    /// The key was absent (and has now been filled).
    Miss,
}

/// A set-associative LRU cache over `u64` keys with per-line payloads.
///
/// # Examples
///
/// ```
/// use tmcc_sim_mem::SetAssocCache;
///
/// let mut c: SetAssocCache<()> = SetAssocCache::new(2, 4); // 8 lines
/// assert!(!c.access(42, false, ()).0.is_hit());
/// assert!(c.access(42, false, ()).0.is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<P> {
    sets: Vec<Vec<Line<P>>>,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl CacheOutcome {
    /// Whether this outcome is a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

impl<P: Clone> SetAssocCache<P> {
    /// Creates a cache with `num_sets` sets of `ways` lines.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `num_sets` is not a power of
    /// two.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets > 0 && ways > 0, "cache dimensions must be nonzero");
        assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        Self { sets: vec![Vec::with_capacity(ways); num_sets], ways, tick: 0, hits: 0, misses: 0 }
    }

    /// A fully-associative cache with `entries` lines.
    pub fn fully_associative(entries: usize) -> Self {
        Self::new(1, entries)
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    fn set_of(&self, key: u64) -> usize {
        // Multiplicative hash spreads structured keys across sets.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (self.sets.len() - 1)
    }

    /// Accesses `key`; fills it with `payload` on miss. Returns the outcome
    /// and, on miss, the evicted line's `(key, dirty, payload)` if the set
    /// was full.
    pub fn access(
        &mut self,
        key: u64,
        write: bool,
        payload: P,
    ) -> (CacheOutcome, Option<(u64, bool, P)>) {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(key);
        let lines = &mut self.sets[set];
        if let Some(line) = lines.iter_mut().find(|l| l.key == key) {
            line.stamp = tick;
            line.dirty |= write;
            self.hits = self.hits.saturating_add(1);
            return (CacheOutcome::Hit, None);
        }
        self.misses = self.misses.saturating_add(1);
        let mut victim = None;
        if lines.len() == self.ways {
            let idx = lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.stamp)
                .map(|(i, _)| i)
                .expect("set is full");
            let v = lines.swap_remove(idx);
            victim = Some((v.key, v.dirty, v.payload));
        }
        lines.push(Line { key, dirty: write, payload, stamp: tick });
        (CacheOutcome::Miss, victim)
    }

    /// Whether `key` is resident, without touching LRU state.
    pub fn contains(&self, key: u64) -> bool {
        self.sets[self.set_of(key)].iter().any(|l| l.key == key)
    }

    /// The payload of a resident line.
    pub fn payload(&self, key: u64) -> Option<&P> {
        self.sets[self.set_of(key)].iter().find(|l| l.key == key).map(|l| &l.payload)
    }

    /// Mutable payload of a resident line.
    pub fn payload_mut(&mut self, key: u64) -> Option<&mut P> {
        let set = self.set_of(key);
        self.sets[set].iter_mut().find(|l| l.key == key).map(|l| &mut l.payload)
    }

    /// Removes `key` if resident, returning its payload.
    pub fn invalidate(&mut self, key: u64) -> Option<P> {
        let set = self.set_of(key);
        let lines = &mut self.sets[set];
        let idx = lines.iter().position(|l| l.key == key)?;
        Some(lines.swap_remove(idx).payload)
    }

    /// Drops every line.
    pub fn clear(&mut self) {
        for s in self.sets.iter_mut() {
            s.clear();
        }
    }

    /// (hits, misses) since construction or [`reset_stats`](Self::reset_stats).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate over all accesses so far (0 when never accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Zeroes the hit/miss counters (e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Iterates over resident `(key, payload)` pairs (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &P)> {
        self.sets.iter().flatten().map(|l| (l.key, &l.payload))
    }

    /// Number of resident lines per key, sorted by key — diagnostics helper
    /// asserting the no-duplicates invariant. Built by sorting the resident
    /// keys and run-length counting them in a single pass, with no hashing.
    pub fn residency_histogram(&self) -> Vec<(u64, usize)> {
        let mut keys: Vec<u64> = self.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        let mut out: Vec<(u64, usize)> = Vec::with_capacity(keys.len());
        for k in keys {
            match out.last_mut() {
                Some((last, n)) if *last == k => *n += 1,
                _ => out.push((k, 1)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(4, 2);
        assert!(!c.access(1, false, 10).0.is_hit());
        assert!(c.access(1, false, 11).0.is_hit());
        // Payload from the fill survives (hits don't replace payloads).
        assert_eq!(c.payload(1), Some(&10));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c: SetAssocCache<()> = SetAssocCache::fully_associative(2);
        c.access(1, false, ());
        c.access(2, false, ());
        c.access(1, false, ()); // 2 is now LRU
        let (_, victim) = c.access(3, false, ());
        assert_eq!(victim.map(|v| v.0), Some(2));
        assert!(c.contains(1) && c.contains(3) && !c.contains(2));
    }

    #[test]
    fn dirty_bit_travels_with_eviction() {
        let mut c: SetAssocCache<()> = SetAssocCache::fully_associative(1);
        c.access(7, true, ());
        let (_, victim) = c.access(8, false, ());
        let (key, dirty, _) = victim.expect("eviction");
        assert_eq!(key, 7);
        assert!(dirty);
    }

    #[test]
    fn invalidate_removes() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(1, 4);
        c.access(5, false, 99);
        assert_eq!(c.invalidate(5), Some(99));
        assert!(!c.contains(5));
        assert_eq!(c.invalidate(5), None);
    }

    #[test]
    fn stats_and_hit_rate() {
        let mut c: SetAssocCache<()> = SetAssocCache::new(2, 2);
        c.access(1, false, ());
        c.access(1, false, ());
        c.access(2, false, ());
        assert_eq!(c.stats(), (1, 2));
        assert!((c.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats(), (0, 0));
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn no_duplicate_keys() {
        let mut c: SetAssocCache<()> = SetAssocCache::new(8, 4);
        for i in 0..1000u64 {
            c.access(i % 64, i % 3 == 0, ());
        }
        let hist = c.residency_histogram();
        assert!(hist.iter().all(|&(_, n)| n == 1));
        assert!(hist.windows(2).all(|w| w[0].0 < w[1].0), "sorted by key");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        let _ = SetAssocCache::<()>::new(3, 2);
    }
}
