//! The translation lookaside buffer.
//!
//! The paper simulates a single-level TLB with 2048 entries (§VI: "we
//! increase the number of entries in L1 TLB to 2048, which is similar to
//! the total number of TLB entries in AMD's Zen 3"), because TMCC optimizes
//! precisely the accesses that follow TLB misses.

use crate::cache::SetAssocCache;
use tmcc_types::addr::{Ppn, Vpn};

/// A set-associative TLB mapping VPN → PPN.
///
/// # Examples
///
/// ```
/// use tmcc_sim_mem::Tlb;
/// use tmcc_types::addr::{Ppn, Vpn};
///
/// let mut tlb = Tlb::new(2048, 8);
/// assert_eq!(tlb.lookup(Vpn::new(7)), None);
/// tlb.fill(Vpn::new(7), Ppn::new(99));
/// assert_eq!(tlb.lookup(Vpn::new(7)), Some(Ppn::new(99)));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cache: SetAssocCache<Ppn>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `ways` with a power-of-two
    /// set count.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries.is_multiple_of(ways), "entries must divide evenly into ways");
        Self { cache: SetAssocCache::new(entries / ways, ways), hits: 0, misses: 0 }
    }

    /// The paper's configuration: 2048 entries, 8-way.
    pub fn paper_default() -> Self {
        Self::new(2048, 8)
    }

    /// Looks up a translation; updates recency on hit.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<Ppn> {
        if self.cache.contains(vpn.raw()) {
            self.hits = self.hits.saturating_add(1);
            let (_, _) = self.cache.access(vpn.raw(), false, Ppn::new(0));
            self.cache.payload(vpn.raw()).copied()
        } else {
            // Counted here, not at fill time: a miss whose walk fails (or
            // is aborted) must still show up in the miss count.
            self.misses = self.misses.saturating_add(1);
            None
        }
    }

    /// Installs a translation after a walk.
    pub fn fill(&mut self, vpn: Vpn, ppn: Ppn) {
        if self.cache.contains(vpn.raw()) {
            *self.cache.payload_mut(vpn.raw()).expect("resident") = ppn;
        } else {
            let (_, _) = self.cache.access(vpn.raw(), false, ppn);
        }
    }

    /// Removes a translation (OS shootdown).
    pub fn invalidate(&mut self, vpn: Vpn) {
        let _ = self.cache.invalidate(vpn.raw());
    }

    /// `(hits, misses)` counted by [`lookup`](Self::lookup) — a miss is a
    /// lookup that returned `None`, whether or not a `fill` ever follows.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Clears hit/miss counters.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.cache.reset_stats();
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::new(16, 4);
        assert_eq!(tlb.lookup(Vpn::new(1)), None);
        tlb.fill(Vpn::new(1), Ppn::new(100));
        assert_eq!(tlb.lookup(Vpn::new(1)), Some(Ppn::new(100)));
    }

    #[test]
    fn refill_updates_mapping() {
        let mut tlb = Tlb::new(16, 4);
        tlb.fill(Vpn::new(1), Ppn::new(100));
        tlb.fill(Vpn::new(1), Ppn::new(200));
        assert_eq!(tlb.lookup(Vpn::new(1)), Some(Ppn::new(200)));
    }

    #[test]
    fn invalidate_forces_miss() {
        let mut tlb = Tlb::new(16, 4);
        tlb.fill(Vpn::new(3), Ppn::new(30));
        tlb.invalidate(Vpn::new(3));
        assert_eq!(tlb.lookup(Vpn::new(3)), None);
    }

    #[test]
    fn capacity_limits_reach() {
        let mut tlb = Tlb::new(8, 8); // fully associative, 8 entries
        for i in 0..9u64 {
            tlb.fill(Vpn::new(i), Ppn::new(i));
        }
        // One of the first entries must have been evicted.
        let resident = (0..9u64).filter(|&i| tlb.lookup(Vpn::new(i)).is_some()).count();
        assert_eq!(resident, 8);
    }

    #[test]
    fn paper_default_size() {
        assert_eq!(Tlb::paper_default().capacity(), 2048);
    }

    #[test]
    fn misses_without_fill_are_counted() {
        // Regression: misses used to be inferred from the inner cache's
        // fill path, so a lookup miss with no subsequent fill (failed or
        // aborted walk) vanished from the miss count.
        let mut tlb = Tlb::new(16, 4);
        assert_eq!(tlb.lookup(Vpn::new(1)), None);
        assert_eq!(tlb.lookup(Vpn::new(2)), None);
        assert_eq!(tlb.stats(), (0, 2), "both fill-less misses counted");
        tlb.fill(Vpn::new(1), Ppn::new(10));
        assert_eq!(tlb.stats(), (0, 2), "fill itself is not a lookup");
        assert_eq!(tlb.lookup(Vpn::new(1)), Some(Ppn::new(10)));
        assert_eq!(tlb.stats(), (1, 2));
    }

    #[test]
    fn reset_clears_lookup_counters() {
        let mut tlb = Tlb::new(16, 4);
        let _ = tlb.lookup(Vpn::new(9));
        tlb.reset_stats();
        assert_eq!(tlb.stats(), (0, 0));
    }
}
