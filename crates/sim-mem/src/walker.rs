//! The hardware page walker with a per-core page-walk cache.
//!
//! On a TLB miss the walker traverses the page table. A small page-walk
//! cache (PWC — 1 KiB per core in the paper's Table III, "similar to
//! [23]") holds upper-level translations so most walks skip straight to
//! the lower levels; the PTB fetches that remain are issued to the cache
//! hierarchy by the caller, which is where TMCC's embedded CTEs pay off
//! (Fig. 12a).

use crate::cache::SetAssocCache;
use crate::page_table::{PageTable, WalkStep};
use tmcc_types::addr::{Ppn, Vpn};
use tmcc_types::pte::PageTableBlock;

/// Result of one page walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkResult {
    /// The steps whose PTB the walker actually had to fetch from the
    /// memory system (upper levels may be skipped via PWC hits).
    pub fetched: Vec<WalkStep>,
    /// Steps resolved from the PWC without a memory access.
    pub pwc_hits: u32,
    /// The final translation.
    pub ppn: Ppn,
}

/// The page walker.
///
/// # Examples
///
/// ```
/// use tmcc_sim_mem::{PageTable, PageTableConfig, PageWalker};
/// use tmcc_types::addr::{Ppn, Vpn};
///
/// let mut pt = PageTable::new(PageTableConfig::default());
/// pt.map(Vpn::new(10), Ppn::new(3));
/// pt.map(Vpn::new(11), Ppn::new(4));
/// let mut walker = PageWalker::paper_default();
/// let first = walker.walk(&pt, Vpn::new(10)).expect("mapped");
/// assert_eq!(first.ppn, Ppn::new(3));
/// assert_eq!(first.fetched.len(), 4);
/// // A second walk nearby skips the upper levels via the PWC.
/// let again = walker.walk(&pt, Vpn::new(11)).expect("mapped");
/// assert_eq!(again.fetched.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PageWalker {
    /// PWC keyed by `(level, table-relative prefix)`; payload is unused —
    /// a hit means "the walker already knows the level-N table pointer".
    pwc: SetAssocCache<()>,
}

impl PageWalker {
    /// Creates a walker whose PWC holds `pwc_entries` upper-level entries.
    pub fn new(pwc_entries: usize) -> Self {
        Self { pwc: SetAssocCache::fully_associative(pwc_entries) }
    }

    /// The paper's 1 KiB PWC: 64 entries of 16 B.
    pub fn paper_default() -> Self {
        Self::new(64)
    }

    /// PWC key for the entry *produced* by the step at `level` (i.e. the
    /// pointer to the level-`level - 1` table).
    fn pwc_key(vpn: Vpn, level: u8) -> u64 {
        // Prefix covering this table pointer, tagged with the level.
        (vpn.raw() >> (9 * (level as u64 - 1))) << 3 | level as u64
    }

    /// Walks the table for `vpn`. Returns `None` for unmapped addresses.
    ///
    /// Upper-level steps whose translations hit in the PWC are skipped; the
    /// remaining steps (always at least the leaf) are returned in
    /// root-to-leaf order for the caller to issue to the cache hierarchy.
    pub fn walk(&mut self, table: &PageTable, vpn: Vpn) -> Option<WalkResult> {
        let mut buf = Vec::with_capacity(4);
        let (ppn, pwc_hits) = self.walk_into(table, vpn, &mut buf)?;
        Some(WalkResult { fetched: buf.into_iter().map(|(step, _)| step).collect(), pwc_hits, ppn })
    }

    /// Allocation-free walk: clears `out` and fills it with the steps the
    /// walker actually fetches (PWC-skipped upper levels excluded), each
    /// paired with its PTB. Returns the final translation and the PWC hit
    /// count, or `None` (with `out` empty) for unmapped addresses.
    ///
    /// The hot per-TLB-miss path of the system model: with a caller-owned
    /// scratch buffer it performs no heap allocation and no extra
    /// page-table lookups.
    pub fn walk_into(
        &mut self,
        table: &PageTable,
        vpn: Vpn,
        out: &mut Vec<(WalkStep, PageTableBlock)>,
    ) -> Option<(Ppn, u32)> {
        if !table.walk_path_into(vpn, out) {
            return None;
        }
        // A degenerate (empty) path is an unmapped address, not a crash.
        let leaf_level = out.last()?.0.level;
        // Find the deepest level whose *table pointer* the PWC knows: we
        // can start fetching below it.
        let mut start_idx = 0;
        let mut pwc_hits = 0;
        for (i, (step, _)) in out.iter().enumerate() {
            if step.level == leaf_level {
                break; // the leaf PTB itself is never skipped
            }
            if self.pwc.contains(Self::pwc_key(vpn, step.level)) {
                // Touch for LRU.
                let _ = self.pwc.access(Self::pwc_key(vpn, step.level), false, ());
                pwc_hits += 1;
                start_idx = i + 1;
            } else {
                break;
            }
        }
        // Install the pointers produced by the steps we did fetch.
        for (step, _) in &out[start_idx..] {
            if step.level != leaf_level {
                let _ = self.pwc.access(Self::pwc_key(vpn, step.level), false, ());
            }
        }
        let ppn = out.last()?.0.next_ppn;
        out.drain(..start_idx);
        Some((ppn, pwc_hits))
    }

    /// Clears the PWC (context switch).
    pub fn flush(&mut self) {
        self.pwc.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_table::PageTableConfig;

    fn table_with(n: u64) -> PageTable {
        let mut pt = PageTable::new(PageTableConfig::default());
        for i in 0..n {
            pt.map(Vpn::new(i), Ppn::new(i + 100));
        }
        pt
    }

    #[test]
    fn cold_walk_fetches_everything() {
        let pt = table_with(16);
        let mut w = PageWalker::paper_default();
        let r = w.walk(&pt, Vpn::new(0)).unwrap();
        assert_eq!(r.fetched.len(), 4);
        assert_eq!(r.pwc_hits, 0);
    }

    #[test]
    fn warm_walk_fetches_only_leaf() {
        let pt = table_with(64);
        let mut w = PageWalker::paper_default();
        let _ = w.walk(&pt, Vpn::new(0)).unwrap();
        let r = w.walk(&pt, Vpn::new(63)).unwrap();
        assert_eq!(r.fetched.len(), 1, "only the leaf PTB should be fetched");
        assert_eq!(r.fetched[0].level, 1);
        assert_eq!(r.pwc_hits, 3);
        assert_eq!(r.ppn, Ppn::new(163));
    }

    #[test]
    fn distant_vpn_misses_lower_pwc_levels() {
        let mut pt = table_with(1);
        // VPN 2^18 lives in a different L2 *table* (each L2 table covers
        // 512 x 512 pages), so only the L4 pointer is shared.
        pt.map(Vpn::new(1 << 18), Ppn::new(999));
        let mut w = PageWalker::paper_default();
        let _ = w.walk(&pt, Vpn::new(0)).unwrap();
        let r = w.walk(&pt, Vpn::new(1 << 18)).unwrap();
        assert_eq!(r.fetched.len(), 3, "L3 + L2 + leaf must be fetched");
        assert_eq!(r.fetched[0].level, 3);
        assert_eq!(r.pwc_hits, 1);
        // A VPN in the same L1 table (within 512 pages) fetches only the
        // leaf PTB.
        pt.map(Vpn::new((1 << 18) + 8), Ppn::new(1000));
        let r2 = w.walk(&pt, Vpn::new((1 << 18) + 8)).unwrap();
        assert_eq!(r2.fetched.len(), 1);
    }

    #[test]
    fn unmapped_returns_none() {
        let pt = table_with(1);
        let mut w = PageWalker::paper_default();
        assert!(w.walk(&pt, Vpn::new(1 << 30)).is_none());
    }

    #[test]
    fn flush_forgets_pointers() {
        let pt = table_with(8);
        let mut w = PageWalker::paper_default();
        let _ = w.walk(&pt, Vpn::new(0));
        w.flush();
        let r = w.walk(&pt, Vpn::new(1)).unwrap();
        assert_eq!(r.fetched.len(), 4);
    }
}
