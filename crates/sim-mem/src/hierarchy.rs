//! The three-level cache hierarchy (paper Table III).
//!
//! Geometry and latencies follow Table III: 64 KiB L1, 256 KiB inclusive
//! L2, 8 MiB L3; 3 cycles L1, +11 L2, +50 L3 at the 2.8 GHz core clock,
//! with an 18 ns NoC hop between the L3 and the memory controller.
//!
//! The model is tag-accurate (exact hit/miss behaviour under LRU) and
//! latency-additive; it reports dirty evictions so the memory controller
//! model can account for writebacks and for the compressed-PTB data bit the
//! paper adds to every L2/L3 line (§V-A4) — tracked here as the line
//! payload.

use crate::cache::SetAssocCache;
use tmcc_types::addr::BlockAddr;

/// Core clock of the simulated CPU, Hz (Table III).
pub const CORE_CLOCK_HZ: f64 = 2.8e9;
/// Nanoseconds per core cycle.
pub const NS_PER_CYCLE: f64 = 1e9 / CORE_CLOCK_HZ;
/// NoC latency between the LLC and the memory controller, ns (Table III).
pub const NOC_LATENCY_NS: f64 = 18.0;

/// Which level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// Served by the L1 cache.
    L1,
    /// Served by the L2 cache.
    L2,
    /// Served by the last-level cache.
    L3,
    /// Missed everywhere: the memory controller must be consulted.
    Memory,
}

/// Result of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemAccess {
    /// Deepest level consulted.
    pub level: HitLevel,
    /// On-chip latency in ns (excludes DRAM; includes the NoC hop to the
    /// MC when `level == Memory`).
    pub latency_ns: f64,
    /// A dirty block evicted from the LLC, to be written back to memory.
    pub writeback: Option<BlockAddr>,
}

/// Geometry of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 size in bytes (data side; the model treats L1 as unified).
    pub l1_bytes: usize,
    /// L2 size in bytes.
    pub l2_bytes: usize,
    /// L3 size in bytes.
    pub l3_bytes: usize,
    /// Associativity used at each level.
    pub ways: usize,
    /// L1 hit latency in core cycles.
    pub l1_cycles: u64,
    /// Additional cycles for an L2 hit.
    pub l2_extra_cycles: u64,
    /// Additional cycles for an L3 hit.
    pub l3_extra_cycles: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            l1_bytes: 64 * 1024,
            l2_bytes: 256 * 1024,
            l3_bytes: 8 * 1024 * 1024,
            ways: 8,
            l1_cycles: 3,
            l2_extra_cycles: 11,
            l3_extra_cycles: 50,
        }
    }
}

/// Whether a line holds a hardware-compressed PTB (the extra data bit of
/// §V-A4). Tracked in L2/L3 payloads.
pub type CompressedBit = bool;

/// The cache hierarchy.
///
/// # Examples
///
/// ```
/// use tmcc_sim_mem::{CacheHierarchy, HierarchyConfig, HitLevel};
/// use tmcc_types::addr::BlockAddr;
///
/// let mut h = CacheHierarchy::new(HierarchyConfig::default());
/// let first = h.access(BlockAddr::new(42), false, false);
/// assert_eq!(first.level, HitLevel::Memory);
/// let again = h.access(BlockAddr::new(42), false, false);
/// assert_eq!(again.level, HitLevel::L1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    cfg: HierarchyConfig,
    l1: SetAssocCache<()>,
    l2: SetAssocCache<CompressedBit>,
    l3: SetAssocCache<CompressedBit>,
    /// Access counts per level outcome (L1 hits, L2 hits, L3 hits, misses).
    counts: [u64; 4],
}

impl CacheHierarchy {
    /// Builds the hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        let lines = |bytes: usize| bytes / 64 / cfg.ways;
        Self {
            cfg,
            l1: SetAssocCache::new(lines(cfg.l1_bytes).next_power_of_two(), cfg.ways),
            l2: SetAssocCache::new(lines(cfg.l2_bytes).next_power_of_two(), cfg.ways),
            l3: SetAssocCache::new(lines(cfg.l3_bytes).next_power_of_two(), cfg.ways),
            counts: [0; 4],
        }
    }

    /// Accesses `block`. `compressed_ptb` sets the new-data bit when the
    /// line is (re)filled into L2/L3 — pass `false` for ordinary data.
    pub fn access(&mut self, block: BlockAddr, write: bool, compressed_ptb: bool) -> MemAccess {
        let key = block.raw();
        let t = &self.cfg;
        let l1_ns = t.l1_cycles as f64 * NS_PER_CYCLE;
        let l2_ns = (t.l1_cycles + t.l2_extra_cycles) as f64 * NS_PER_CYCLE;
        let l3_ns = (t.l1_cycles + t.l2_extra_cycles + t.l3_extra_cycles) as f64 * NS_PER_CYCLE;

        if self.l1.access(key, write, ()).0.is_hit() {
            self.counts[0] = self.counts[0].saturating_add(1);
            // L2 is inclusive of L1; keep its copy warm for recency.
            let _ = self.l2.access(key, write, compressed_ptb);
            return MemAccess { level: HitLevel::L1, latency_ns: l1_ns, writeback: None };
        }
        let mut writeback = None;
        if self.l2.access(key, write, compressed_ptb).0.is_hit() {
            self.counts[1] = self.counts[1].saturating_add(1);
            return MemAccess { level: HitLevel::L2, latency_ns: l2_ns, writeback: None };
        }
        let (l3_outcome, l3_victim) = self.l3.access(key, write, compressed_ptb);
        if l3_outcome.is_hit() {
            self.counts[2] = self.counts[2].saturating_add(1);
            return MemAccess { level: HitLevel::L3, latency_ns: l3_ns, writeback: None };
        }
        self.counts[3] = self.counts[3].saturating_add(1);
        // The miss installed the line; a dirty victim becomes a writeback.
        if let Some((victim, dirty, _)) = l3_victim {
            if dirty && victim != key {
                writeback = Some(BlockAddr::new(victim));
            }
        }
        MemAccess { level: HitLevel::Memory, latency_ns: l3_ns + NOC_LATENCY_NS, writeback }
    }

    /// Whether the L2 copy of `block` carries the compressed-PTB bit.
    pub fn l2_compressed_bit(&self, block: BlockAddr) -> Option<bool> {
        self.l2.payload(block.raw()).copied()
    }

    /// Sets the compressed-PTB bit on a resident L2 line.
    pub fn set_l2_compressed_bit(&mut self, block: BlockAddr, v: bool) {
        if let Some(b) = self.l2.payload_mut(block.raw()) {
            *b = v;
        }
    }

    /// Drops `block` from every level (used by page-migration flows).
    pub fn invalidate(&mut self, block: BlockAddr) {
        let _ = self.l1.invalidate(block.raw());
        let _ = self.l2.invalidate(block.raw());
        let _ = self.l3.invalidate(block.raw());
    }

    /// `(l1_hits, l2_hits, l3_hits, misses)` since the last reset.
    pub fn counts(&self) -> [u64; 4] {
        self.counts
    }

    /// LLC miss count (accesses that reached memory).
    pub fn llc_misses(&self) -> u64 {
        self.counts[3]
    }

    /// Clears the outcome counters (after warmup).
    pub fn reset_stats(&mut self) {
        self.counts = [0; 4];
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
    }

    /// The configured geometry.
    pub fn config(&self) -> HierarchyConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn miss_then_l1_hit() {
        let mut h = h();
        assert_eq!(h.access(BlockAddr::new(1), false, false).level, HitLevel::Memory);
        assert_eq!(h.access(BlockAddr::new(1), false, false).level, HitLevel::L1);
        assert_eq!(h.counts(), [1, 0, 0, 1]);
    }

    #[test]
    fn latencies_match_table3() {
        let mut h = h();
        let miss = h.access(BlockAddr::new(7), false, false);
        // 64 cycles @2.8 GHz + 18 ns NoC ≈ 40.9 ns on-chip for a full miss.
        assert!((miss.latency_ns - (64.0 / 2.8 + 18.0)).abs() < 0.1);
        let hit = h.access(BlockAddr::new(7), false, false);
        assert!((hit.latency_ns - 3.0 / 2.8).abs() < 0.01);
    }

    #[test]
    fn capacity_eviction_reaches_memory_again() {
        let cfg = HierarchyConfig {
            l1_bytes: 1024,
            l2_bytes: 2048,
            l3_bytes: 4096,
            ways: 2,
            ..Default::default()
        };
        let mut h = CacheHierarchy::new(cfg);
        for i in 0..512u64 {
            h.access(BlockAddr::new(i), false, false);
        }
        // The tiny L3 cannot hold 512 lines: early blocks must miss again.
        let r = h.access(BlockAddr::new(0), false, false);
        assert_eq!(r.level, HitLevel::Memory);
    }

    #[test]
    fn dirty_eviction_surfaces_writeback() {
        let cfg = HierarchyConfig {
            l1_bytes: 128,
            l2_bytes: 128,
            l3_bytes: 128,
            ways: 1,
            ..Default::default()
        };
        let mut h = CacheHierarchy::new(cfg);
        // Write enough dirty blocks to force dirty evictions from L3.
        let mut saw_writeback = false;
        for i in 0..64u64 {
            let r = h.access(BlockAddr::new(i * 131), true, false);
            saw_writeback |= r.writeback.is_some();
        }
        assert!(saw_writeback, "dirty evictions must surface");
    }

    #[test]
    fn compressed_bit_round_trip() {
        let mut h = h();
        h.access(BlockAddr::new(99), false, true);
        assert_eq!(h.l2_compressed_bit(BlockAddr::new(99)), Some(true));
        h.set_l2_compressed_bit(BlockAddr::new(99), false);
        assert_eq!(h.l2_compressed_bit(BlockAddr::new(99)), Some(false));
    }

    #[test]
    fn invalidate_clears_all_levels() {
        let mut h = h();
        h.access(BlockAddr::new(5), false, false);
        h.access(BlockAddr::new(5), false, false);
        h.invalidate(BlockAddr::new(5));
        assert_eq!(h.access(BlockAddr::new(5), false, false).level, HitLevel::Memory);
    }
}
