//! A software-built 4-level x86-64-style page table living in simulated
//! physical memory.
//!
//! The table is materialized the way an OS would: each level is a 4 KiB
//! page of 512 PTEs (64 PTBs), table pages are allocated from a dedicated
//! physical range, and a walk for a VPN touches one PTB per level (paper
//! §II: "each step in a page walk fetches a 64 B block of eight PTEs").
//! The PTB *blocks* this module hands out are exactly what TMCC compresses
//! and embeds CTEs into.

use tmcc_types::addr::{BlockAddr, Ppn, Vpn};
use tmcc_types::fxhash::FxHashMap;
use tmcc_types::pte::{PageTableBlock, Pte, PteFlags, PTES_PER_PTB};

/// Entries per 4 KiB table page.
const ENTRIES_PER_TABLE: u64 = 512;

/// Configuration of the simulated page table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTableConfig {
    /// First PPN of the region table pages are allocated from (the
    /// simulator keeps page-table pages disjoint from data pages).
    pub table_region_base: u64,
    /// Map 2 MiB huge pages at level 2 instead of 4 KiB pages at level 1
    /// (the paper's §VIII huge-page sensitivity study).
    pub huge_pages: bool,
}

impl Default for PageTableConfig {
    fn default() -> Self {
        Self {
            // Table pages live high in the physical space by default.
            table_region_base: 1 << 26, // PPN 2^26 = 256 GiB mark
            huge_pages: false,
        }
    }
}

/// One step of a page walk: the PTB the walker fetches and what the chosen
/// PTE points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStep {
    /// Walk level: 4 (root) down to 1 (leaf), or down to 2 for huge pages.
    pub level: u8,
    /// Physical block address of the 64 B PTB fetched at this step.
    pub ptb_block: BlockAddr,
    /// Slot (0..8) of the relevant PTE within the PTB.
    pub slot: usize,
    /// PPN the PTE points at: the next level's table page, or the data
    /// page at the leaf.
    pub next_ppn: Ppn,
}

/// The simulated page table.
///
/// # Examples
///
/// ```
/// use tmcc_sim_mem::{PageTable, PageTableConfig};
/// use tmcc_types::addr::{Ppn, Vpn};
///
/// let mut pt = PageTable::new(PageTableConfig::default());
/// pt.map(Vpn::new(0x1234), Ppn::new(77));
/// assert_eq!(pt.translate(Vpn::new(0x1234)), Some(Ppn::new(77)));
/// let path = pt.walk_path(Vpn::new(0x1234)).expect("mapped");
/// assert_eq!(path.len(), 4); // four PTB fetches
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    cfg: PageTableConfig,
    root: Ppn,
    /// Table pages by PPN; each holds 512 PTEs. Keyed with the cheap
    /// vendored Fx hasher: the walker's fallback path and every PTB fetch
    /// resolve table pages by key, and nothing iterates the map (so the
    /// hasher change cannot perturb observable ordering).
    tables: FxHashMap<u64, Vec<Pte>>,
    next_table_ppn: u64,
    mapped_pages: u64,
}

impl PageTable {
    /// Creates an empty table (root allocated immediately).
    pub fn new(cfg: PageTableConfig) -> Self {
        let mut pt = Self {
            cfg,
            root: Ppn::new(cfg.table_region_base),
            tables: FxHashMap::default(),
            next_table_ppn: cfg.table_region_base,
            mapped_pages: 0,
        };
        pt.root = pt.alloc_table();
        pt
    }

    fn alloc_table(&mut self) -> Ppn {
        let ppn = self.next_table_ppn;
        self.next_table_ppn += 1;
        self.tables.insert(ppn, vec![Pte::NOT_PRESENT; ENTRIES_PER_TABLE as usize]);
        Ppn::new(ppn)
    }

    /// The leaf level for this configuration (1, or 2 for huge pages).
    pub fn leaf_level(&self) -> u8 {
        if self.cfg.huge_pages {
            2
        } else {
            1
        }
    }

    /// Index of `vpn` within the table at `level`.
    fn index(vpn: Vpn, level: u8) -> usize {
        ((vpn.raw() >> (9 * (level as u64 - 1))) & (ENTRIES_PER_TABLE - 1)) as usize
    }

    /// Maps `vpn` → `ppn` with default (present, writable, accessed) flags.
    pub fn map(&mut self, vpn: Vpn, ppn: Ppn) {
        self.map_with_flags(vpn, ppn, PteFlags::present_rw());
    }

    /// Maps `vpn` → `ppn` with explicit leaf flags. With huge pages, `vpn`
    /// is interpreted as a 4 KiB VPN whose covering 2 MiB region is mapped
    /// (offset bits pass through).
    pub fn map_with_flags(&mut self, vpn: Vpn, ppn: Ppn, flags: PteFlags) {
        let leaf = self.leaf_level();
        let mut table = self.root;
        for level in (leaf + 1..=4).rev() {
            let idx = Self::index(vpn, level);
            let entry = self.tables.get(&table.raw()).expect("table exists")[idx];
            let next = if entry.is_present() {
                entry.ppn()
            } else {
                let t = self.alloc_table();
                self.tables.get_mut(&table.raw()).expect("table exists")[idx] =
                    Pte::new(t, PteFlags::present_rw());
                t
            };
            table = next;
        }
        let idx = Self::index(vpn, leaf);
        let leaf_flags = if leaf == 2 {
            PteFlags::new(flags.low() | PteFlags::HUGE, flags.high())
        } else {
            flags
        };
        let slot = &mut self.tables.get_mut(&table.raw()).expect("table exists")[idx];
        if !slot.is_present() {
            self.mapped_pages += 1;
        }
        *slot = Pte::new(ppn, leaf_flags);
    }

    /// Translates a VPN, if mapped. For huge pages the returned PPN is the
    /// base of the 2 MiB frame plus the VPN's low 9 bits.
    pub fn translate(&self, vpn: Vpn) -> Option<Ppn> {
        let path = self.walk_path(vpn)?;
        let last = path.last().expect("non-empty path");
        if self.cfg.huge_pages {
            Some(Ppn::new(last.next_ppn.raw() + (vpn.raw() & 0x1ff)))
        } else {
            Some(last.next_ppn)
        }
    }

    /// The full walk path for `vpn`: one [`WalkStep`] per level from the
    /// root down to the leaf. `None` if `vpn` is unmapped.
    pub fn walk_path(&self, vpn: Vpn) -> Option<Vec<WalkStep>> {
        let mut buf = Vec::with_capacity(4);
        if self.walk_path_into(vpn, &mut buf) {
            Some(buf.into_iter().map(|(step, _)| step).collect())
        } else {
            None
        }
    }

    /// Allocation-free walk path: clears `out` and fills it with one
    /// `(step, ptb)` pair per level, root to leaf. Returns `false` (with
    /// `out` empty) if `vpn` is unmapped.
    ///
    /// Capturing the PTB while the walk already holds the table page saves
    /// the per-step [`ptb_at`](Self::ptb_at) table lookup the system model
    /// would otherwise do for every fetched step — together with the
    /// reused buffer, this takes the page-walk path out of the simulator's
    /// per-access allocation profile entirely.
    pub fn walk_path_into(&self, vpn: Vpn, out: &mut Vec<(WalkStep, PageTableBlock)>) -> bool {
        out.clear();
        let leaf = self.leaf_level();
        let mut table = self.root;
        for level in (leaf..=4).rev() {
            let idx = Self::index(vpn, level);
            let Some(entries) = self.tables.get(&table.raw()) else {
                out.clear();
                return false;
            };
            let entry = entries[idx];
            if !entry.is_present() {
                out.clear();
                return false;
            }
            let base = (idx / PTES_PER_PTB) * PTES_PER_PTB;
            let mut ptes = [Pte::NOT_PRESENT; PTES_PER_PTB];
            ptes.copy_from_slice(&entries[base..base + PTES_PER_PTB]);
            out.push((
                WalkStep {
                    level,
                    ptb_block: Self::ptb_block_of(table, idx),
                    slot: idx % PTES_PER_PTB,
                    next_ppn: entry.ppn(),
                },
                PageTableBlock::new(ptes),
            ));
            table = entry.ppn();
        }
        true
    }

    /// Physical block address of the PTB holding entry `idx` of the table
    /// page at `table_ppn`.
    fn ptb_block_of(table_ppn: Ppn, idx: usize) -> BlockAddr {
        table_ppn.block(idx / PTES_PER_PTB)
    }

    /// The 64 B PTB at a physical block address, if it belongs to a table
    /// page — what the cache hierarchy returns to the walker and what TMCC
    /// compresses.
    pub fn ptb_at(&self, block: BlockAddr) -> Option<PageTableBlock> {
        let table = self.tables.get(&block.ppn().raw())?;
        let base = block.index_in_page() * PTES_PER_PTB;
        let mut entries = [Pte::NOT_PRESENT; PTES_PER_PTB];
        entries.copy_from_slice(&table[base..base + PTES_PER_PTB]);
        Some(PageTableBlock::new(entries))
    }

    /// Writes a whole PTB back (OS edits through the cache hierarchy).
    ///
    /// # Panics
    ///
    /// Panics if `block` is not within a table page.
    pub fn write_ptb(&mut self, block: BlockAddr, ptb: &PageTableBlock) {
        let table = self.tables.get_mut(&block.ppn().raw()).expect("block belongs to a table page");
        let base = block.index_in_page() * PTES_PER_PTB;
        table[base..base + PTES_PER_PTB].copy_from_slice(ptb.entries());
    }

    /// Iterates over every PTB of every table page at `level` (4 = root) —
    /// the corpus for the paper's Fig. 6 status-bit survey.
    pub fn ptbs_at_level(&self, level: u8) -> Vec<(BlockAddr, PageTableBlock)> {
        let mut out = Vec::new();
        self.collect_ptbs(self.root, 4, level, &mut out);
        out
    }

    fn collect_ptbs(
        &self,
        table: Ppn,
        cur: u8,
        want: u8,
        out: &mut Vec<(BlockAddr, PageTableBlock)>,
    ) {
        let Some(entries) = self.tables.get(&table.raw()) else {
            return;
        };
        if cur == want {
            for ptb_idx in 0..(ENTRIES_PER_TABLE as usize / PTES_PER_PTB) {
                let block = table.block(ptb_idx);
                let ptb = self.ptb_at(block).expect("table page exists");
                if ptb.entries().iter().any(|e| e.is_present()) {
                    out.push((block, ptb));
                }
            }
            return;
        }
        if cur > self.leaf_level() {
            for e in entries.iter().filter(|e| e.is_present()) {
                self.collect_ptbs(e.ppn(), cur - 1, want, out);
            }
        }
    }

    /// Whether a physical page is a page-table page.
    pub fn is_table_page(&self, ppn: Ppn) -> bool {
        self.tables.contains_key(&ppn.raw())
    }

    /// Number of 4 KiB table pages allocated.
    pub fn table_page_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of leaf mappings installed.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// The root table's PPN (CR3).
    pub fn root(&self) -> Ppn {
        self.root
    }

    /// First PPN of the table-page region. Table pages are allocated
    /// sequentially from here, so `[base, base + table_page_count)` is a
    /// dense range — the property the core scheme's page slab indexes by.
    pub fn table_region_base(&self) -> u64 {
        self.cfg.table_region_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_round_trip() {
        let mut pt = PageTable::new(PageTableConfig::default());
        for i in 0..100u64 {
            pt.map(Vpn::new(i * 7919), Ppn::new(i + 1));
        }
        for i in 0..100u64 {
            assert_eq!(pt.translate(Vpn::new(i * 7919)), Some(Ppn::new(i + 1)));
        }
        assert_eq!(pt.translate(Vpn::new(999_999_999)), None);
        assert_eq!(pt.mapped_pages(), 100);
    }

    #[test]
    fn walk_path_has_four_levels() {
        let mut pt = PageTable::new(PageTableConfig::default());
        pt.map(Vpn::new(0xABCDE), Ppn::new(5));
        let path = pt.walk_path(Vpn::new(0xABCDE)).unwrap();
        assert_eq!(path.iter().map(|s| s.level).collect::<Vec<_>>(), [4, 3, 2, 1]);
        assert_eq!(path.last().unwrap().next_ppn, Ppn::new(5));
        // Every step's PTB lives in a table page.
        for s in &path {
            assert!(pt.is_table_page(s.ptb_block.ppn()));
        }
    }

    #[test]
    fn adjacent_pages_share_leaf_ptb() {
        let mut pt = PageTable::new(PageTableConfig::default());
        pt.map(Vpn::new(64), Ppn::new(1));
        pt.map(Vpn::new(65), Ppn::new(2));
        pt.map(Vpn::new(72), Ppn::new(3)); // next PTB
        let a = pt.walk_path(Vpn::new(64)).unwrap().pop().unwrap();
        let b = pt.walk_path(Vpn::new(65)).unwrap().pop().unwrap();
        let c = pt.walk_path(Vpn::new(72)).unwrap().pop().unwrap();
        assert_eq!(a.ptb_block, b.ptb_block);
        assert_ne!(a.ptb_block, c.ptb_block);
        assert_eq!(a.slot, 0);
        assert_eq!(b.slot, 1);
    }

    #[test]
    fn huge_pages_walk_three_levels() {
        let mut pt = PageTable::new(PageTableConfig { huge_pages: true, ..Default::default() });
        // Map the 2 MiB region containing VPN 0x12345.
        pt.map(Vpn::new(0x12345), Ppn::new(0x4000));
        let path = pt.walk_path(Vpn::new(0x12345)).unwrap();
        assert_eq!(path.iter().map(|s| s.level).collect::<Vec<_>>(), [4, 3, 2]);
        // Translation adds the low 9 VPN bits onto the 2 MiB frame.
        assert_eq!(pt.translate(Vpn::new(0x12345)), Some(Ppn::new(0x4000 + (0x12345 & 0x1ff))));
        // The leaf PTE carries the page-size bit.
        let leaf = path.last().unwrap();
        let ptb = pt.ptb_at(leaf.ptb_block).unwrap();
        assert!(ptb.entry(leaf.slot).flags().is_huge());
    }

    #[test]
    fn ptb_fetch_matches_walk() {
        let mut pt = PageTable::new(PageTableConfig::default());
        pt.map(Vpn::new(1000), Ppn::new(11));
        let leaf = *pt.walk_path(Vpn::new(1000)).unwrap().last().unwrap();
        let ptb = pt.ptb_at(leaf.ptb_block).unwrap();
        assert_eq!(ptb.entry(leaf.slot).ppn(), Ppn::new(11));
    }

    #[test]
    fn write_ptb_round_trips() {
        let mut pt = PageTable::new(PageTableConfig::default());
        pt.map(Vpn::new(8), Ppn::new(1));
        let leaf = *pt.walk_path(Vpn::new(8)).unwrap().last().unwrap();
        let mut ptb = pt.ptb_at(leaf.ptb_block).unwrap();
        ptb.set_entry(3, Pte::new(Ppn::new(42), PteFlags::present_rw()));
        pt.write_ptb(leaf.ptb_block, &ptb);
        assert_eq!(pt.ptb_at(leaf.ptb_block).unwrap(), ptb);
        // VPN 11 (slot 3 of the same PTB) now translates.
        assert_eq!(pt.translate(Vpn::new(11)), Some(Ppn::new(42)));
    }

    #[test]
    fn fig6_corpus_uniform_by_default() {
        let mut pt = PageTable::new(PageTableConfig::default());
        for i in 0..4096u64 {
            pt.map(Vpn::new(i), Ppn::new(i * 3 + 7));
        }
        let l1 = pt.ptbs_at_level(1);
        assert!(!l1.is_empty());
        assert!(l1.iter().all(|(_, ptb)| ptb.uniform_status()));
        let l2 = pt.ptbs_at_level(2);
        assert!(!l2.is_empty());
    }
}
