//! Packed slot directory for CTE cache metadata.
//!
//! The CTE cache only ever needs *tag + recency* per line — its payload is
//! empty — yet the generic [`SetAssocCache`](crate::SetAssocCache) spends a
//! 24-byte `Line` (key, dirty, unit payload, 64-bit global stamp) plus a
//! `Vec` header per set on it. [`PackedCteSlots`] stores the same directory
//! in two fixed-width packed sequences: a 40-bit tag per way (the paper's
//! PPN width bounds every line key) and a metadata field holding a valid
//! bit plus a per-set recency rank sized to the way count (3 rank bits for
//! the default 8-way geometry — 5.5 bytes per line). Both are flat in two
//! allocations, and the directory scales to the multi-tenant rosters where
//! hundreds of per-tenant CTE caches exist at once.
//!
//! The recency ranks are behaviorally identical to the generic cache's
//! global LRU stamps: stamps are only ever *compared within one set*, so
//! the per-set rank order (0 = least recent, `valid-1` = most recent) picks
//! the same victim on every eviction, and hit/miss outcomes are a function
//! of residency only. The parity test at the bottom drives both structures
//! with the same trace and asserts identical outcomes.

use tmcc_types::packed::PackedSeq;

/// Bits per tag: covers any line key derived from a 40-bit PPN.
const TAG_BITS: u32 = 40;
/// Metadata layout: bit 0 = valid, the remaining bits the recency rank.
const VALID_BIT: u64 = 1;
const RANK_SHIFT: u64 = 1;

/// Metadata bits for a `ways`-way set: valid bit + enough rank bits to
/// hold ranks `0..ways` (3 rank bits for the default 8-way geometry).
fn meta_bits(ways: usize) -> u32 {
    1 + (usize::BITS - (ways - 1).leading_zeros()).max(1)
}

/// A set-associative tag/LRU directory with no payload, packed to 44 bits
/// per way.
///
/// # Examples
///
/// ```
/// use tmcc_sim_mem::PackedCteSlots;
///
/// let mut d = PackedCteSlots::new(2, 4); // 8 lines
/// assert!(!d.access(42), "cold miss fills the line");
/// assert!(d.access(42));
/// ```
#[derive(Debug, Clone)]
pub struct PackedCteSlots {
    /// `sets * ways` tags, valid only where the meta nibble says so.
    tags: PackedSeq,
    /// `sets * ways` nibbles: valid bit + per-set recency rank.
    meta: PackedSeq,
    /// One even-parity bit per line over (tag, meta) — the metadata
    /// integrity check of the fault ladder. Maintained by every directory
    /// mutation; only [`corrupt_line_bit`](Self::corrupt_line_bit) flips
    /// state without it, modeling a DRAM bit flip.
    parity: PackedSeq,
    sets: usize,
    ways: usize,
    hits: u64,
    misses: u64,
}

impl PackedCteSlots {
    /// Creates a directory with `num_sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `num_sets` is not a power
    /// of two.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets > 0 && ways > 0, "directory dimensions must be nonzero");
        assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        let lines = num_sets * ways;
        Self {
            tags: PackedSeq::with_len(TAG_BITS, lines),
            meta: PackedSeq::with_len(meta_bits(ways), lines),
            parity: PackedSeq::with_len(1, lines),
            sets: num_sets,
            ways,
            hits: 0,
            misses: 0,
        }
    }

    /// Even parity over one line's tag and meta fields.
    fn line_parity(&self, line: usize) -> u64 {
        ((self.tags.get(line).count_ones() + self.meta.get(line).count_ones()) & 1) as u64
    }

    /// Recomputes the stored parity bit after a legitimate mutation.
    fn refresh_parity(&mut self, line: usize) {
        let p = self.line_parity(line);
        self.parity.set(line, p);
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Same multiplicative hash as the generic cache, so a swapped-in
    /// directory indexes identical sets.
    fn set_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (self.sets - 1)
    }

    /// Accesses `key`, filling it on a miss (evicting the set's
    /// least-recently-used way if full). Returns whether it hit.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit the 40-bit tag.
    pub fn access(&mut self, key: u64) -> bool {
        assert!(key <= self.tags.max_value(), "key {key:#x} exceeds the {TAG_BITS}-bit tag");
        let base = self.set_of(key) * self.ways;
        let mut valid = 0u64;
        let mut hit_way = None;
        let mut victim_way = 0;
        let mut free_way = None;
        for w in 0..self.ways {
            let m = self.meta.get(base + w);
            if m & VALID_BIT == 0 {
                free_way.get_or_insert(w);
                continue;
            }
            valid += 1;
            if self.tags.get(base + w) == key {
                hit_way = Some(w);
            }
            if m >> RANK_SHIFT == 0 {
                victim_way = w;
            }
        }
        if let Some(w) = hit_way {
            self.hits = self.hits.saturating_add(1);
            let old_rank = self.meta.get(base + w) >> RANK_SHIFT;
            self.demote_above(base, old_rank);
            self.meta.set(base + w, VALID_BIT | ((valid - 1) << RANK_SHIFT));
            self.refresh_parity(base + w);
            return true;
        }
        self.misses = self.misses.saturating_add(1);
        let (w, new_rank) = match free_way {
            Some(w) => (w, valid), // fill a free way at the most-recent rank
            None => {
                // Evict rank 0: everything above it slides down one.
                self.demote_above(base, 0);
                (victim_way, valid - 1)
            }
        };
        self.tags.set(base + w, key);
        self.meta.set(base + w, VALID_BIT | (new_rank << RANK_SHIFT));
        self.refresh_parity(base + w);
        false
    }

    /// Decrements the rank of every valid way ranked strictly above
    /// `rank` (closing the gap a promotion or eviction leaves).
    fn demote_above(&mut self, base: usize, rank: u64) {
        for w in 0..self.ways {
            let m = self.meta.get(base + w);
            if m & VALID_BIT != 0 && m >> RANK_SHIFT > rank {
                self.meta.set(base + w, m - (1 << RANK_SHIFT));
                self.refresh_parity(base + w);
            }
        }
    }

    /// Whether `key` is resident, without touching recency state.
    pub fn contains(&self, key: u64) -> bool {
        if key > self.tags.max_value() {
            return false;
        }
        let base = self.set_of(key) * self.ways;
        (0..self.ways)
            .any(|w| self.meta.get(base + w) & VALID_BIT != 0 && self.tags.get(base + w) == key)
    }

    /// Removes `key` if resident. Returns whether it was.
    pub fn invalidate(&mut self, key: u64) -> bool {
        if key > self.tags.max_value() {
            return false;
        }
        let base = self.set_of(key) * self.ways;
        for w in 0..self.ways {
            let m = self.meta.get(base + w);
            if m & VALID_BIT != 0 && self.tags.get(base + w) == key {
                self.meta.set(base + w, 0);
                self.refresh_parity(base + w);
                self.demote_above(base, m >> RANK_SHIFT);
                return true;
            }
        }
        false
    }

    /// Drops every resident line; hit/miss counters are preserved.
    pub fn clear(&mut self) {
        let lines = self.capacity();
        for i in 0..lines {
            self.meta.set(i, 0);
            self.refresh_parity(i);
        }
    }

    /// Bits of protected state per line: tag + meta + the parity bit
    /// itself (a flip landing on the parity bit is also detectable).
    fn line_bits(&self) -> u32 {
        TAG_BITS + self.meta.width() + 1
    }

    /// Fault-injection hook: flips one bit of `line`'s stored state
    /// *without* updating parity — exactly what a DRAM upset does. `bit`
    /// is taken modulo the line's protected width (tag bits, then meta
    /// bits, then the parity bit).
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn corrupt_line_bit(&mut self, line: usize, bit: u32) {
        assert!(line < self.capacity(), "line {line} out of range");
        let b = bit % self.line_bits();
        if b < TAG_BITS {
            self.tags.set(line, self.tags.get(line) ^ (1 << b));
        } else if b < TAG_BITS + self.meta.width() {
            self.meta.set(line, self.meta.get(line) ^ (1 << (b - TAG_BITS)));
        } else {
            self.parity.set(line, self.parity.get(line) ^ 1);
        }
    }

    /// Read-only integrity audit: number of lines whose stored parity
    /// bit disagrees with the parity recomputed over (tag, meta). Zero
    /// on an uncorrupted directory; odd-weight corruptions always show
    /// up here, even-weight ones (e.g. a 2-bit burst within one line)
    /// can escape — that asymmetry is what the fault ladder measures.
    pub fn audit_parity(&self) -> usize {
        (0..self.capacity()).filter(|&i| self.parity.get(i) != self.line_parity(i)).count()
    }

    /// Scrubs the directory: every parity-violating line is invalidated
    /// (its contents are untrustworthy — a re-walk will refill it) and
    /// each affected set's recency ranks are re-compacted so LRU
    /// invariants hold again. Returns the number of lines dropped.
    pub fn scrub(&mut self) -> usize {
        let mut dropped = 0usize;
        for set in 0..self.sets {
            let base = set * self.ways;
            let mut dirty = false;
            for w in 0..self.ways {
                if self.parity.get(base + w) != self.line_parity(base + w) {
                    self.meta.set(base + w, 0);
                    self.refresh_parity(base + w);
                    dropped += 1;
                    dirty = true;
                }
            }
            if !dirty {
                continue;
            }
            // Re-rank the survivors 0..n preserving their relative order;
            // the corrupted line may have held (or claimed) any rank.
            let mut ways: Vec<(u64, usize)> = (0..self.ways)
                .filter(|&w| self.meta.get(base + w) & VALID_BIT != 0)
                .map(|w| (self.meta.get(base + w) >> RANK_SHIFT, w))
                .collect();
            ways.sort_unstable();
            for (rank, &(_, w)) in ways.iter().enumerate() {
                self.meta.set(base + w, VALID_BIT | ((rank as u64) << RANK_SHIFT));
                self.refresh_parity(base + w);
            }
        }
        dropped
    }

    /// `(hits, misses)` since construction or [`reset_stats`](Self::reset_stats).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Zeroes the hit/miss counters (e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Heap bytes owned by the directory.
    pub fn heap_bytes(&self) -> usize {
        self.tags.heap_bytes() + self.meta.heap_bytes() + self.parity.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssocCache;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn hit_after_fill() {
        let mut d = PackedCteSlots::new(4, 2);
        assert!(!d.access(1));
        assert!(d.access(1));
        assert_eq!(d.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut d = PackedCteSlots::new(1, 2);
        d.access(1);
        d.access(2);
        d.access(1); // 2 is now LRU
        d.access(3); // evicts 2
        assert!(d.contains(1) && d.contains(3) && !d.contains(2));
    }

    #[test]
    fn invalidate_removes_and_keeps_order() {
        let mut d = PackedCteSlots::new(1, 3);
        d.access(1);
        d.access(2);
        d.access(3);
        assert!(d.invalidate(2));
        assert!(!d.invalidate(2));
        d.access(4); // set full again: 1, 3, 4
        d.access(5); // evicts 1, the survivor with the oldest rank
        assert!(!d.contains(1) && d.contains(3) && d.contains(4) && d.contains(5));
    }

    #[test]
    fn parity_with_generic_cache_on_random_trace() {
        let mut d = PackedCteSlots::new(8, 4);
        let mut c: SetAssocCache<()> = SetAssocCache::new(8, 4);
        let mut rng = SmallRng::seed_from_u64(0xC7E);
        for step in 0..20_000u32 {
            let key = rng.gen_range(0..96u64);
            match rng.gen_range(0..10u32) {
                0 => assert_eq!(d.invalidate(key), c.invalidate(key).is_some(), "step {step}"),
                1 => assert_eq!(d.contains(key), c.contains(key), "step {step}"),
                2 if step % 997 == 0 => {
                    d.clear();
                    c.clear();
                }
                _ => {
                    let hit = d.access(key);
                    assert_eq!(hit, c.access(key, false, ()).0.is_hit(), "step {step}");
                }
            }
        }
        assert_eq!(d.stats(), c.stats());
        for key in 0..96u64 {
            assert_eq!(d.contains(key), c.contains(key), "final residency of {key}");
        }
    }

    #[test]
    fn packs_under_six_bytes_per_line() {
        let d = PackedCteSlots::new(128, 8); // the tmcc() geometry: 1024 lines
        assert!(
            d.heap_bytes() <= d.capacity() * 6,
            "{} bytes for {} lines",
            d.heap_bytes(),
            d.capacity()
        );
    }

    #[test]
    fn oversized_key_is_never_resident() {
        let mut d = PackedCteSlots::new(2, 2);
        d.access(7);
        assert!(!d.contains(1 << 41));
        assert!(!d.invalidate(1 << 41));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        let _ = PackedCteSlots::new(3, 2);
    }

    #[test]
    fn clean_directory_audits_clean_under_any_trace() {
        let mut d = PackedCteSlots::new(8, 4);
        let mut rng = SmallRng::seed_from_u64(0xA0D17);
        for _ in 0..5_000u32 {
            let key = rng.gen_range(0..96u64);
            match rng.gen_range(0..8u32) {
                0 => {
                    d.invalidate(key);
                }
                1 => d.clear(),
                _ => {
                    d.access(key);
                }
            }
            assert_eq!(d.audit_parity(), 0, "legitimate mutations must keep parity");
        }
    }

    #[test]
    fn single_bit_flips_are_always_detected() {
        let mut rng = SmallRng::seed_from_u64(0xF11);
        for trial in 0..200u32 {
            let mut d = PackedCteSlots::new(4, 4);
            for _ in 0..64 {
                d.access(rng.gen_range(0..48u64));
            }
            let line = rng.gen_range(0..d.capacity());
            d.corrupt_line_bit(line, rng.gen());
            assert_eq!(d.audit_parity(), 1, "trial {trial}: odd-weight flip must be seen");
        }
    }

    #[test]
    fn even_weight_bursts_can_escape_parity() {
        // Flip the same tag bit twice (net no-op) and two distinct bits
        // (real corruption): the former audits clean by construction,
        // the latter escapes parity — the documented SDC window.
        let mut d = PackedCteSlots::new(2, 2);
        d.access(5);
        let line = d.set_of(5) * d.ways; // way 0 of 5's set holds the fill
        d.corrupt_line_bit(line, 3);
        d.corrupt_line_bit(line, 3);
        assert_eq!(d.audit_parity(), 0);
        d.corrupt_line_bit(line, 3);
        d.corrupt_line_bit(line, 7);
        assert_eq!(d.audit_parity(), 0, "2-bit burst in one line escapes parity");
        assert!(d.contains(5 ^ 0x88), "the silently corrupted tag is live");
    }

    #[test]
    fn scrub_drops_corrupt_lines_and_restores_lru_invariants() {
        let mut d = PackedCteSlots::new(1, 4);
        for key in 1..=4u64 {
            d.access(key);
        }
        // Corrupt a high tag bit of the way holding key 2: its tag now
        // claims a key that was never inserted.
        let victim = (0..4).find(|&w| d.tags.get(w) == 2).expect("2 is resident");
        d.corrupt_line_bit(victim, 20);
        assert!(d.contains(2 | (1 << 20)), "pre-scrub, the forged tag answers lookups");
        assert_eq!(d.audit_parity(), 1);
        assert_eq!(d.scrub(), 1);
        assert_eq!(d.audit_parity(), 0);
        assert!(!d.contains(2) && !d.contains(2 | (1 << 20)), "corrupt line dropped");
        assert!(d.contains(1) && d.contains(3) && d.contains(4), "survivors kept");
        // Ranks were re-compacted: fills and evictions still behave.
        d.access(9); // refills the scrubbed way: set is 1, 3, 4, 9
        d.access(10); // set full again: evicts the oldest survivor (1)
        assert!(!d.contains(1) && d.contains(3) && d.contains(4));
        assert!(d.contains(9) && d.contains(10));
        assert_eq!(d.audit_parity(), 0);
    }

    #[test]
    fn parity_bit_flip_itself_is_detected_and_scrubbed() {
        let mut d = PackedCteSlots::new(2, 2);
        d.access(7);
        let line = d.set_of(7) * d.ways;
        let parity_bit = TAG_BITS + d.meta.width(); // past tag and meta
        d.corrupt_line_bit(line, parity_bit);
        assert_eq!(d.audit_parity(), 1);
        assert_eq!(d.scrub(), 1);
        assert!(!d.contains(7), "a line with untrusted parity is dropped, not believed");
    }

    #[test]
    fn wide_sets_get_wider_rank_fields() {
        // A 4x-scaled CTE cache is 16-way; ranks 0..16 need 4 bits.
        let mut d = PackedCteSlots::new(4, 16);
        let mut c: SetAssocCache<()> = SetAssocCache::new(4, 16);
        let mut rng = SmallRng::seed_from_u64(0x16C7E);
        for step in 0..20_000u32 {
            let key = rng.gen_range(0..192u64);
            let hit = d.access(key);
            assert_eq!(hit, c.access(key, false, ()).0.is_hit(), "step {step}");
        }
        assert_eq!(d.stats(), c.stats());
    }
}
