//! Packed slot directory for CTE cache metadata.
//!
//! The CTE cache only ever needs *tag + recency* per line — its payload is
//! empty — yet the generic [`SetAssocCache`](crate::SetAssocCache) spends a
//! 24-byte `Line` (key, dirty, unit payload, 64-bit global stamp) plus a
//! `Vec` header per set on it. [`PackedCteSlots`] stores the same directory
//! in two fixed-width packed sequences: a 40-bit tag per way (the paper's
//! PPN width bounds every line key) and a metadata field holding a valid
//! bit plus a per-set recency rank sized to the way count (3 rank bits for
//! the default 8-way geometry — 5.5 bytes per line). Both are flat in two
//! allocations, and the directory scales to the multi-tenant rosters where
//! hundreds of per-tenant CTE caches exist at once.
//!
//! The recency ranks are behaviorally identical to the generic cache's
//! global LRU stamps: stamps are only ever *compared within one set*, so
//! the per-set rank order (0 = least recent, `valid-1` = most recent) picks
//! the same victim on every eviction, and hit/miss outcomes are a function
//! of residency only. The parity test at the bottom drives both structures
//! with the same trace and asserts identical outcomes.

use tmcc_types::packed::PackedSeq;

/// Bits per tag: covers any line key derived from a 40-bit PPN.
const TAG_BITS: u32 = 40;
/// Metadata layout: bit 0 = valid, the remaining bits the recency rank.
const VALID_BIT: u64 = 1;
const RANK_SHIFT: u64 = 1;

/// Metadata bits for a `ways`-way set: valid bit + enough rank bits to
/// hold ranks `0..ways` (3 rank bits for the default 8-way geometry).
fn meta_bits(ways: usize) -> u32 {
    1 + (usize::BITS - (ways - 1).leading_zeros()).max(1)
}

/// A set-associative tag/LRU directory with no payload, packed to 44 bits
/// per way.
///
/// # Examples
///
/// ```
/// use tmcc_sim_mem::PackedCteSlots;
///
/// let mut d = PackedCteSlots::new(2, 4); // 8 lines
/// assert!(!d.access(42), "cold miss fills the line");
/// assert!(d.access(42));
/// ```
#[derive(Debug, Clone)]
pub struct PackedCteSlots {
    /// `sets * ways` tags, valid only where the meta nibble says so.
    tags: PackedSeq,
    /// `sets * ways` nibbles: valid bit + per-set recency rank.
    meta: PackedSeq,
    sets: usize,
    ways: usize,
    hits: u64,
    misses: u64,
}

impl PackedCteSlots {
    /// Creates a directory with `num_sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `num_sets` is not a power
    /// of two.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets > 0 && ways > 0, "directory dimensions must be nonzero");
        assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        let lines = num_sets * ways;
        Self {
            tags: PackedSeq::with_len(TAG_BITS, lines),
            meta: PackedSeq::with_len(meta_bits(ways), lines),
            sets: num_sets,
            ways,
            hits: 0,
            misses: 0,
        }
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Same multiplicative hash as the generic cache, so a swapped-in
    /// directory indexes identical sets.
    fn set_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (self.sets - 1)
    }

    /// Accesses `key`, filling it on a miss (evicting the set's
    /// least-recently-used way if full). Returns whether it hit.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit the 40-bit tag.
    pub fn access(&mut self, key: u64) -> bool {
        assert!(key <= self.tags.max_value(), "key {key:#x} exceeds the {TAG_BITS}-bit tag");
        let base = self.set_of(key) * self.ways;
        let mut valid = 0u64;
        let mut hit_way = None;
        let mut victim_way = 0;
        let mut free_way = None;
        for w in 0..self.ways {
            let m = self.meta.get(base + w);
            if m & VALID_BIT == 0 {
                free_way.get_or_insert(w);
                continue;
            }
            valid += 1;
            if self.tags.get(base + w) == key {
                hit_way = Some(w);
            }
            if m >> RANK_SHIFT == 0 {
                victim_way = w;
            }
        }
        if let Some(w) = hit_way {
            self.hits = self.hits.saturating_add(1);
            let old_rank = self.meta.get(base + w) >> RANK_SHIFT;
            self.demote_above(base, old_rank);
            self.meta.set(base + w, VALID_BIT | ((valid - 1) << RANK_SHIFT));
            return true;
        }
        self.misses = self.misses.saturating_add(1);
        let (w, new_rank) = match free_way {
            Some(w) => (w, valid), // fill a free way at the most-recent rank
            None => {
                // Evict rank 0: everything above it slides down one.
                self.demote_above(base, 0);
                (victim_way, valid - 1)
            }
        };
        self.tags.set(base + w, key);
        self.meta.set(base + w, VALID_BIT | (new_rank << RANK_SHIFT));
        false
    }

    /// Decrements the rank of every valid way ranked strictly above
    /// `rank` (closing the gap a promotion or eviction leaves).
    fn demote_above(&mut self, base: usize, rank: u64) {
        for w in 0..self.ways {
            let m = self.meta.get(base + w);
            if m & VALID_BIT != 0 && m >> RANK_SHIFT > rank {
                self.meta.set(base + w, m - (1 << RANK_SHIFT));
            }
        }
    }

    /// Whether `key` is resident, without touching recency state.
    pub fn contains(&self, key: u64) -> bool {
        if key > self.tags.max_value() {
            return false;
        }
        let base = self.set_of(key) * self.ways;
        (0..self.ways)
            .any(|w| self.meta.get(base + w) & VALID_BIT != 0 && self.tags.get(base + w) == key)
    }

    /// Removes `key` if resident. Returns whether it was.
    pub fn invalidate(&mut self, key: u64) -> bool {
        if key > self.tags.max_value() {
            return false;
        }
        let base = self.set_of(key) * self.ways;
        for w in 0..self.ways {
            let m = self.meta.get(base + w);
            if m & VALID_BIT != 0 && self.tags.get(base + w) == key {
                self.meta.set(base + w, 0);
                self.demote_above(base, m >> RANK_SHIFT);
                return true;
            }
        }
        false
    }

    /// Drops every resident line; hit/miss counters are preserved.
    pub fn clear(&mut self) {
        let lines = self.capacity();
        for i in 0..lines {
            self.meta.set(i, 0);
        }
    }

    /// `(hits, misses)` since construction or [`reset_stats`](Self::reset_stats).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Zeroes the hit/miss counters (e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Heap bytes owned by the directory.
    pub fn heap_bytes(&self) -> usize {
        self.tags.heap_bytes() + self.meta.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssocCache;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn hit_after_fill() {
        let mut d = PackedCteSlots::new(4, 2);
        assert!(!d.access(1));
        assert!(d.access(1));
        assert_eq!(d.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut d = PackedCteSlots::new(1, 2);
        d.access(1);
        d.access(2);
        d.access(1); // 2 is now LRU
        d.access(3); // evicts 2
        assert!(d.contains(1) && d.contains(3) && !d.contains(2));
    }

    #[test]
    fn invalidate_removes_and_keeps_order() {
        let mut d = PackedCteSlots::new(1, 3);
        d.access(1);
        d.access(2);
        d.access(3);
        assert!(d.invalidate(2));
        assert!(!d.invalidate(2));
        d.access(4); // set full again: 1, 3, 4
        d.access(5); // evicts 1, the survivor with the oldest rank
        assert!(!d.contains(1) && d.contains(3) && d.contains(4) && d.contains(5));
    }

    #[test]
    fn parity_with_generic_cache_on_random_trace() {
        let mut d = PackedCteSlots::new(8, 4);
        let mut c: SetAssocCache<()> = SetAssocCache::new(8, 4);
        let mut rng = SmallRng::seed_from_u64(0xC7E);
        for step in 0..20_000u32 {
            let key = rng.gen_range(0..96u64);
            match rng.gen_range(0..10u32) {
                0 => assert_eq!(d.invalidate(key), c.invalidate(key).is_some(), "step {step}"),
                1 => assert_eq!(d.contains(key), c.contains(key), "step {step}"),
                2 if step % 997 == 0 => {
                    d.clear();
                    c.clear();
                }
                _ => {
                    let hit = d.access(key);
                    assert_eq!(hit, c.access(key, false, ()).0.is_hit(), "step {step}");
                }
            }
        }
        assert_eq!(d.stats(), c.stats());
        for key in 0..96u64 {
            assert_eq!(d.contains(key), c.contains(key), "final residency of {key}");
        }
    }

    #[test]
    fn packs_under_six_bytes_per_line() {
        let d = PackedCteSlots::new(128, 8); // the tmcc() geometry: 1024 lines
        assert!(
            d.heap_bytes() <= d.capacity() * 6,
            "{} bytes for {} lines",
            d.heap_bytes(),
            d.capacity()
        );
    }

    #[test]
    fn oversized_key_is_never_resident() {
        let mut d = PackedCteSlots::new(2, 2);
        d.access(7);
        assert!(!d.contains(1 << 41));
        assert!(!d.invalidate(1 << 41));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        let _ = PackedCteSlots::new(3, 2);
    }

    #[test]
    fn wide_sets_get_wider_rank_fields() {
        // A 4x-scaled CTE cache is 16-way; ranks 0..16 need 4 bits.
        let mut d = PackedCteSlots::new(4, 16);
        let mut c: SetAssocCache<()> = SetAssocCache::new(4, 16);
        let mut rng = SmallRng::seed_from_u64(0x16C7E);
        for step in 0..20_000u32 {
            let key = rng.gen_range(0..192u64);
            let hit = d.access(key);
            assert_eq!(hit, c.access(key, false, ()).0.is_hit(), "step {step}");
        }
        assert_eq!(d.stats(), c.stats());
    }
}
