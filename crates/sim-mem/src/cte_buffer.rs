//! TMCC's CTE buffer (paper §V-A3, Fig. 10).
//!
//! When the page walker fetches a compressed PTB, L2 copies every embedded
//! CTE into this small temporary buffer, keyed by the PPN each PTE records.
//! When L2 later sees another request (the next walk step or the end
//! data/instruction access), it looks the request's PPN up here and
//! piggybacks the CTE down the hierarchy so the memory controller can
//! launch the speculative parallel DRAM access.
//!
//! Each entry also remembers the physical address of the PTB the CTE came
//! from, so that when the *correct* CTE comes back in the response, L2 can
//! lazily repair a stale embedded CTE in the PTB (§V-A2's lazy update).

use crate::cache::SetAssocCache;
use tmcc_types::addr::{BlockAddr, Ppn};
use tmcc_types::cte::TruncatedCte;

/// One CTE-buffer entry (Fig. 10: PPN key → embedded CTE + PTB address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CteBufferEntry {
    /// The embedded CTE for this PPN, if the PTB had one for this slot.
    pub cte: Option<TruncatedCte>,
    /// The PTB the entry came from (for lazy repair).
    pub ptb_block: BlockAddr,
}

/// The 64-entry CTE buffer (~1 KiB, §V-A6).
///
/// # Examples
///
/// ```
/// use tmcc_sim_mem::CteBuffer;
/// use tmcc_types::addr::{BlockAddr, Ppn};
/// use tmcc_types::cte::TruncatedCte;
///
/// let mut buf = CteBuffer::paper_default();
/// buf.insert(Ppn::new(5), Some(TruncatedCte::new(123)), BlockAddr::new(900));
/// let e = buf.lookup(Ppn::new(5)).expect("present");
/// assert_eq!(e.cte.unwrap().frame(), 123);
/// ```
#[derive(Debug, Clone)]
pub struct CteBuffer {
    entries: SetAssocCache<CteBufferEntry>,
}

impl CteBuffer {
    /// Creates a buffer with `entries` slots.
    pub fn new(entries: usize) -> Self {
        Self { entries: SetAssocCache::fully_associative(entries) }
    }

    /// The paper's 64-entry buffer.
    pub fn paper_default() -> Self {
        Self::new(64)
    }

    /// Inserts (or replaces) the entry for `ppn`.
    pub fn insert(&mut self, ppn: Ppn, cte: Option<TruncatedCte>, ptb_block: BlockAddr) {
        let entry = CteBufferEntry { cte, ptb_block };
        if self.entries.contains(ppn.raw()) {
            *self.entries.payload_mut(ppn.raw()).expect("resident") = entry;
            let _ = self.entries.access(ppn.raw(), false, entry); // touch LRU
        } else {
            let _ = self.entries.access(ppn.raw(), false, entry);
        }
    }

    /// Looks up the entry for `ppn` (recency-updating).
    pub fn lookup(&mut self, ppn: Ppn) -> Option<CteBufferEntry> {
        if self.entries.contains(ppn.raw()) {
            let e = *self.entries.payload(ppn.raw()).expect("resident");
            let _ = self.entries.access(ppn.raw(), false, e);
            Some(e)
        } else {
            None
        }
    }

    /// Stores the verified CTE into an existing entry (the response path
    /// of §V-A3: "L2 stores the correct CTE into the entry"). Returns the
    /// PTB block to repair when the entry existed and disagreed.
    pub fn reconcile(&mut self, ppn: Ppn, correct: TruncatedCte) -> Option<BlockAddr> {
        let entry = self.entries.payload_mut(ppn.raw())?;
        let stale = entry.cte != Some(correct);
        entry.cte = Some(correct);
        stale.then_some(entry.ptb_block)
    }

    /// Drops the entry for `ppn`.
    pub fn invalidate(&mut self, ppn: Ppn) {
        let _ = self.entries.invalidate(ppn.raw());
    }

    /// Drops every entry (a flush storm).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.iter().count()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_round_trip() {
        let mut buf = CteBuffer::new(4);
        buf.insert(Ppn::new(1), Some(TruncatedCte::new(10)), BlockAddr::new(100));
        buf.insert(Ppn::new(2), None, BlockAddr::new(200));
        assert_eq!(buf.lookup(Ppn::new(1)).unwrap().cte, Some(TruncatedCte::new(10)));
        assert_eq!(buf.lookup(Ppn::new(2)).unwrap().cte, None);
        assert!(buf.lookup(Ppn::new(3)).is_none());
    }

    #[test]
    fn capacity_is_bounded() {
        let mut buf = CteBuffer::new(64);
        for i in 0..100u64 {
            buf.insert(Ppn::new(i), None, BlockAddr::new(i));
        }
        assert_eq!(buf.len(), 64);
    }

    #[test]
    fn reconcile_reports_stale_ptb() {
        let mut buf = CteBuffer::new(4);
        buf.insert(Ppn::new(7), Some(TruncatedCte::new(1)), BlockAddr::new(70));
        // Correct CTE disagrees: PTB needs repair.
        assert_eq!(buf.reconcile(Ppn::new(7), TruncatedCte::new(2)), Some(BlockAddr::new(70)));
        // Now it agrees: no repair.
        assert_eq!(buf.reconcile(Ppn::new(7), TruncatedCte::new(2)), None);
        assert_eq!(buf.lookup(Ppn::new(7)).unwrap().cte, Some(TruncatedCte::new(2)));
    }

    #[test]
    fn reconcile_missing_entry_is_none() {
        let mut buf = CteBuffer::new(4);
        assert_eq!(buf.reconcile(Ppn::new(9), TruncatedCte::new(1)), None);
    }

    #[test]
    fn entry_with_no_cte_reconciles_to_repair() {
        // "if the CTE Buffer entry ... has no CTE, L2 stores the correct
        // CTE into the entry and ... updates the PTB" (§V-A3).
        let mut buf = CteBuffer::new(4);
        buf.insert(Ppn::new(3), None, BlockAddr::new(30));
        assert_eq!(buf.reconcile(Ppn::new(3), TruncatedCte::new(5)), Some(BlockAddr::new(30)));
    }
}
