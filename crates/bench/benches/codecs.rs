//! Criterion wall-clock benchmarks of the functional codecs.
//!
//! These measure this *reproduction's software implementation* — useful
//! for keeping the simulator fast — and are distinct from the modelled
//! ASIC latencies of Table II (`cargo run -p tmcc-bench --bin
//! table2_deflate_perf`).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tmcc_compression::{BdiCodec, BestOfCodec, BlockCodec, BpcCodec, CpackCodec};
use tmcc_deflate::{MemDeflate, SoftwareDeflate};
use tmcc_workloads::WorkloadProfile;

fn corpus_page(i: u64) -> Vec<u8> {
    let w = WorkloadProfile::by_name("pageRank").expect("known workload");
    w.page_content(42).page_bytes(i)
}

fn bench_block_codecs(c: &mut Criterion) {
    let page = corpus_page(0);
    let mut blocks: Vec<[u8; 64]> = Vec::new();
    for ch in page.chunks_exact(64) {
        blocks.push(ch.try_into().expect("64B"));
    }
    let mut g = c.benchmark_group("block-codecs");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("bdi/compress-page", |b| {
        let codec = BdiCodec::new();
        b.iter(|| {
            for blk in &blocks {
                black_box(codec.compressed_size(blk));
            }
        })
    });
    g.bench_function("bpc/compress-page", |b| {
        let codec = BpcCodec::new();
        b.iter(|| {
            for blk in &blocks {
                black_box(codec.compressed_size(blk));
            }
        })
    });
    g.bench_function("cpack/compress-page", |b| {
        let codec = CpackCodec::new();
        b.iter(|| {
            for blk in &blocks {
                black_box(codec.compressed_size(blk));
            }
        })
    });
    g.bench_function("best-of/compress-page", |b| {
        let codec = BestOfCodec::new();
        b.iter(|| {
            for blk in &blocks {
                black_box(codec.compressed_size(blk));
            }
        })
    });
    g.finish();
}

fn bench_deflate(c: &mut Criterion) {
    let page = corpus_page(1);
    let codec = MemDeflate::default();
    let compressed = codec.compress_page(&page);
    let mut g = c.benchmark_group("mem-deflate");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("compress-4k", |b| {
        b.iter(|| black_box(codec.compress_page(black_box(&page))))
    });
    g.bench_function("decompress-4k", |b| {
        b.iter(|| black_box(codec.decompress_page(black_box(&compressed))))
    });
    g.finish();

    let sw = SoftwareDeflate::new();
    let mut dump = Vec::new();
    for i in 0..8 {
        dump.extend_from_slice(&corpus_page(i));
    }
    let mut g = c.benchmark_group("software-deflate");
    g.throughput(Throughput::Bytes(dump.len() as u64));
    g.sample_size(20);
    g.bench_function("compress-32k", |b| b.iter(|| black_box(sw.compress(black_box(&dump)))));
    g.finish();
}

criterion_group!(benches, bench_block_codecs, bench_deflate);
criterion_main!(benches);
