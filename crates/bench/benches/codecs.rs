//! Criterion wall-clock benchmarks of the functional codecs.
//!
//! These measure this *reproduction's software implementation* — useful
//! for keeping the simulator fast — and are distinct from the modelled
//! ASIC latencies of Table II (`cargo run -p tmcc-bench --bin
//! table2_deflate_perf`).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tmcc_compression::{
    BdiCodec, BestOfCodec, BitReader, BitWriter, BlockCodec, BpcCodec, CpackCodec,
};
use tmcc_deflate::{DeflateScratch, FullHuffman, MemDeflate, ReducedHuffman, SoftwareDeflate};
use tmcc_workloads::WorkloadProfile;

fn corpus_page(i: u64) -> Vec<u8> {
    let w = WorkloadProfile::by_name("pageRank").expect("known workload");
    w.page_content(42).page_bytes(i)
}

fn bench_block_codecs(c: &mut Criterion) {
    let page = corpus_page(0);
    let mut blocks: Vec<[u8; 64]> = Vec::new();
    for ch in page.chunks_exact(64) {
        blocks.push(ch.try_into().expect("64B"));
    }
    let mut g = c.benchmark_group("block-codecs");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("bdi/compress-page", |b| {
        let codec = BdiCodec::new();
        b.iter(|| {
            for blk in &blocks {
                black_box(codec.compressed_size(blk));
            }
        })
    });
    g.bench_function("bpc/compress-page", |b| {
        let codec = BpcCodec::new();
        b.iter(|| {
            for blk in &blocks {
                black_box(codec.compressed_size(blk));
            }
        })
    });
    g.bench_function("cpack/compress-page", |b| {
        let codec = CpackCodec::new();
        b.iter(|| {
            for blk in &blocks {
                black_box(codec.compressed_size(blk));
            }
        })
    });
    g.bench_function("best-of/compress-page", |b| {
        let codec = BestOfCodec::new();
        b.iter(|| {
            for blk in &blocks {
                black_box(codec.compressed_size(blk));
            }
        })
    });
    g.finish();
}

fn bench_deflate(c: &mut Criterion) {
    let page = corpus_page(1);
    let codec = MemDeflate::default();
    let compressed = codec.compress_page(&page);
    let mut g = c.benchmark_group("mem-deflate");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("compress-4k", |b| {
        b.iter(|| black_box(codec.compress_page(black_box(&page))))
    });
    g.bench_function("decompress-4k", |b| {
        b.iter(|| black_box(codec.decompress_page(black_box(&compressed))))
    });
    g.bench_function("compressed-size-4k", |b| {
        // The analytic sizing path ratio sweeps run per page.
        let mut scratch = DeflateScratch::new();
        b.iter(|| black_box(codec.compressed_size_with(black_box(&page), &mut scratch)))
    });
    g.finish();

    let sw = SoftwareDeflate::new();
    let mut dump = Vec::new();
    for i in 0..8 {
        dump.extend_from_slice(&corpus_page(i));
    }
    let mut g = c.benchmark_group("software-deflate");
    g.throughput(Throughput::Bytes(dump.len() as u64));
    g.sample_size(20);
    g.bench_function("compress-32k", |b| b.iter(|| black_box(sw.compress(black_box(&dump)))));
    g.finish();
}

/// The table-driven Huffman decode hot paths in isolation: the reduced
/// 16-leaf tree over a page-sized payload and the full 256-symbol tree
/// over a multi-page LZ stream.
fn bench_huffman_decode(c: &mut Criterion) {
    let page = corpus_page(2);
    let reduced = ReducedHuffman::build(&page, 15);
    let reduced_stream = reduced.encode(&page);
    let (reduced_tree, reduced_payload) = ReducedHuffman::read_tree(&reduced_stream);

    let mut dump = Vec::new();
    for i in 8..12 {
        dump.extend_from_slice(&corpus_page(i));
    }
    let full = FullHuffman::build(&dump);
    let full_stream = full.encode(&dump);

    let mut g = c.benchmark_group("huffman-decode");
    g.throughput(Throughput::Bytes(page.len() as u64));
    g.bench_function("reduced-lut-4k", |b| {
        b.iter(|| black_box(reduced_tree.decode(black_box(reduced_payload), page.len())))
    });
    g.bench_function("reduced-encode-4k", |b| {
        b.iter(|| black_box(reduced.encode(black_box(&page))))
    });
    g.finish();

    let mut g = c.benchmark_group("huffman-decode-full");
    g.throughput(Throughput::Bytes(dump.len() as u64));
    g.bench_function("full-lut-16k", |b| {
        b.iter(|| black_box(FullHuffman::decode(black_box(&full_stream), dump.len())))
    });
    g.finish();
}

/// Raw bit I/O throughput: the word-at-a-time accumulator feeding every
/// bit-packed codec. Mixed 5/11/13-bit fields model Huffman code widths.
fn bench_bit_io(c: &mut Criterion) {
    const FIELDS: usize = 8192;
    let widths = [5u32, 11, 13, 7, 3, 12];
    let mut w = BitWriter::new();
    for i in 0..FIELDS {
        let n = widths[i % widths.len()];
        w.put(i as u64, n);
    }
    let total_bits: usize = w.len_bits();
    let bytes = w.into_bytes();

    let mut g = c.benchmark_group("bit-io");
    g.throughput(Throughput::Bytes((total_bits / 8) as u64));
    g.bench_function("writer-mixed-fields", |b| {
        let mut writer = BitWriter::with_capacity(bytes.len());
        b.iter(|| {
            writer.clear();
            for i in 0..FIELDS {
                let n = widths[i % widths.len()];
                writer.put(i as u64, n);
            }
            black_box(writer.len_bits())
        })
    });
    g.bench_function("reader-get-mixed-fields", |b| {
        b.iter(|| {
            let mut r = BitReader::new(&bytes);
            let mut acc = 0u64;
            for i in 0..FIELDS {
                let n = widths[i % widths.len()];
                acc = acc.wrapping_add(r.get(n));
            }
            black_box(acc)
        })
    });
    g.bench_function("reader-peek-consume", |b| {
        // The LUT decoder's access pattern: wide peek, narrow consume.
        b.iter(|| {
            let mut r = BitReader::new(&bytes);
            let mut acc = 0u64;
            for i in 0..FIELDS {
                let n = widths[i % widths.len()];
                acc = acc.wrapping_add(r.peek(16) >> (16 - n));
                r.consume(n);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_block_codecs, bench_deflate, bench_huffman_decode, bench_bit_io);
criterion_main!(benches);
