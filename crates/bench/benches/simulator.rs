//! Criterion benchmarks of the full-system simulator itself: accesses
//! simulated per second under each scheme. Keeps the experiment binaries'
//! runtime in check as the model grows.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tmcc::{SchemeKind, System, SystemConfig};
use tmcc_workloads::WorkloadProfile;

fn small_cfg(scheme: SchemeKind) -> SystemConfig {
    let mut w = WorkloadProfile::by_name("canneal").expect("known workload");
    w.sim_pages = 4096;
    let mut cfg = SystemConfig::new(w, scheme);
    cfg.warmup_accesses = 2_000;
    cfg
}

fn bench_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("system-steps");
    g.sample_size(10);
    g.throughput(Throughput::Elements(20_000));
    for scheme in [SchemeKind::NoCompression, SchemeKind::Compresso, SchemeKind::Tmcc] {
        g.bench_function(scheme.name(), |b| {
            b.iter_with_setup(
                || System::new(small_cfg(scheme)),
                |mut sys| {
                    let _ = sys.run(20_000);
                },
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
