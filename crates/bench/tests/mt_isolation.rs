//! Acceptance: the `mt_degradation` quick grid — exactly what
//! `tmcc-bench run mt_degradation --quick` executes — demonstrates
//! isolation. Under proportional share with an adversarial neighbor,
//! every well-behaved tenant's achieved capacity stays at or above its
//! floor while the adversary enters *and* exits degraded mode, and the
//! point is deterministic (same bytes on every run, hence at any
//! `--jobs` count).

use tmcc::MultiTenantSystem;
use tmcc_bench::experiments::mt::{degradation_points, MtPoint};
use tmcc_bench::sweep::Scale;

/// The quick grid's adversarial point under proportional share.
fn quick_adversarial_point() -> MtPoint {
    degradation_points(Scale::Quick)
        .into_iter()
        .find(|p| p.scenario == "adversarial" && p.cfg.policy.name() == "proportional-share")
        .expect("the quick grid carries an adversarial proportional-share point")
}

#[test]
fn quick_degradation_point_isolates_the_adversary() {
    let point = quick_adversarial_point();
    let mut sys = MultiTenantSystem::try_new(point.cfg).expect("scenario constructs");
    let report = sys.try_run(point.total).expect("scenario survives");
    sys.validate().expect("invariants clean after the run");

    for t in report.tenants.iter().filter(|t| t.name != "adversary") {
        assert!(
            t.min_alloc_frames >= t.floor_frames,
            "{} squeezed below its floor: {} < {}",
            t.name,
            t.min_alloc_frames,
            t.floor_frames
        );
        assert_eq!(t.degraded_entries, 0, "{} must stay healthy", t.name);
        assert_eq!(t.guarantee_breach_rounds, 0, "{} breached its guarantee", t.name);
    }
    let adv = report.tenants.iter().find(|t| t.name == "adversary").unwrap();
    assert!(adv.degraded_entries >= 1, "adversary never quarantined: {adv:?}");
    assert!(adv.degraded_exits >= 1, "adversary never recovered: {adv:?}");
    assert!(adv.throttled_quanta > 0, "quarantine must throttle: {adv:?}");
}

#[test]
fn quick_degradation_point_is_deterministic() {
    let run = || {
        let point = quick_adversarial_point();
        let mut sys = MultiTenantSystem::try_new(point.cfg).expect("scenario constructs");
        let report = sys.try_run(point.total).expect("scenario survives");
        serde_json::to_string(&report).expect("serializes")
    };
    assert_eq!(run(), run(), "same point must serialize byte-identically");
}
