//! Golden determinism test for the sweep harness: `run-all --jobs 8` and
//! `--jobs 1` must produce byte-identical per-figure JSON for a small-N
//! config of every registered experiment.
//!
//! The suite is simulation-heavy, so the test drives the *release*
//! `tmcc-bench` binary (tier 1 builds it first; a cold tree pays one
//! release build of the bench crate) rather than re-running the sims
//! unoptimized in-process.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    // crates/bench -> crates -> workspace
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("workspace root").to_path_buf()
}

/// Builds (a no-op when tier 1 already did) and locates the release binary.
fn release_binary() -> PathBuf {
    let root = workspace_root();
    let status = Command::new(env!("CARGO"))
        .args(["build", "--release", "-p", "tmcc-bench", "--bin", "tmcc-bench"])
        .current_dir(&root)
        .status()
        .expect("spawn cargo build");
    assert!(status.success(), "release build of tmcc-bench failed");
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("target"));
    let bin = target.join("release").join(format!("tmcc-bench{}", std::env::consts::EXE_SUFFIX));
    assert!(bin.exists(), "built binary not found at {}", bin.display());
    bin
}

fn run_all(bin: &Path, jobs: u32, out: &Path) {
    let status = Command::new(bin)
        .args(["run-all", "--test", "--jobs", &jobs.to_string(), "--out"])
        .arg(out)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("spawn tmcc-bench");
    assert!(status.success(), "tmcc-bench run-all --jobs {jobs} failed");
}

#[test]
fn run_all_is_byte_identical_across_job_counts() {
    let bin = release_binary();
    let tmp = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("golden_determinism");
    let (d1, d8) = (tmp.join("jobs1"), tmp.join("jobs8"));
    for d in [&d1, &d8] {
        let _ = std::fs::remove_dir_all(d);
        std::fs::create_dir_all(d).expect("create out dir");
    }
    run_all(&bin, 1, &d1);
    run_all(&bin, 8, &d8);

    let experiments = tmcc_bench::registry::all();
    assert!(experiments.len() >= 18, "registry lost experiments");
    for e in &experiments {
        let file = format!("{}.json", e.name);
        let a = std::fs::read(d1.join(&file))
            .unwrap_or_else(|_| panic!("{file} missing from jobs=1 run"));
        let b = std::fs::read(d8.join(&file))
            .unwrap_or_else(|_| panic!("{file} missing from jobs=8 run"));
        assert!(!a.is_empty(), "{file} is empty");
        assert_eq!(a, b, "{file} differs between --jobs 1 and --jobs 8");
    }
    // The consolidated summary's wall-clock numbers legitimately differ
    // between runs, but its *simulated-work* accounting must not: the
    // schedulers (sequential outer loop vs. work-stealing pool) must
    // report the same per-experiment access counts in registry order.
    // The vendored serde_json is serialization-only, so the assertions
    // scan its deterministic pretty output instead of parsing a tree.
    let texts: Vec<String> = [&d1, &d8]
        .iter()
        .map(|d| std::fs::read_to_string(d.join("BENCH_sweep.json")).expect("BENCH_sweep.json"))
        .collect();
    for (text, jobs) in texts.iter().zip(["1", "8"]) {
        assert_eq!(field_values(text, "jobs"), vec![jobs], "summary records its --jobs");
        let names = field_values(text, "name");
        assert_eq!(names.len(), experiments.len(), "one timing entry per experiment");
        for (name, e) in names.iter().zip(&experiments) {
            assert_eq!(name, &format!("\"{}\"", e.name), "registry order preserved");
        }
        for v in field_values(text, "accesses_per_sec") {
            assert!(v.parse::<f64>().expect("acc/s is a number") >= 0.0, "negative acc/s: {v}");
        }
    }
    let per_experiment = |text: &str| -> Vec<u64> {
        field_values(text, "accesses_simulated")
            .iter()
            .map(|v| v.parse().expect("accesses count"))
            .collect()
    };
    assert_eq!(
        per_experiment(&texts[0]),
        per_experiment(&texts[1]),
        "per-experiment simulated work differs between --jobs 1 and --jobs 8"
    );
    assert_eq!(
        field_values(&texts[0], "total_accesses_simulated"),
        field_values(&texts[1], "total_accesses_simulated"),
        "total simulated work differs between --jobs 1 and --jobs 8"
    );
}

/// Every raw value of `field` in pretty-printed JSON `text`, in order of
/// appearance: the token between `"field":` and the end of its line,
/// with any trailing comma stripped. Strings keep their quotes.
fn field_values(text: &str, field: &str) -> Vec<String> {
    let needle = format!("\"{field}\":");
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(&needle) {
        let after = &rest[pos + needle.len()..];
        let end = after.find('\n').unwrap_or(after.len());
        out.push(after[..end].trim().trim_end_matches(',').to_string());
        rest = &after[end..];
    }
    out
}

/// Runs a single named experiment and returns the exit code.
fn run_one(
    bin: &Path,
    name: &str,
    jobs: u32,
    out: &Path,
    extra: &[&str],
    envs: &[(&str, &str)],
) -> i32 {
    let mut cmd = Command::new(bin);
    cmd.args(["run", name, "--test", "--jobs", &jobs.to_string(), "--out"])
        .arg(out)
        .args(extra)
        // An outer environment must not flip the scheduling mode under
        // the test: the parallel-quanta path is the subject here.
        .env_remove("TMCC_MT_SERIAL_QUANTA")
        .stdout(std::process::Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.status().expect("spawn tmcc-bench").code().expect("exit code")
}

/// The fleet experiment is the one place intra-point parallelism runs
/// over a four-digit roster: per-tenant reports (histograms, percentile
/// merges, frontier rows) must be byte-identical whether tenant quanta
/// execute on the pool (`--jobs 8`), on one thread (`--jobs 1`), or
/// under the forced serial-quantum baseline — and `--resume` must replay
/// the journaled fleet records instead of re-simulating them.
#[test]
fn mt_fleet_is_byte_identical_across_jobs_and_resume() {
    let bin = release_binary();
    let tmp = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("mt_fleet_jobs");
    let (d1, d8, ds) = (tmp.join("jobs1"), tmp.join("jobs8"), tmp.join("serialq"));
    for d in [&d1, &d8, &ds] {
        let _ = std::fs::remove_dir_all(d);
        std::fs::create_dir_all(d).expect("create out dir");
    }
    assert_eq!(run_one(&bin, "mt_fleet", 1, &d1, &[], &[]), 0, "jobs=1 run failed");
    assert_eq!(run_one(&bin, "mt_fleet", 8, &d8, &[], &[]), 0, "jobs=8 run failed");
    assert_eq!(
        run_one(&bin, "mt_fleet", 8, &ds, &[], &[("TMCC_MT_SERIAL_QUANTA", "1")]),
        0,
        "serial-quantum baseline run failed"
    );

    let j1 = std::fs::read(d1.join("mt_fleet.json")).expect("jobs=1 mt_fleet.json");
    let j8 = std::fs::read(d8.join("mt_fleet.json")).expect("jobs=8 mt_fleet.json");
    let js = std::fs::read(ds.join("mt_fleet.json")).expect("serial-quantum mt_fleet.json");
    assert!(!j1.is_empty(), "mt_fleet.json is empty");
    assert_eq!(j1, j8, "mt_fleet.json differs between --jobs 1 and --jobs 8");
    assert_eq!(j8, js, "parallel quanta diverge from the serial-quantum baseline");

    // Resume replays the journaled fleet records byte-identically. The
    // single-experiment `run` path prints its summary instead of writing
    // BENCH_sweep.json, so the replay proof is read off stdout.
    let output = Command::new(&bin)
        .args(["run", "mt_fleet", "--test", "--jobs", "8", "--resume", "--out"])
        .arg(&d8)
        .env_remove("TMCC_MT_SERIAL_QUANTA")
        .output()
        .expect("spawn tmcc-bench resume");
    assert!(output.status.success(), "resume run failed");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("replayed"),
        "resume run replayed no journaled fleet records:\n{stdout}"
    );
    let after = std::fs::read(d8.join("mt_fleet.json")).expect("resumed mt_fleet.json");
    assert_eq!(j8, after, "resume changed mt_fleet.json bytes");
}
