//! Golden determinism test for the sweep harness: `run-all --jobs 8` and
//! `--jobs 1` must produce byte-identical per-figure JSON for a small-N
//! config of every registered experiment.
//!
//! The suite is simulation-heavy, so the test drives the *release*
//! `tmcc-bench` binary (tier 1 builds it first; a cold tree pays one
//! release build of the bench crate) rather than re-running the sims
//! unoptimized in-process.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    // crates/bench -> crates -> workspace
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("workspace root").to_path_buf()
}

/// Builds (a no-op when tier 1 already did) and locates the release binary.
fn release_binary() -> PathBuf {
    let root = workspace_root();
    let status = Command::new(env!("CARGO"))
        .args(["build", "--release", "-p", "tmcc-bench", "--bin", "tmcc-bench"])
        .current_dir(&root)
        .status()
        .expect("spawn cargo build");
    assert!(status.success(), "release build of tmcc-bench failed");
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("target"));
    let bin = target.join("release").join(format!("tmcc-bench{}", std::env::consts::EXE_SUFFIX));
    assert!(bin.exists(), "built binary not found at {}", bin.display());
    bin
}

fn run_all(bin: &Path, jobs: u32, out: &Path) {
    let status = Command::new(bin)
        .args(["run-all", "--test", "--jobs", &jobs.to_string(), "--out"])
        .arg(out)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("spawn tmcc-bench");
    assert!(status.success(), "tmcc-bench run-all --jobs {jobs} failed");
}

#[test]
fn run_all_is_byte_identical_across_job_counts() {
    let bin = release_binary();
    let tmp = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("golden_determinism");
    let (d1, d8) = (tmp.join("jobs1"), tmp.join("jobs8"));
    for d in [&d1, &d8] {
        let _ = std::fs::remove_dir_all(d);
        std::fs::create_dir_all(d).expect("create out dir");
    }
    run_all(&bin, 1, &d1);
    run_all(&bin, 8, &d8);

    let experiments = tmcc_bench::registry::all();
    assert!(experiments.len() >= 18, "registry lost experiments");
    for e in &experiments {
        let file = format!("{}.json", e.name);
        let a = std::fs::read(d1.join(&file))
            .unwrap_or_else(|_| panic!("{file} missing from jobs=1 run"));
        let b = std::fs::read(d8.join(&file))
            .unwrap_or_else(|_| panic!("{file} missing from jobs=8 run"));
        assert!(!a.is_empty(), "{file} is empty");
        assert_eq!(a, b, "{file} differs between --jobs 1 and --jobs 8");
    }
    // The consolidated summary exists in both runs (its wall-clock numbers
    // legitimately differ, so no byte comparison).
    for d in [&d1, &d8] {
        assert!(d.join("BENCH_sweep.json").exists(), "BENCH_sweep.json missing");
    }
}
