//! Golden determinism test for the sweep harness: `run-all --jobs 8` and
//! `--jobs 1` must produce byte-identical per-figure JSON for a small-N
//! config of every registered experiment.
//!
//! The suite is simulation-heavy, so the test drives the *release*
//! `tmcc-bench` binary (tier 1 builds it first; a cold tree pays one
//! release build of the bench crate) rather than re-running the sims
//! unoptimized in-process.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    // crates/bench -> crates -> workspace
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("workspace root").to_path_buf()
}

/// Builds (a no-op when tier 1 already did) and locates the release binary.
fn release_binary() -> PathBuf {
    let root = workspace_root();
    let status = Command::new(env!("CARGO"))
        .args(["build", "--release", "-p", "tmcc-bench", "--bin", "tmcc-bench"])
        .current_dir(&root)
        .status()
        .expect("spawn cargo build");
    assert!(status.success(), "release build of tmcc-bench failed");
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("target"));
    let bin = target.join("release").join(format!("tmcc-bench{}", std::env::consts::EXE_SUFFIX));
    assert!(bin.exists(), "built binary not found at {}", bin.display());
    bin
}

fn run_all(bin: &Path, jobs: u32, out: &Path) {
    let status = Command::new(bin)
        .args(["run-all", "--test", "--jobs", &jobs.to_string(), "--out"])
        .arg(out)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("spawn tmcc-bench");
    assert!(status.success(), "tmcc-bench run-all --jobs {jobs} failed");
}

#[test]
fn run_all_is_byte_identical_across_job_counts() {
    let bin = release_binary();
    let tmp = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("golden_determinism");
    let (d1, d8) = (tmp.join("jobs1"), tmp.join("jobs8"));
    for d in [&d1, &d8] {
        let _ = std::fs::remove_dir_all(d);
        std::fs::create_dir_all(d).expect("create out dir");
    }
    run_all(&bin, 1, &d1);
    run_all(&bin, 8, &d8);

    let experiments = tmcc_bench::registry::all();
    assert!(experiments.len() >= 18, "registry lost experiments");
    for e in &experiments {
        let file = format!("{}.json", e.name);
        let a = std::fs::read(d1.join(&file))
            .unwrap_or_else(|_| panic!("{file} missing from jobs=1 run"));
        let b = std::fs::read(d8.join(&file))
            .unwrap_or_else(|_| panic!("{file} missing from jobs=8 run"));
        assert!(!a.is_empty(), "{file} is empty");
        assert_eq!(a, b, "{file} differs between --jobs 1 and --jobs 8");
    }
    // The consolidated summary's wall-clock numbers legitimately differ
    // between runs, but its *simulated-work* accounting must not: the
    // schedulers (sequential outer loop vs. work-stealing pool) must
    // report the same per-experiment access counts in registry order.
    // The vendored serde_json is serialization-only, so the assertions
    // scan its deterministic pretty output instead of parsing a tree.
    let texts: Vec<String> = [&d1, &d8]
        .iter()
        .map(|d| std::fs::read_to_string(d.join("BENCH_sweep.json")).expect("BENCH_sweep.json"))
        .collect();
    for (text, jobs) in texts.iter().zip(["1", "8"]) {
        assert_eq!(field_values(text, "jobs"), vec![jobs], "summary records its --jobs");
        let names = field_values(text, "name");
        assert_eq!(names.len(), experiments.len(), "one timing entry per experiment");
        for (name, e) in names.iter().zip(&experiments) {
            assert_eq!(name, &format!("\"{}\"", e.name), "registry order preserved");
        }
        for v in field_values(text, "accesses_per_sec") {
            assert!(v.parse::<f64>().expect("acc/s is a number") >= 0.0, "negative acc/s: {v}");
        }
    }
    let per_experiment = |text: &str| -> Vec<u64> {
        field_values(text, "accesses_simulated")
            .iter()
            .map(|v| v.parse().expect("accesses count"))
            .collect()
    };
    assert_eq!(
        per_experiment(&texts[0]),
        per_experiment(&texts[1]),
        "per-experiment simulated work differs between --jobs 1 and --jobs 8"
    );
    assert_eq!(
        field_values(&texts[0], "total_accesses_simulated"),
        field_values(&texts[1], "total_accesses_simulated"),
        "total simulated work differs between --jobs 1 and --jobs 8"
    );
}

/// Every raw value of `field` in pretty-printed JSON `text`, in order of
/// appearance: the token between `"field":` and the end of its line,
/// with any trailing comma stripped. Strings keep their quotes.
fn field_values(text: &str, field: &str) -> Vec<String> {
    let needle = format!("\"{field}\":");
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(&needle) {
        let after = &rest[pos + needle.len()..];
        let end = after.find('\n').unwrap_or(after.len());
        out.push(after[..end].trim().trim_end_matches(',').to_string());
        rest = &after[end..];
    }
    out
}
