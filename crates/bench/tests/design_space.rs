//! Design-space regression tests: the §V-B trade-offs the paper reports
//! must hold for this implementation of the codec.

use tmcc_deflate::{DeflateParams, MemDeflate};
use tmcc_workloads::WorkloadProfile;

fn corpus() -> Vec<Vec<u8>> {
    let w = WorkloadProfile::by_name("pageRank").expect("known workload");
    let content = w.page_content(0xD5E2);
    (0..48u64).map(|i| content.page_bytes(i)).collect()
}

fn ratio(codec: &MemDeflate, corpus: &[Vec<u8>]) -> f64 {
    let raw: usize = corpus.iter().map(|p| p.len()).sum();
    let comp: usize = corpus.iter().map(|p| codec.compressed_size(p)).sum();
    raw as f64 / comp as f64
}

/// §V-B2: shrinking the CAM from 4 KiB to 1 KiB costs only a little
/// compression ratio, but 256 B costs much more.
#[test]
fn cam_size_trade_off_matches_paper() {
    let corpus = corpus();
    let r4096 = ratio(&MemDeflate::new(DeflateParams::new().cam_bytes(4096)), &corpus);
    let r1024 = ratio(&MemDeflate::new(DeflateParams::new().cam_bytes(1024)), &corpus);
    let r256 = ratio(&MemDeflate::new(DeflateParams::new().cam_bytes(256)), &corpus);
    let loss_1k = 1.0 - r1024 / r4096;
    let loss_256 = 1.0 - r256 / r4096;
    assert!(loss_1k < 0.08, "1 KiB CAM should lose little ratio: {loss_1k:.3}");
    assert!(loss_256 > loss_1k, "256 B CAM must degrade more: {loss_256:.3} vs {loss_1k:.3}");
}

/// §V-B1: dynamic Huffman skipping never hurts and helps on
/// Huffman-hostile pages.
#[test]
fn dynamic_skip_never_hurts() {
    let corpus = corpus();
    let with = ratio(&MemDeflate::new(DeflateParams::new().dynamic_skip(true)), &corpus);
    let without = ratio(&MemDeflate::new(DeflateParams::new().dynamic_skip(false)), &corpus);
    assert!(with >= without * 0.999, "skip {with:.3} vs no-skip {without:.3}");
}

/// §V-B3: 1.1-Pass sampling reduces compression ratio on 4 KiB pages —
/// the reason the paper disables it by default.
#[test]
fn one_one_pass_costs_ratio_on_pages() {
    let corpus = corpus();
    let full = ratio(&MemDeflate::new(DeflateParams::new()), &corpus);
    let sampled = ratio(&MemDeflate::new(DeflateParams::new().one_one_pass(true, 256)), &corpus);
    assert!(
        sampled <= full + 1e-9,
        "sampling frequencies can't beat exact counting: {sampled:.3} vs {full:.3}"
    );
}

/// Deeper trees never compress worse than shallow ones on this corpus.
#[test]
fn depth_threshold_monotone() {
    let corpus = corpus();
    let d6 = ratio(&MemDeflate::new(DeflateParams::new().max_tree_depth(6)), &corpus);
    let d15 = ratio(&MemDeflate::new(DeflateParams::new().max_tree_depth(15)), &corpus);
    assert!(d15 >= d6 * 0.995, "depth 15 {d15:.3} vs depth 6 {d6:.3}");
}
