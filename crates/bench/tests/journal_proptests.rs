//! Property tests for the sweep journal: any set of records survives an
//! append → resume round trip, any mid-file corruption is rejected with a
//! typed error, and any crash-style truncation recovers exactly the
//! records whose appends completed.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use tmcc_bench::journal::{JournalError, JournalMeta, ResumeState, SweepJournal};
use tmcc_bench::sweep::Scale;

const EXPERIMENTS: [&str; 3] = ["fig01", "fig17_perf", "robustness_sweep"];

fn meta() -> JournalMeta {
    JournalMeta { build: "prop-build".into(), scale: Scale::Test, config_hash: 0x1234_5678 }
}

fn fresh_dir(tag: &str, case: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tmcc-journal-prop-{tag}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// (experiment, key, payload) triples with distinct (experiment, key)
/// pairs. Payloads mimic compact JSON: printable, no raw newlines (the
/// emitter escapes control characters, so journaled payloads never
/// contain them).
fn arb_records() -> impl Strategy<Value = Vec<(String, u64, String)>> {
    let payload = prop::collection::vec(0u32..36, 1..12).prop_map(|digits| {
        let s: String =
            digits.iter().map(|&d| char::from_digit(d, 36).expect("base-36 digit")).collect();
        format!("{{\"v\":\"{s}\"}}")
    });
    prop::collection::vec((0usize..EXPERIMENTS.len(), any::<u64>(), payload), 0..12).prop_map(
        |raw| {
            let mut v: Vec<(String, u64, String)> =
                raw.into_iter().map(|(e, k, p)| (EXPERIMENTS[e].to_string(), k, p)).collect();
            v.sort();
            v.dedup_by_key(|(e, k, _)| (e.clone(), *k));
            v
        },
    )
}

/// Writes `records` into a fresh journal and returns its on-disk path.
fn write_journal(dir: &Path, records: &[(String, u64, String)]) -> PathBuf {
    let j = SweepJournal::open_fresh(dir, &meta()).expect("fresh");
    for (experiment, key, payload) in records {
        j.append(experiment, *key, payload);
    }
    j.path().to_path_buf()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn appends_round_trip_through_resume(records in arb_records(), case in any::<u64>()) {
        let dir = fresh_dir("roundtrip", case);
        write_journal(&dir, &records);

        let (j, state) = SweepJournal::open_resume(&dir, &meta()).expect("resume");
        prop_assert_eq!(
            state,
            ResumeState::Resumed { records: records.len(), dropped_tail: false }
        );
        for (experiment, key, payload) in &records {
            prop_assert_eq!(j.lookup(experiment, *key), Some(payload.as_str()));
        }
        prop_assert_eq!(j.lookup("never-ran", 0), None);
        drop(j);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_is_rejected_with_typed_error(
        records in arb_records(),
        victim_sel in any::<u64>(),
        // XOR keeps the byte ASCII (journal lines are ASCII), so the flip
        // exercises record validation rather than UTF-8 decoding (a >=0x80
        // byte is rejected earlier, as an Io error, by read_to_string).
        flip in 1u8..=127,
        case in any::<u64>(),
    ) {
        if records.len() < 2 {
            continue; // need a record line that is not the (tolerated) tail
        }
        let dir = fresh_dir("corrupt", case);
        let path = write_journal(&dir, &records);

        // Pick a byte inside the CRC-covered payload of a record line that
        // is NOT the last line, and flip it. The first 10 bytes of each
        // line ("p " + 8 CRC hex chars) are excluded: the checksum field
        // is not itself checksummed, so a pure case flip there (hex 'a' →
        // 'A') parses to the same u32 and is semantically invisible.
        let bytes = std::fs::read(&path).expect("read journal");
        let header_end = bytes.iter().position(|&b| b == b'\n').expect("header") + 1;
        let last_line_start = bytes[..bytes.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .expect("records exist") + 1;
        let mut candidates = Vec::new();
        let mut line_start = header_end;
        for (i, &b) in bytes.iter().enumerate().take(last_line_start).skip(header_end) {
            if b == b'\n' {
                candidates.extend(line_start + 10..i);
                line_start = i + 1;
            }
        }
        let pos = candidates[victim_sel as usize % candidates.len()];
        let mut mangled = bytes;
        mangled[pos] ^= flip;
        // The flip may produce '\n' (splitting a line) or another byte
        // (breaking the CRC); both must surface as typed errors.
        std::fs::write(&path, &mangled).expect("write corrupted");

        match SweepJournal::open_resume(&dir, &meta()) {
            Err(JournalError::CorruptRecord { .. })
            | Err(JournalError::TruncatedRecord { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error variant: {other:?}"),
            Ok((_, state)) => prop_assert!(false, "corruption accepted: {state:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_truncation_recovers_the_completed_prefix(
        records in arb_records(),
        cut_sel in any::<u64>(),
        case in any::<u64>(),
    ) {
        let dir = fresh_dir("truncate", case);
        let path = write_journal(&dir, &records);

        // Truncate anywhere after the header, as a crash mid-append would.
        let bytes = std::fs::read(&path).expect("read journal");
        let header_end = bytes.iter().position(|&b| b == b'\n').expect("header") + 1;
        let cut = header_end + (cut_sel as usize % (bytes.len() - header_end + 1));
        std::fs::write(&path, &bytes[..cut]).expect("truncate");

        let (j, state) = SweepJournal::open_resume(&dir, &meta()).expect("crash recovery");
        // Exactly the records whose trailing newline survived are kept.
        let complete = bytes[header_end..cut].iter().filter(|&&b| b == b'\n').count();
        prop_assert_eq!(j.loaded_points(), complete);
        let expect_tail = cut != header_end && bytes[cut - 1] != b'\n';
        prop_assert_eq!(
            state,
            ResumeState::Resumed { records: complete, dropped_tail: expect_tail }
        );
        let mut found = 0;
        for (experiment, key, payload) in &records {
            if let Some(stored) = j.lookup(experiment, *key) {
                prop_assert_eq!(stored, payload.as_str());
                found += 1;
            }
        }
        prop_assert_eq!(found, complete);
        drop(j);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
