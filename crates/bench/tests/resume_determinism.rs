//! Crash-safety integration tests for the sweep harness: a run killed
//! mid-sweep and resumed with `--resume` must emit byte-identical results,
//! and a persistently failing point must be retried, quarantined into
//! `FAILURES.json`, and must not poison the rest of the fleet.
//!
//! Like `golden_determinism`, these drive the *release* binary — the
//! suite is simulation-heavy and tier 1 has already paid for the build.

use std::path::{Path, PathBuf};
use std::process::Command;
use tmcc_bench::failures::{FAILURES_FILE, FAIL_POINT_ENV};
use tmcc_bench::journal::{EXIT_AFTER_POINTS_CODE, EXIT_AFTER_POINTS_ENV};

fn workspace_root() -> PathBuf {
    // crates/bench -> crates -> workspace
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("workspace root").to_path_buf()
}

/// Builds (a no-op when tier 1 already did) and locates the release binary.
fn release_binary() -> PathBuf {
    let root = workspace_root();
    let status = Command::new(env!("CARGO"))
        .args(["build", "--release", "-p", "tmcc-bench", "--bin", "tmcc-bench"])
        .current_dir(&root)
        .status()
        .expect("spawn cargo build");
    assert!(status.success(), "release build of tmcc-bench failed");
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("target"));
    let bin = target.join("release").join(format!("tmcc-bench{}", std::env::consts::EXE_SUFFIX));
    assert!(bin.exists(), "built binary not found at {}", bin.display());
    bin
}

/// Runs `run-all --test` into `out` with the crash/failure hooks in
/// `envs`, returning the exit code. The hook variables are cleared first
/// so an outer CI environment can't leak into the baseline runs.
fn run_all(bin: &Path, out: &Path, extra_args: &[&str], envs: &[(&str, &str)]) -> i32 {
    let mut cmd = Command::new(bin);
    cmd.args(["run-all", "--test", "--jobs", "2", "--out"])
        .arg(out)
        .args(extra_args)
        .env_remove(EXIT_AFTER_POINTS_ENV)
        .env_remove(FAIL_POINT_ENV)
        .stdout(std::process::Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.status().expect("spawn tmcc-bench").code().expect("exit code")
}

fn fresh_dir(tmp: &Path, name: &str) -> PathBuf {
    let dir = tmp.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create out dir");
    dir
}

fn read_result(dir: &Path, file: &str) -> Vec<u8> {
    std::fs::read(dir.join(file)).unwrap_or_else(|_| panic!("{file} missing in {dir:?}"))
}

/// Every raw value of `field` in pretty-printed JSON `text` (see
/// `golden_determinism` for the format contract).
fn field_values(text: &str, field: &str) -> Vec<String> {
    let needle = format!("\"{field}\":");
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(&needle) {
        let after = &rest[pos + needle.len()..];
        let end = after.find('\n').unwrap_or(after.len());
        out.push(after[..end].trim().trim_end_matches(',').to_string());
        rest = &after[end..];
    }
    out
}

#[test]
fn killed_run_resumes_byte_identically() {
    let bin = release_binary();
    let tmp = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("resume_determinism");
    let baseline = fresh_dir(&tmp, "baseline");
    let resumed = fresh_dir(&tmp, "resumed");

    assert_eq!(run_all(&bin, &baseline, &[], &[]), 0, "baseline run failed");

    // Crash the harness after 25 journaled points, then resume.
    let code = run_all(&bin, &resumed, &[], &[(EXIT_AFTER_POINTS_ENV, "25")]);
    assert_eq!(code, EXIT_AFTER_POINTS_CODE, "crash hook must exit with the sentinel code");
    assert!(
        resumed.join(".journal").join("sweep.journal").exists()
            || std::fs::read_dir(resumed.join(".journal")).map(|d| d.count() > 0).unwrap_or(false),
        "killed run left no journal behind"
    );
    assert_eq!(run_all(&bin, &resumed, &["--resume"], &[]), 0, "resume run failed");

    // Every per-experiment result must match the uninterrupted run.
    let experiments = tmcc_bench::registry::all();
    assert!(experiments.len() >= 18, "registry lost experiments");
    for e in &experiments {
        let file = format!("{}.json", e.name);
        assert_eq!(
            read_result(&baseline, &file),
            read_result(&resumed, &file),
            "{file} differs between uninterrupted and killed+resumed runs"
        );
    }

    // The resume must actually have replayed journaled points rather than
    // recomputing everything from scratch.
    let sweep = std::fs::read_to_string(resumed.join("BENCH_sweep.json")).expect("sweep summary");
    let replayed: u64 = field_values(&sweep, "points_replayed")
        .iter()
        .map(|v| v.parse::<u64>().expect("points_replayed is a count"))
        .sum();
    assert!(replayed > 0, "resume run replayed no journaled points");
    assert!(!resumed.join(FAILURES_FILE).exists(), "clean resume must not leave a FAILURES.json");
}

#[test]
fn failing_point_is_quarantined_without_poisoning_the_fleet() {
    let bin = release_binary();
    let tmp = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("quarantine");
    let baseline = fresh_dir(&tmp, "baseline");
    let poisoned = fresh_dir(&tmp, "poisoned");

    assert_eq!(run_all(&bin, &baseline, &[], &[]), 0, "baseline run failed");

    // One point of one experiment fails on every attempt: the experiment
    // must be quarantined and the exit code must flag it.
    let victim = "fig16_mem_characterization";
    let code = run_all(&bin, &poisoned, &[], &[(FAIL_POINT_ENV, &format!("{victim}:1"))]);
    assert_eq!(code, 1, "quarantined points must surface as a non-zero exit");

    // The quarantine record names the point and counts 1 + 2 retries.
    let failures =
        std::fs::read_to_string(poisoned.join(FAILURES_FILE)).expect("FAILURES.json written");
    assert!(failures.contains(&format!("\"{victim}\"")), "failure names the experiment");
    assert_eq!(field_values(&failures, "index"), vec!["1"], "failure names the point index");
    assert_eq!(field_values(&failures, "attempts"), vec!["3"], "1 initial + 2 default retries");
    assert_eq!(field_values(&failures, "kind"), vec!["\"panic\""], "injected failure is a panic");

    // The victim publishes no result; every other experiment is
    // byte-identical to the clean baseline.
    assert!(
        !poisoned.join(format!("{victim}.json")).exists(),
        "quarantined experiment must not publish results"
    );
    let mut others = 0;
    for e in &tmcc_bench::registry::all() {
        if e.name == victim {
            continue;
        }
        let file = format!("{}.json", e.name);
        assert_eq!(
            read_result(&baseline, &file),
            read_result(&poisoned, &file),
            "{file} poisoned by an unrelated experiment's failing point"
        );
        others += 1;
    }
    assert!(others >= 17, "expected the rest of the fleet to complete");
}
