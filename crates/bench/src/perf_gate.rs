//! CI performance-regression gate: diffs the per-experiment `acc/s`
//! throughput of two `BENCH_sweep.json` summaries (a checked-in baseline
//! vs the current quick sweep) and fails when any shared experiment
//! regressed beyond the tolerance.
//!
//! Only experiments that completed (`status == "ok"`) in *both* sweeps
//! are compared; experiments present on one side only are listed as
//! skipped, never silently dropped. Speedups always pass — the gate is
//! one-sided.
//!
//! The gate also compares the sweeps' `peak_rss_kb` (peak host RSS over
//! the whole suite), one-sided the other way: using *less* memory always
//! passes, growing beyond the RSS tolerance fails. Summaries written
//! before the field existed are skipped, not failed.

use serde::Value;

/// Default regression tolerance, percent.
pub const DEFAULT_TOLERANCE_PCT: f64 = 15.0;

/// Default one-sided peak-RSS growth tolerance, percent. Wider than the
/// throughput tolerance: RSS depends on allocator behaviour and worker
/// scheduling, and the gate exists to catch metadata-footprint blowups
/// (2x-class), not page-level noise.
pub const DEFAULT_RSS_TOLERANCE_PCT: f64 = 25.0;

/// One compared experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Registry name.
    pub name: String,
    /// Baseline throughput, accesses/second.
    pub baseline_aps: f64,
    /// Current throughput, accesses/second.
    pub current_aps: f64,
    /// Relative change, percent (negative = slower than baseline).
    pub delta_pct: f64,
    /// Whether the slowdown exceeds the tolerance.
    pub regressed: bool,
}

/// The compared peak-RSS of two sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RssGate {
    /// Baseline peak RSS, kB.
    pub baseline_kb: u64,
    /// Current peak RSS, kB.
    pub current_kb: u64,
    /// Relative change, percent (positive = more memory than baseline).
    pub delta_pct: f64,
    /// Whether the growth exceeds the RSS tolerance.
    pub regressed: bool,
}

/// The gate's verdict over two sweep summaries.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Experiments compared, in baseline order.
    pub rows: Vec<GateRow>,
    /// Peak-RSS comparison; `None` when either summary predates the
    /// `peak_rss_kb` field (reported under `skipped`).
    pub rss: Option<RssGate>,
    /// Experiments skipped (missing or not `ok` on one side), with the
    /// reason.
    pub skipped: Vec<String>,
}

impl GateOutcome {
    /// Names of the experiments that regressed beyond tolerance.
    pub fn regressions(&self) -> Vec<&str> {
        self.rows.iter().filter(|r| r.regressed).map(|r| r.name.as_str()).collect()
    }

    /// Whether the gate fails overall (throughput or RSS).
    pub fn failed(&self) -> bool {
        !self.regressions().is_empty() || self.rss.is_some_and(|r| r.regressed)
    }
}

/// The top-level `peak_rss_kb` of one sweep summary, if recorded with a
/// meaningful (non-zero) value.
fn peak_rss_kb(json: &str, label: &str) -> Result<Option<u64>, String> {
    let value = serde_json::from_str(json).map_err(|e| format!("{label}: unparsable: {e}"))?;
    let parsed: Value = value;
    Ok(parsed.get("peak_rss_kb").and_then(Value::as_u64).filter(|&kb| kb > 0))
}

/// Per-experiment `(name, status, accesses_per_sec)` out of one
/// `BENCH_sweep.json` text.
fn experiments(json: &str, label: &str) -> Result<Vec<(String, String, f64)>, String> {
    let value = serde_json::from_str(json).map_err(|e| format!("{label}: unparsable: {e}"))?;
    let entries = value
        .get("experiments")
        .and_then(Value::as_seq)
        .ok_or_else(|| format!("{label}: no `experiments` array"))?;
    let mut out = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{label}: experiment #{i} has no name"))?;
        let status = e.get("status").and_then(Value::as_str).unwrap_or("unknown");
        let aps = e
            .get("accesses_per_sec")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{label}: {name} has no accesses_per_sec"))?;
        out.push((name.to_string(), status.to_string(), aps));
    }
    Ok(out)
}

/// Compares two sweep summaries: per-experiment throughput under
/// `tolerance_pct`, whole-sweep peak RSS under `rss_tolerance_pct`.
pub fn evaluate(
    baseline_json: &str,
    current_json: &str,
    tolerance_pct: f64,
    rss_tolerance_pct: f64,
) -> Result<GateOutcome, String> {
    let baseline = experiments(baseline_json, "baseline")?;
    let current = experiments(current_json, "current")?;
    let mut outcome = GateOutcome::default();
    match (peak_rss_kb(baseline_json, "baseline")?, peak_rss_kb(current_json, "current")?) {
        (Some(baseline_kb), Some(current_kb)) => {
            let delta_pct = (current_kb as f64 - baseline_kb as f64) / baseline_kb as f64 * 100.0;
            outcome.rss = Some(RssGate {
                baseline_kb,
                current_kb,
                delta_pct,
                regressed: current_kb as f64
                    > baseline_kb as f64 * (1.0 + rss_tolerance_pct / 100.0),
            });
        }
        (missing_baseline, _) => {
            let side = if missing_baseline.is_none() { "baseline" } else { "current" };
            outcome.skipped.push(format!("peak_rss_kb: missing from {side} (pre-RSS sweep?)"));
        }
    }
    for (name, status, baseline_aps) in &baseline {
        if status != "ok" {
            outcome.skipped.push(format!("{name}: baseline status {status}"));
            continue;
        }
        let Some((_, cur_status, current_aps)) = current.iter().find(|(n, _, _)| n == name) else {
            outcome.skipped.push(format!("{name}: missing from current sweep"));
            continue;
        };
        if cur_status != "ok" {
            outcome.skipped.push(format!("{name}: current status {cur_status}"));
            continue;
        }
        let delta_pct = if *baseline_aps > 0.0 {
            (current_aps - baseline_aps) / baseline_aps * 100.0
        } else {
            0.0
        };
        outcome.rows.push(GateRow {
            name: name.clone(),
            baseline_aps: *baseline_aps,
            current_aps: *current_aps,
            delta_pct,
            regressed: *current_aps < baseline_aps * (1.0 - tolerance_pct / 100.0),
        });
    }
    for (name, _, _) in &current {
        if !baseline.iter().any(|(n, _, _)| n == name) {
            outcome.skipped.push(format!("{name}: missing from baseline (new experiment?)"));
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(entries: &[(&str, &str, f64)]) -> String {
        sweep_with_rss(entries, 0)
    }

    fn sweep_with_rss(entries: &[(&str, &str, f64)], peak_rss_kb: u64) -> String {
        let rows: Vec<String> = entries
            .iter()
            .map(|(name, status, aps)| {
                format!(
                    "{{\"name\":\"{name}\",\"status\":\"{status}\",\"accesses_per_sec\":{aps}}}"
                )
            })
            .collect();
        format!("{{\"peak_rss_kb\":{peak_rss_kb},\"experiments\":[{}]}}", rows.join(","))
    }

    #[test]
    fn within_tolerance_passes_and_regression_fails() {
        let baseline = sweep(&[("fig01", "ok", 1000.0), ("fig02", "ok", 2000.0)]);
        let current = sweep(&[("fig01", "ok", 900.0), ("fig02", "ok", 1500.0)]);
        let outcome =
            evaluate(&baseline, &current, 15.0, DEFAULT_RSS_TOLERANCE_PCT).expect("evaluates");
        assert_eq!(outcome.rows.len(), 2);
        assert!(!outcome.rows[0].regressed, "-10% is within a 15% tolerance");
        assert!(outcome.rows[1].regressed, "-25% must trip the gate");
        assert_eq!(outcome.regressions(), vec!["fig02"]);
        assert!(outcome.failed());
    }

    #[test]
    fn speedups_and_exact_boundary_pass() {
        let baseline = sweep(&[("a", "ok", 1000.0), ("b", "ok", 1000.0)]);
        let current = sweep(&[("a", "ok", 5000.0), ("b", "ok", 850.0)]);
        let outcome =
            evaluate(&baseline, &current, 15.0, DEFAULT_RSS_TOLERANCE_PCT).expect("evaluates");
        assert!(outcome.regressions().is_empty(), "exactly -15% is tolerated");
        assert!(!outcome.failed());
    }

    #[test]
    fn non_ok_and_missing_experiments_are_skipped_not_failed() {
        let baseline = sweep(&[("a", "ok", 1000.0), ("b", "failed", 10.0), ("c", "ok", 500.0)]);
        let current = sweep(&[("a", "failed", 1.0), ("c", "ok", 490.0), ("d", "ok", 100.0)]);
        let outcome =
            evaluate(&baseline, &current, 15.0, DEFAULT_RSS_TOLERANCE_PCT).expect("evaluates");
        assert_eq!(outcome.rows.len(), 1, "only c is comparable");
        assert!(outcome.regressions().is_empty());
        let perf_skips = outcome.skipped.iter().filter(|s| !s.starts_with("peak_rss_kb")).count();
        assert_eq!(perf_skips, 3, "a, b and d all reported: {:?}", outcome.skipped);
    }

    #[test]
    fn garbage_input_is_a_typed_error() {
        assert!(evaluate("not json", "{}", 15.0, 25.0).is_err());
        assert!(evaluate("{\"experiments\":[]}", "{}", 15.0, 25.0).is_err());
    }

    #[test]
    fn rss_growth_beyond_tolerance_fails_and_shrink_passes() {
        let entries = [("a", "ok", 1000.0)];
        let baseline = sweep_with_rss(&entries, 1_000_000);
        let grown = sweep_with_rss(&entries, 1_300_000);
        let outcome = evaluate(&baseline, &grown, 15.0, 25.0).expect("evaluates");
        let rss = outcome.rss.expect("both sides carry peak_rss_kb");
        assert!(rss.regressed, "+30% must trip a 25% RSS gate");
        assert!(outcome.failed());
        assert!(outcome.regressions().is_empty(), "throughput alone is clean");

        let shrunk = sweep_with_rss(&entries, 200_000);
        let outcome = evaluate(&baseline, &shrunk, 15.0, 25.0).expect("evaluates");
        assert!(!outcome.rss.expect("compared").regressed, "using less memory always passes");
        assert!(!outcome.failed());

        let boundary = sweep_with_rss(&entries, 1_250_000);
        let outcome = evaluate(&baseline, &boundary, 15.0, 25.0).expect("evaluates");
        assert!(!outcome.rss.expect("compared").regressed, "exactly +25% is tolerated");
    }

    #[test]
    fn missing_rss_field_is_skipped_not_failed() {
        let entries = [("a", "ok", 1000.0)];
        let pre_rss = sweep(&entries);
        let with_rss = sweep_with_rss(&entries, 500_000);
        let outcome = evaluate(&pre_rss, &with_rss, 15.0, 25.0).expect("evaluates");
        assert!(outcome.rss.is_none());
        assert!(!outcome.failed());
        assert!(
            outcome.skipped.iter().any(|s| s.contains("peak_rss_kb") && s.contains("baseline")),
            "skip reason names the missing side: {:?}",
            outcome.skipped
        );
    }
}
