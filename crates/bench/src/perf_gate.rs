//! CI performance-regression gate: diffs the per-experiment `acc/s`
//! throughput of two `BENCH_sweep.json` summaries (a checked-in baseline
//! vs the current quick sweep) and fails when any shared experiment
//! regressed beyond the tolerance.
//!
//! Only experiments that completed (`status == "ok"`) in *both* sweeps
//! are compared; experiments present on one side only are listed as
//! skipped, never silently dropped. Speedups always pass — the gate is
//! one-sided.

use serde::Value;

/// Default regression tolerance, percent.
pub const DEFAULT_TOLERANCE_PCT: f64 = 15.0;

/// One compared experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Registry name.
    pub name: String,
    /// Baseline throughput, accesses/second.
    pub baseline_aps: f64,
    /// Current throughput, accesses/second.
    pub current_aps: f64,
    /// Relative change, percent (negative = slower than baseline).
    pub delta_pct: f64,
    /// Whether the slowdown exceeds the tolerance.
    pub regressed: bool,
}

/// The gate's verdict over two sweep summaries.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Experiments compared, in baseline order.
    pub rows: Vec<GateRow>,
    /// Experiments skipped (missing or not `ok` on one side), with the
    /// reason.
    pub skipped: Vec<String>,
}

impl GateOutcome {
    /// Names of the experiments that regressed beyond tolerance.
    pub fn regressions(&self) -> Vec<&str> {
        self.rows.iter().filter(|r| r.regressed).map(|r| r.name.as_str()).collect()
    }
}

/// Per-experiment `(name, status, accesses_per_sec)` out of one
/// `BENCH_sweep.json` text.
fn experiments(json: &str, label: &str) -> Result<Vec<(String, String, f64)>, String> {
    let value = serde_json::from_str(json).map_err(|e| format!("{label}: unparsable: {e}"))?;
    let entries = value
        .get("experiments")
        .and_then(Value::as_seq)
        .ok_or_else(|| format!("{label}: no `experiments` array"))?;
    let mut out = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{label}: experiment #{i} has no name"))?;
        let status = e.get("status").and_then(Value::as_str).unwrap_or("unknown");
        let aps = e
            .get("accesses_per_sec")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{label}: {name} has no accesses_per_sec"))?;
        out.push((name.to_string(), status.to_string(), aps));
    }
    Ok(out)
}

/// Compares two sweep summaries under `tolerance_pct`.
pub fn evaluate(
    baseline_json: &str,
    current_json: &str,
    tolerance_pct: f64,
) -> Result<GateOutcome, String> {
    let baseline = experiments(baseline_json, "baseline")?;
    let current = experiments(current_json, "current")?;
    let mut outcome = GateOutcome::default();
    for (name, status, baseline_aps) in &baseline {
        if status != "ok" {
            outcome.skipped.push(format!("{name}: baseline status {status}"));
            continue;
        }
        let Some((_, cur_status, current_aps)) = current.iter().find(|(n, _, _)| n == name) else {
            outcome.skipped.push(format!("{name}: missing from current sweep"));
            continue;
        };
        if cur_status != "ok" {
            outcome.skipped.push(format!("{name}: current status {cur_status}"));
            continue;
        }
        let delta_pct = if *baseline_aps > 0.0 {
            (current_aps - baseline_aps) / baseline_aps * 100.0
        } else {
            0.0
        };
        outcome.rows.push(GateRow {
            name: name.clone(),
            baseline_aps: *baseline_aps,
            current_aps: *current_aps,
            delta_pct,
            regressed: *current_aps < baseline_aps * (1.0 - tolerance_pct / 100.0),
        });
    }
    for (name, _, _) in &current {
        if !baseline.iter().any(|(n, _, _)| n == name) {
            outcome.skipped.push(format!("{name}: missing from baseline (new experiment?)"));
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(entries: &[(&str, &str, f64)]) -> String {
        let rows: Vec<String> = entries
            .iter()
            .map(|(name, status, aps)| {
                format!(
                    "{{\"name\":\"{name}\",\"status\":\"{status}\",\"accesses_per_sec\":{aps}}}"
                )
            })
            .collect();
        format!("{{\"experiments\":[{}]}}", rows.join(","))
    }

    #[test]
    fn within_tolerance_passes_and_regression_fails() {
        let baseline = sweep(&[("fig01", "ok", 1000.0), ("fig02", "ok", 2000.0)]);
        let current = sweep(&[("fig01", "ok", 900.0), ("fig02", "ok", 1500.0)]);
        let outcome = evaluate(&baseline, &current, 15.0).expect("evaluates");
        assert_eq!(outcome.rows.len(), 2);
        assert!(!outcome.rows[0].regressed, "-10% is within a 15% tolerance");
        assert!(outcome.rows[1].regressed, "-25% must trip the gate");
        assert_eq!(outcome.regressions(), vec!["fig02"]);
    }

    #[test]
    fn speedups_and_exact_boundary_pass() {
        let baseline = sweep(&[("a", "ok", 1000.0), ("b", "ok", 1000.0)]);
        let current = sweep(&[("a", "ok", 5000.0), ("b", "ok", 850.0)]);
        let outcome = evaluate(&baseline, &current, 15.0).expect("evaluates");
        assert!(outcome.regressions().is_empty(), "exactly -15% is tolerated");
    }

    #[test]
    fn non_ok_and_missing_experiments_are_skipped_not_failed() {
        let baseline = sweep(&[("a", "ok", 1000.0), ("b", "failed", 10.0), ("c", "ok", 500.0)]);
        let current = sweep(&[("a", "failed", 1.0), ("c", "ok", 490.0), ("d", "ok", 100.0)]);
        let outcome = evaluate(&baseline, &current, 15.0).expect("evaluates");
        assert_eq!(outcome.rows.len(), 1, "only c is comparable");
        assert!(outcome.regressions().is_empty());
        assert_eq!(outcome.skipped.len(), 3, "a, b and d all reported: {:?}", outcome.skipped);
    }

    #[test]
    fn garbage_input_is_a_typed_error() {
        assert!(evaluate("not json", "{}", 15.0).is_err());
        assert!(evaluate("{\"experiments\":[]}", "{}", 15.0).is_err());
    }
}
