//! Figure 2: CTE hits per LLC miss with a 4× (256 KiB) block-level CTE
//! cache, and with the LLC additionally used as a victim cache for CTEs.
//!
//! Paper result: the 4× metadata cache still only reaches ~70.5 % hit
//! rate; adding the LLC as a victim cache leaves 21 % of CTE accesses
//! going to DRAM, and hit-in-LLC vs miss-in-LLC are roughly equal — which
//! is why the paper does *not* cache CTEs in the LLC.

use crate::sweep::SweepCtx;
use crate::{mean, print_table};
use serde::Serialize;
use tmcc::{SchemeKind, SystemConfig};
use tmcc_sim_mem::CteCacheConfig;
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    /// Hits in the 4x CTE cache, per CTE access.
    hit_in_cte_cache: f64,
    /// Extra hits provided by an LLC-sized victim store.
    hit_in_llc_victim: f64,
    /// CTE accesses that still go to DRAM.
    miss_everywhere: f64,
}

fn hit_rate_with(ctx: &SweepCtx, workload: &WorkloadProfile, cache: CteCacheConfig) -> f64 {
    let mut cfg = SystemConfig::new(workload.clone(), SchemeKind::Compresso);
    cfg.cte_cache = cache;
    ctx.run(cfg, ctx.accesses()).stats.cte_hit_rate()
}

pub fn run(ctx: &SweepCtx) {
    let out: Vec<Row> = ctx.par_map(WorkloadProfile::large_suite(), |w| {
        // 4x metadata cache (256 KiB, block-level).
        let h_cache = hit_rate_with(ctx, &w, CteCacheConfig::compresso_4x());
        // Victim path: model the LLC as an additional 8 MiB of CTE
        // residency behind the 256 KiB cache.
        let h_total = hit_rate_with(
            ctx,
            &w,
            CteCacheConfig {
                // 8 MiB of LLC acting as the victim store (the dedicated
                // 256 KiB cache is inside this reach).
                size_bytes: 8 * 1024 * 1024,
                pages_per_line: 1,
                ways: 16,
            },
        );
        Row {
            workload: w.name,
            hit_in_cte_cache: h_cache,
            hit_in_llc_victim: (h_total - h_cache).max(0.0),
            miss_everywhere: (1.0 - h_total).max(0.0),
        }
    });
    let mut rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![
                row.workload.to_string(),
                format!("{:.1}%", row.hit_in_cte_cache * 100.0),
                format!("{:.1}%", row.hit_in_llc_victim * 100.0),
                format!("{:.1}%", row.miss_everywhere * 100.0),
            ]
        })
        .collect();
    let avg_cache = mean(&out.iter().map(|r| r.hit_in_cte_cache).collect::<Vec<_>>());
    let avg_llc = mean(&out.iter().map(|r| r.hit_in_llc_victim).collect::<Vec<_>>());
    let avg_miss = mean(&out.iter().map(|r| r.miss_everywhere).collect::<Vec<_>>());
    rows.push(vec![
        "AVERAGE".into(),
        format!("{:.1}%", avg_cache * 100.0),
        format!("{:.1}%", avg_llc * 100.0),
        format!("{:.1}%", avg_miss * 100.0),
    ]);
    print_table(
        "Fig. 2 — CTE hits under a 4x CTE cache + LLC victim caching",
        &["workload", "hit in 4x CTE$", "hit in LLC", "miss (to DRAM)"],
        &rows,
    );
    println!(
        "\nPaper: 4x cache hits 70.5%; 21% of CTE accesses still reach DRAM even with\n\
         LLC victim caching; LLC hits and misses are comparable, so caching CTEs in\n\
         the LLC is not worthwhile.\n\
         Measured: 4x {:.1}%, +LLC {:.1}%, to-DRAM {:.1}%",
        avg_cache * 100.0,
        avg_llc * 100.0,
        avg_miss * 100.0
    );
    ctx.emit("fig02_cte_hit_rates", &out);
}
