//! `integrity_storm` — bit-flip rate vs. detection coverage, SDC escape
//! rate, and recovery latency overhead.
//!
//! Each point runs the pressured canneal/TMCC configuration of the
//! robustness sweep under a deterministic [`BitFlipPlan`] storm: seeded
//! single/burst/row-hammer upsets cycling over every target (ML2
//! payloads, raw ML1 data, CTE directory slots, the free map), injected
//! inside the measured window. The detect/recover/poison ladder runs end
//! to end — real codec, real CRC seal, real parity scrub — and the row
//! reports both sides of the coverage story: what the tags caught and
//! repaired, and what escaped as silent data corruption (uncovered ML1
//! data, even-weight parity-blind bursts).
//!
//! The quiet point (zero flips) doubles as the golden-stability control:
//! an empty plan draws nothing from the flip RNG, so its row must stay
//! byte-identical to pre-integrity baselines. The sweep is journal-
//! resumable (`int|` keys) and byte-identical at any `--jobs`.

use crate::print_table;
use crate::sweep::{Scale, SweepCtx};
use serde::Serialize;
use tmcc::{BitFlipPlan, SchemeKind, System, SystemConfig};
use tmcc_workloads::WorkloadProfile;

/// Storm intensities: planned flip events inside the measured window.
pub fn grid_events(scale: Scale) -> Vec<(&'static str, u64)> {
    match scale {
        Scale::Full => vec![("quiet", 0), ("drizzle", 12), ("storm", 48), ("hammer", 144)],
        Scale::Quick => vec![("quiet", 0), ("drizzle", 12), ("storm", 48)],
        Scale::Test => vec![("quiet", 0), ("storm", 12)],
    }
}

/// The robustness sweep's pressured configuration: canneal under a budget
/// halfway between the feasibility floor and the uncompressed footprint,
/// so both ML1 and ML2 hold substantial state for the flips to land in.
fn pressured_cfg() -> SystemConfig {
    let mut w = WorkloadProfile::by_name("canneal").expect("known workload");
    w.sim_pages = 4_096;
    let cfg = SystemConfig::new(w, SchemeKind::Tmcc);
    let min = System::min_budget_bytes(&cfg);
    let budget = min + (cfg.footprint_bytes().saturating_sub(min)) / 2;
    cfg.with_budget(budget)
}

/// Measured window at `scale`: 2/5 of the standard run, matching the
/// robustness sweep so the two families stay comparable.
fn window(scale: Scale) -> (u64, u64) {
    let measured = scale.accesses() * 2 / 5;
    let warmup = scale.warmup().unwrap_or_else(|| pressured_cfg().warmup_accesses);
    (warmup, measured)
}

/// One storm point: `events` flips spread over the middle 3/4 of the
/// measured window, cycling the full target × shape matrix.
fn point_cfg(scale: Scale, events: u64) -> SystemConfig {
    let (warmup, measured) = window(scale);
    let plan = match (measured * 3 / 4).checked_div(events) {
        None => BitFlipPlan::none(),
        Some(period) => BitFlipPlan::storm(warmup + measured / 8, period.max(1), events),
    };
    pressured_cfg().with_flip_plan(plan).with_audit()
}

/// Fingerprint input covering the storm grid at `scale` — folded into
/// the sweep journal's config hash so grid changes invalidate a stale
/// `--resume` journal.
pub fn grid_signature(scale: Scale) -> String {
    let (_, measured) = window(scale);
    grid_events(scale)
        .into_iter()
        .map(|(_, events)| format!("integrity_storm|{:?}|{measured};", point_cfg(scale, events)))
        .collect()
}

#[derive(Serialize)]
struct Row {
    rate: &'static str,
    flips_planned: u64,
    completed: bool,
    error: Option<String>,
    flips_injected: u64,
    corruptions_detected: u64,
    corruptions_corrected: u64,
    corruptions_uncorrectable: u64,
    sdc_escapes: u64,
    metadata_corruptions_detected: u64,
    frames_poisoned: u64,
    detection_coverage: f64,
    sdc_escape_rate: f64,
    recovery_rate: f64,
    recovery_ns: f64,
    /// Recovery time as a share of the measured window's simulated time —
    /// the latency overhead the ladder charged for detection + repair.
    recovery_overhead_pct: f64,
    perf_accesses_per_us: f64,
}

pub fn run(ctx: &SweepCtx) {
    let scale = ctx.scale();
    let (_, measured) = window(scale);
    let out: Vec<Row> = ctx.par_map(grid_events(scale), |(rate, events)| {
        let cfg = point_cfg(scale, events);
        match ctx.try_run_integrity(cfg, measured) {
            Ok(r) => {
                let s = &r.stats;
                // Simulated wall time of the measured window, from the
                // throughput the report already pins.
                let window_ns = if r.perf_accesses_per_us() > 0.0 {
                    measured as f64 / r.perf_accesses_per_us() * 1e3
                } else {
                    0.0
                };
                Row {
                    rate,
                    flips_planned: events,
                    completed: true,
                    error: None,
                    flips_injected: s.flips_injected,
                    corruptions_detected: s.corruptions_detected,
                    corruptions_corrected: s.corruptions_corrected,
                    corruptions_uncorrectable: s.corruptions_uncorrectable,
                    sdc_escapes: s.sdc_escapes,
                    metadata_corruptions_detected: s.metadata_corruptions_detected,
                    frames_poisoned: s.frames_poisoned,
                    detection_coverage: s.detection_coverage(),
                    sdc_escape_rate: s.sdc_escape_rate(),
                    recovery_rate: s.recovery_rate(),
                    recovery_ns: s.recovery_ns,
                    recovery_overhead_pct: if window_ns > 0.0 {
                        s.recovery_ns / window_ns * 100.0
                    } else {
                        0.0
                    },
                    perf_accesses_per_us: r.perf_accesses_per_us(),
                }
            }
            Err(e) => Row {
                rate,
                flips_planned: events,
                completed: false,
                error: Some(e.to_string()),
                flips_injected: 0,
                corruptions_detected: 0,
                corruptions_corrected: 0,
                corruptions_uncorrectable: 0,
                sdc_escapes: 0,
                metadata_corruptions_detected: 0,
                frames_poisoned: 0,
                detection_coverage: 0.0,
                sdc_escape_rate: 0.0,
                recovery_rate: 0.0,
                recovery_ns: 0.0,
                recovery_overhead_pct: 0.0,
                perf_accesses_per_us: 0.0,
            },
        }
    });
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.rate.to_string(),
                r.flips_injected.to_string(),
                format!("{:.0}%", r.detection_coverage * 100.0),
                r.corruptions_corrected.to_string(),
                r.corruptions_uncorrectable.to_string(),
                r.sdc_escapes.to_string(),
                r.frames_poisoned.to_string(),
                format!("{:.3}%", r.recovery_overhead_pct),
                format!("{:.2}", r.perf_accesses_per_us),
            ]
        })
        .collect();
    print_table(
        "Integrity storm — flip rate vs. detection coverage and SDC escapes (canneal, TMCC)",
        [
            "rate",
            "flips",
            "detected",
            "corrected",
            "uncorr",
            "SDC",
            "poisoned",
            "rec ovh",
            "acc/us",
        ]
        .as_ref(),
        &rows,
    );
    for r in out.iter().filter(|r| r.completed && r.flips_injected > 0) {
        println!(
            "{:>8}: {:.0}% detected, {} silent escape(s), {:.0} ns recovery",
            r.rate,
            r.detection_coverage * 100.0,
            r.sdc_escapes,
            r.recovery_ns
        );
    }
    ctx.emit("integrity_storm", &out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_include_a_quiet_control_at_every_scale() {
        for scale in [Scale::Full, Scale::Quick, Scale::Test] {
            let grid = grid_events(scale);
            assert!(grid.iter().any(|&(_, e)| e == 0), "{scale:?} needs the flip-free control");
            assert!(grid.iter().any(|&(_, e)| e > 0), "{scale:?} needs a real storm");
        }
    }

    #[test]
    fn quiet_point_has_an_empty_plan() {
        // The flip-free control must not perturb pre-integrity goldens:
        // an empty plan draws nothing from the flip RNG.
        assert!(point_cfg(Scale::Quick, 0).flip_plan.is_empty());
        assert!(!point_cfg(Scale::Quick, 12).flip_plan.is_empty());
    }

    #[test]
    fn storm_lands_inside_the_measured_window() {
        for scale in [Scale::Full, Scale::Quick, Scale::Test] {
            let (warmup, measured) = window(scale);
            for (_, events) in grid_events(scale) {
                let cfg = point_cfg(scale, events);
                for ev in &cfg.flip_plan.events {
                    assert!(ev.at_access >= warmup, "{scale:?}: flip in warmup");
                    assert!(ev.at_access < warmup + measured, "{scale:?}: flip after the run");
                }
            }
        }
    }

    #[test]
    fn signature_varies_by_scale_and_is_stable() {
        let quick = grid_signature(Scale::Quick);
        assert!(quick.contains("integrity_storm|"));
        assert_ne!(quick, grid_signature(Scale::Test));
        assert_ne!(quick, grid_signature(Scale::Full));
        assert_eq!(quick, grid_signature(Scale::Quick));
    }
}
