//! `capacity_cliff` — simulated-footprint scaling up to 1 TiB.
//!
//! The storage stack materializes page contents lazily from the
//! workload's content seed (`tmcc_workloads::PageStore`) and keeps hot
//! metadata in succinct structures, so the host cost of a simulated
//! footprint is metadata only — tens of MiB per simulated GiB instead of
//! the 1:1 ratio eager 4 KiB buffers would force. This family sweeps the
//! footprint across orders of magnitude under a fixed compression
//! pressure (DRAM budget = 9/16 of the footprint) and reports both sides
//! of the ledger:
//!
//! - `capacity_cliff.json` (golden, byte-identical at any `--jobs`):
//!   simulated performance, DRAM occupancy, the scheme's metadata heap,
//!   and the page store's generate/verify counters.
//! - `FOOTPRINT.json` (non-golden): wall-clock construction/run time and
//!   host RSS per point — nondeterministic by nature, excluded from the
//!   golden diffs exactly like `BENCH_sweep.json`.

use crate::print_table;
use crate::sweep::{HostCost, Scale, SweepCtx};
use serde::Serialize;
use tmcc::{SchemeKind, SystemConfig};
use tmcc_workloads::WorkloadProfile;

const GIB: u64 = 1 << 30;
const PAGE: u64 = 4096;

/// Simulated footprints in pages, per scale. Quick tops out at 100 GiB —
/// the CI `footprint-smoke` acceptance point, which must fit under a
/// 4 GiB host ceiling — and Full at 1 TiB.
pub fn grid_pages(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Full => vec![16 * GIB / PAGE, 64 * GIB / PAGE, 256 * GIB / PAGE, 1024 * GIB / PAGE],
        Scale::Quick => vec![GIB / PAGE, 16 * GIB / PAGE, 100 * GIB / PAGE],
        Scale::Test => vec![1024, 2048],
    }
}

/// One footprint point: TMCC over `pages` with the budget tight enough
/// (9/16 of the uncompressed footprint, plus the translation-metadata
/// allowance) that a large slice of the footprint must live compressed
/// in ML2.
fn point_cfg(pages: u64) -> SystemConfig {
    let mut workload = WorkloadProfile::by_name("pageRank").expect("known workload");
    workload.sim_pages = pages;
    let mut cfg = SystemConfig::new(workload, SchemeKind::Tmcc)
        .with_budget(pages * PAGE * 9 / 16 + pages * 32);
    cfg.seed = 0xF007_0000 ^ pages;
    cfg
}

/// Fingerprint input covering the capacity grid at `scale` — folded into
/// the sweep journal's config hash so grid changes invalidate a stale
/// `--resume` journal.
pub fn grid_signature(scale: Scale) -> String {
    grid_pages(scale)
        .into_iter()
        .map(|pages| format!("capacity_cliff|{:?};", point_cfg(pages)))
        .collect()
}

/// Golden per-point row: deterministic metrics only.
#[derive(Serialize)]
struct Row {
    sim_pages: u64,
    simulated_gib: f64,
    budget_bytes: u64,
    perf_accesses_per_us: f64,
    dram_used_bytes: u64,
    metadata_heap_bytes: u64,
    store_heap_bytes: u64,
    /// Host metadata bytes per simulated GiB — the succinct-layer figure
    /// of merit (an eager page array would sit at 1 GiB per GiB here).
    host_metadata_bytes_per_sim_gib: f64,
    store_reads: u64,
    store_writes: u64,
    store_divergent_writes: u64,
    pinned_pages: u64,
}

/// Non-golden per-point row: host wall clock and RSS.
#[derive(Serialize)]
struct FootprintRow {
    sim_pages: u64,
    simulated_gib: f64,
    /// `"live"` for measured points, `"replayed"` for journal replays
    /// (whose host costs are zero — they did not run).
    source: &'static str,
    construct_ms: f64,
    run_ms: f64,
    rss_before_kb: u64,
    rss_after_kb: u64,
    /// Process-wide peak RSS at point completion, kB (monotonic across
    /// the whole process; meaningful when the experiment runs alone, as
    /// in the CI `footprint-smoke` job).
    peak_rss_kb: u64,
}

pub fn run(ctx: &SweepCtx) {
    let accesses = ctx.accesses();
    let out: Vec<(Row, FootprintRow)> = ctx.par_map(grid_pages(ctx.scale()), |pages| {
        let cfg = point_cfg(pages);
        let budget_bytes = cfg.dram_budget_bytes.unwrap_or(0);
        let (report, probe, host) = ctx.run_capacity(cfg, accesses);
        let gib = (pages * PAGE) as f64 / GIB as f64;
        let row = Row {
            sim_pages: pages,
            simulated_gib: gib,
            budget_bytes,
            perf_accesses_per_us: report.perf_accesses_per_us(),
            dram_used_bytes: report.stats.dram_used_bytes,
            metadata_heap_bytes: probe.metadata_heap_bytes,
            store_heap_bytes: probe.store_heap_bytes,
            host_metadata_bytes_per_sim_gib: (probe.metadata_heap_bytes + probe.store_heap_bytes)
                as f64
                / gib,
            store_reads: probe.store_reads,
            store_writes: probe.store_writes,
            store_divergent_writes: probe.store_divergent_writes,
            pinned_pages: probe.pinned_pages,
        };
        let host = host.unwrap_or(HostCost {
            construct_ms: 0.0,
            run_ms: 0.0,
            rss_before_kb: 0,
            rss_after_kb: 0,
        });
        let footprint = FootprintRow {
            sim_pages: pages,
            simulated_gib: gib,
            source: if host.construct_ms > 0.0 { "live" } else { "replayed" },
            construct_ms: host.construct_ms,
            run_ms: host.run_ms,
            rss_before_kb: host.rss_before_kb,
            rss_after_kb: host.rss_after_kb,
            peak_rss_kb: crate::hostmem::peak_rss_kb(),
        };
        (row, footprint)
    });
    let (rows, footprint): (Vec<Row>, Vec<FootprintRow>) = out.into_iter().unzip();
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(&footprint)
        .map(|(r, f)| {
            vec![
                format!("{:.2} GiB", r.simulated_gib),
                format!("{:.2}", r.perf_accesses_per_us),
                format!("{} MiB", r.dram_used_bytes >> 20),
                format!("{} MiB", (r.metadata_heap_bytes + r.store_heap_bytes) >> 20),
                format!("{:.1} MiB/GiB", r.host_metadata_bytes_per_sim_gib / (1 << 20) as f64),
                format!("{}", r.pinned_pages),
                format!("{:.0} ms", f.construct_ms),
                format!("{} MiB", f.rss_after_kb >> 10),
            ]
        })
        .collect();
    print_table(
        "Capacity cliff — footprint scaling under lazy materialization",
        &[
            "simulated",
            "acc/us",
            "sim DRAM",
            "meta heap",
            "host/GiB",
            "pinned",
            "construct",
            "host RSS",
        ],
        &table,
    );
    ctx.emit("capacity_cliff", &rows);
    ctx.emit("FOOTPRINT", &footprint);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_scale_and_quick_reaches_100_gib() {
        let quick = grid_pages(Scale::Quick);
        assert!(quick.iter().any(|&p| p * PAGE >= 100 * GIB), "quick must reach 100 GiB");
        let full = grid_pages(Scale::Full);
        assert!(full.iter().any(|&p| p * PAGE >= 1024 * GIB), "full must reach 1 TiB");
        assert!(grid_pages(Scale::Test).iter().all(|&p| p <= 2048), "test points stay tiny");
    }

    #[test]
    fn signature_varies_by_scale_and_is_stable() {
        let quick = grid_signature(Scale::Quick);
        assert!(quick.contains("capacity_cliff|"));
        assert_ne!(quick, grid_signature(Scale::Test));
        assert_ne!(quick, grid_signature(Scale::Full));
        assert_eq!(quick, grid_signature(Scale::Quick));
    }

    #[test]
    fn budgets_force_compression_pressure() {
        for pages in grid_pages(Scale::Quick) {
            let cfg = point_cfg(pages);
            let budget = cfg.dram_budget_bytes.expect("budgeted");
            assert!(budget < pages * PAGE, "budget must undercut the footprint");
            assert!(budget > pages * PAGE / 2, "budget must stay feasible");
        }
    }
}
