//! Table IV: compression ratio normalized to Compresso when TMCC is
//! constrained to deliver the *same performance* as Compresso.
//!
//! Methodology (paper §VII): for each workload, measure Compresso's
//! performance and DRAM usage; then search for the smallest DRAM budget at
//! which TMCC still achieves ≥ 99 % of Compresso's performance. Columns
//! mirror the paper's: A = uncompressed footprint, B = Compresso usage,
//! C = TMCC usage at iso-performance, D/E = the corresponding compression
//! ratios, F = E/D.
//!
//! Paper result: 2.2× average normalized ratio.

use crate::sweep::SweepCtx;
use crate::{mean, print_table};
use serde::Serialize;
use tmcc::config::TmccToggles;
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    col_a_footprint_mb: f64,
    col_b_compresso_mb: f64,
    col_c_tmcc_mb: f64,
    col_d_compresso_ratio: f64,
    col_e_tmcc_ratio: f64,
    col_f_normalized: f64,
}

pub fn run(ctx: &SweepCtx) {
    let accesses = ctx.accesses();
    let out: Vec<Row> = ctx.par_map(WorkloadProfile::large_suite(), |w| {
        let (rc, used_b) = ctx.compresso_anchor(&w, accesses);
        let perf_floor = rc.perf_accesses_per_us() * 0.99;
        let (budget_c, rt) =
            ctx.iso_perf_budget_search(&w, TmccToggles::full(), perf_floor, accesses);
        let a = (w.sim_pages * 4096) as f64 / 1e6;
        let b = used_b as f64 / 1e6;
        let c = (rt.stats.dram_used_bytes.min(budget_c)) as f64 / 1e6;
        Row {
            workload: w.name,
            col_a_footprint_mb: a,
            col_b_compresso_mb: b,
            col_c_tmcc_mb: c,
            col_d_compresso_ratio: a / b,
            col_e_tmcc_ratio: a / c,
            col_f_normalized: (a / c) / (a / b),
        }
    });
    let mut rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![
                row.workload.to_string(),
                format!("{:.1}", row.col_a_footprint_mb),
                format!("{:.1}", row.col_b_compresso_mb),
                format!("{:.1}", row.col_c_tmcc_mb),
                format!("{:.2}", row.col_d_compresso_ratio),
                format!("{:.2}", row.col_e_tmcc_ratio),
                format!("{:.2}", row.col_f_normalized),
            ]
        })
        .collect();
    let avg = mean(&out.iter().map(|r| r.col_f_normalized).collect::<Vec<_>>());
    rows.push(vec![
        "AVERAGE".into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        format!("{avg:.2}"),
    ]);
    print_table(
        "Table IV — Iso-performance compression ratio vs Compresso (MB columns are simulated scale)",
        &[
            "workload",
            "A: uncomp",
            "B: compresso",
            "C: tmcc",
            "D: ratio(B)",
            "E: ratio(C)",
            "F: E/D",
        ],
        &rows,
    );
    println!(
        "\nPaper: normalized ratio 2.2x average (graphs ~2.3x, mcf 2.32x, omnetpp 1.58x,\n\
         canneal 1.30x). Measured average: {avg:.2}x"
    );
    ctx.emit("table4_iso_perf_ratio", &out);
}
