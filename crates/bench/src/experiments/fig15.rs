//! Figure 15: compression ratio of per-workload memory images under
//! (a) aggressive 64 B block-level compression (best of BDI/BPC/CPack/
//! zero-block), (b) the memory-specialized ASIC Deflate (with and without
//! dynamic Huffman skipping), and (c) software Deflate (the gzip stand-in,
//! 32 KiB window across pages).
//!
//! Paper result: geomean block-level 1.51×; our ASIC Deflate 3.4× (3.6×
//! with dynamic skipping), within 12 % of gzip.
//!
//! All-zero pages are excluded, exactly as the paper excludes them from
//! its memory dumps.

use crate::sweep::SweepCtx;
use crate::{geomean, print_table};
use serde::Serialize;
use tmcc_compression::{BestOfCodec, BlockCodec};
use tmcc_deflate::{DeflateParams, DeflateScratch, MemDeflate, SoftwareDeflate};
use tmcc_workloads::WorkloadProfile;

/// Content seed shared by every workload image (each workload's content
/// generator further mixes in its own profile).
const SEED: u64 = 0xF1615;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    block_level: f64,
    asic_deflate: f64,
    asic_deflate_with_skip: f64,
    software_deflate: f64,
}

pub fn run(ctx: &SweepCtx) {
    let pages = ctx.scale().content_pages();
    let suite: Vec<WorkloadProfile> =
        WorkloadProfile::large_suite().into_iter().chain(WorkloadProfile::small_suite()).collect();
    let out: Vec<Row> = ctx.par_map(suite, |w| {
        // Codecs are stateless across pages; per-point instances keep the
        // grid embarrassingly parallel. One analytic sizing pass per page
        // prices both dynamic-skip settings (they share LZ and tree
        // parameters), and one scratch serves the whole image.
        let block = BestOfCodec::new();
        let deflate = MemDeflate::new(DeflateParams::new());
        let software = SoftwareDeflate::new();
        let mut scratch = DeflateScratch::new();
        let content = w.page_content(SEED);
        let mut raw = 0usize;
        let mut block_sz = 0usize;
        let mut noskip_sz = 0usize;
        let mut skip_sz = 0usize;
        let mut dump = Vec::new();
        for i in 0..pages {
            let page = content.page_bytes(i);
            let quote = deflate.size_quote_with(&page, &mut scratch);
            if quote.is_zero() {
                continue; // paper: all-zero pages deleted from dumps
            }
            raw += page.len();
            block_sz += page
                .chunks_exact(64)
                .map(|b| {
                    let arr: &[u8; 64] = b.try_into().expect("64B");
                    block.compressed_size(arr)
                })
                .sum::<usize>();
            noskip_sz += quote.stored_len(false);
            skip_sz += quote.stored_len(true);
            dump.extend_from_slice(&page);
        }
        let sw_sz = software.compressed_size_with(&dump, &mut scratch);
        Row {
            workload: w.name,
            block_level: raw as f64 / block_sz as f64,
            asic_deflate: raw as f64 / noskip_sz as f64,
            asic_deflate_with_skip: raw as f64 / skip_sz as f64,
            software_deflate: raw as f64 / sw_sz as f64,
        }
    });
    let mut rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![
                row.workload.to_string(),
                format!("{:.2}x", row.block_level),
                format!("{:.2}x", row.asic_deflate),
                format!("{:.2}x", row.asic_deflate_with_skip),
                format!("{:.2}x", row.software_deflate),
            ]
        })
        .collect();
    let g = |f: fn(&Row) -> f64| geomean(&out.iter().map(f).collect::<Vec<_>>());
    let (gb, ga, gs, gw) = (
        g(|r| r.block_level),
        g(|r| r.asic_deflate),
        g(|r| r.asic_deflate_with_skip),
        g(|r| r.software_deflate),
    );
    rows.push(vec![
        "GEOMEAN".into(),
        format!("{gb:.2}x"),
        format!("{ga:.2}x"),
        format!("{gs:.2}x"),
        format!("{gw:.2}x"),
    ]);
    print_table(
        "Fig. 15 — Compression ratio per workload image",
        &["workload", "block-level", "ASIC Deflate", "+dyn skip", "software Deflate"],
        &rows,
    );
    println!(
        "\nPaper: block 1.51x, ASIC Deflate 3.4x (3.6x w/ skip), within 12% of gzip.\n\
         Measured geomeans: block {gb:.2}x, ASIC {ga:.2}x ({gs:.2}x w/ skip), software {gw:.2}x;\n\
         ASIC-vs-software gap: {:.0}%",
        (1.0 - gs / gw) * 100.0
    );
    ctx.emit("fig15_compression_ratio", &out);
}
