//! Figure 19: distribution of ML1 read accesses under TMCC —
//! CTE-cache hits, speculative parallel accesses (correct embedded CTE),
//! incorrect embedded CTEs, and serialized accesses without an embedded
//! CTE.
//!
//! Paper result: 76 % CTE-cache hits, 22 % parallel accesses, with
//! incorrect-CTE and no-CTE cases in the small remainder; the implied
//! DRAM access rate for CTEs (the miss rate, 24 %) is well below
//! Compresso's 34 %.

use crate::sweep::SweepCtx;
use crate::{feasible_budget, mean, print_table};
use serde::Serialize;
use tmcc::SchemeKind;
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    cte_cache_hit: f64,
    parallel_correct: f64,
    parallel_mismatch: f64,
    serial_no_cte: f64,
}

pub fn run(ctx: &SweepCtx) {
    let accesses = ctx.accesses();
    let out: Vec<Row> =
        ctx.par_map(WorkloadProfile::large_suite(), |w| {
            let (_, used) = ctx.compresso_anchor(&w, accesses / 2);
            let budget = feasible_budget(&w, used);
            let r = ctx.run_scheme(&w, SchemeKind::Tmcc, Some(budget), accesses);
            let s = r.stats;
            let total =
                (s.ml1_cte_hit + s.ml1_parallel_correct + s.ml1_parallel_mismatch + s.ml1_serial)
                    .max(1) as f64;
            Row {
                workload: w.name,
                cte_cache_hit: s.ml1_cte_hit as f64 / total,
                parallel_correct: s.ml1_parallel_correct as f64 / total,
                parallel_mismatch: s.ml1_parallel_mismatch as f64 / total,
                serial_no_cte: s.ml1_serial as f64 / total,
            }
        });
    let mut rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![
                row.workload.to_string(),
                format!("{:.1}%", row.cte_cache_hit * 100.0),
                format!("{:.1}%", row.parallel_correct * 100.0),
                format!("{:.1}%", row.parallel_mismatch * 100.0),
                format!("{:.1}%", row.serial_no_cte * 100.0),
            ]
        })
        .collect();
    let avg = |f: fn(&Row) -> f64| mean(&out.iter().map(f).collect::<Vec<_>>());
    let (h, p, m, s) = (
        avg(|r| r.cte_cache_hit),
        avg(|r| r.parallel_correct),
        avg(|r| r.parallel_mismatch),
        avg(|r| r.serial_no_cte),
    );
    rows.push(vec![
        "AVERAGE".into(),
        format!("{:.1}%", h * 100.0),
        format!("{:.1}%", p * 100.0),
        format!("{:.1}%", m * 100.0),
        format!("{:.1}%", s * 100.0),
    ]);
    print_table(
        "Fig. 19 — Distribution of ML1 read accesses (TMCC)",
        &["workload", "CTE$ hit", "parallel ok", "wrong embedded CTE", "serial (no CTE)"],
        &rows,
    );
    println!(
        "\nPaper: 76% CTE$ hit, 22% parallel; DRAM CTE access rate 24% vs Compresso 34%.\n\
         Measured: {:.0}% hit, {:.0}% parallel, {:.1}% mismatch, {:.0}% serial; CTE DRAM rate {:.0}%",
        h * 100.0,
        p * 100.0,
        m * 100.0,
        s * 100.0,
        (1.0 - h) * 100.0
    );
    ctx.emit("fig19_ml1_access_split", &out);
}
