//! Figure 21: ML2 accesses normalized to total LLC misses + writebacks,
//! under the two DRAM usages of Table IV columns B and C.
//!
//! Paper shape: a few percent at Col B usage, rising towards ~10 % at the
//! aggressive Col C usage — which is why the ML2 (decompression-latency)
//! optimization matters more as more DRAM is saved.

use crate::sweep::SweepCtx;
use crate::{feasible_budget, mean, print_table};
use serde::Serialize;
use tmcc::config::TmccToggles;
use tmcc::SchemeKind;
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    col_b_rate: f64,
    col_c_rate: f64,
}

pub fn run(ctx: &SweepCtx) {
    let accesses = ctx.accesses();
    let out: Vec<Row> = ctx.par_map(WorkloadProfile::large_suite(), |w| {
        let (anchor, used) = ctx.compresso_anchor(&w, accesses / 2);
        let col_b = feasible_budget(&w, used);
        let rb = ctx.run_scheme(&w, SchemeKind::Tmcc, Some(col_b), accesses);
        // Col C: TMCC's DRAM usage when constrained to Compresso's
        // performance (Table IV's operating point).
        let floor = anchor.perf_accesses_per_us() * 0.99;
        let (_, rc) = ctx.iso_perf_budget_search(&w, TmccToggles::full(), floor, accesses / 2);
        Row {
            workload: w.name,
            col_b_rate: rb.stats.ml2_access_rate(),
            col_c_rate: rc.stats.ml2_access_rate(),
        }
    });
    let mut rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![
                row.workload.to_string(),
                format!("{:.2}%", row.col_b_rate * 100.0),
                format!("{:.2}%", row.col_c_rate * 100.0),
            ]
        })
        .collect();
    let b = mean(&out.iter().map(|r| r.col_b_rate).collect::<Vec<_>>());
    let c = mean(&out.iter().map(|r| r.col_c_rate).collect::<Vec<_>>());
    rows.push(vec!["AVERAGE".into(), format!("{:.2}%", b * 100.0), format!("{:.2}%", c * 100.0)]);
    print_table(
        "Fig. 21 — ML2 accesses per (LLC miss + writeback)",
        &["workload", "Col B usage", "Col C usage"],
        &rows,
    );
    println!(
        "\nPaper shape: low single digits at Col B, up to ~10% at Col C; Col C > Col B.\n\
         Measured averages: {:.2}% vs {:.2}% — aggressive saving raises ML2 traffic: {}",
        b * 100.0,
        c * 100.0,
        c > b
    );
    ctx.emit("fig21_ml2_access_rate", &out);
}
