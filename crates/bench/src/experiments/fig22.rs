//! Figure 22: performance of the two TMCC-compatible interleaving
//! policies, normalized to sub-page interleaving across MCs.
//!
//! Paper result (16 cores, 2 MCs × 2 channels, bandwidth-intensive
//! workloads): 4 KiB-across-MC interleaving stays within 1 % on average
//! (≤ 5 % worst, up to +10 % from better row locality); interleaving pages
//! across *channels* too degrades more (5–11 % for sp_D and hpcg).

use crate::mean;
use crate::print_table;
use crate::sweep::SweepCtx;
use serde::Serialize;
use tmcc::{SchemeKind, SystemConfig};
use tmcc_sim_dram::{DramConfig, InterleavePolicy};
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    coarse_mc_normalized: f64,
    page_channel_normalized: f64,
}

fn run_policy(ctx: &SweepCtx, w: &WorkloadProfile, policy: InterleavePolicy) -> f64 {
    let mut cfg = SystemConfig::new(w.clone(), SchemeKind::NoCompression);
    cfg.dram = DramConfig::two_mc_two_channel();
    cfg.interleave = policy;
    cfg.cores = 16;
    ctx.run(cfg, ctx.accesses()).perf_accesses_per_us()
}

pub fn run(ctx: &SweepCtx) {
    let out: Vec<Row> = ctx.par_map(WorkloadProfile::bandwidth_suite(), |w| {
        let base = run_policy(ctx, &w, InterleavePolicy::baseline());
        let coarse = run_policy(ctx, &w, InterleavePolicy::coarse_mc());
        let page = run_policy(ctx, &w, InterleavePolicy::page_channel());
        Row {
            workload: w.name,
            coarse_mc_normalized: coarse / base,
            page_channel_normalized: page / base,
        }
    });
    let mut rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![
                row.workload.to_string(),
                format!("{:.3}", row.coarse_mc_normalized),
                format!("{:.3}", row.page_channel_normalized),
            ]
        })
        .collect();
    let c = mean(&out.iter().map(|r| r.coarse_mc_normalized).collect::<Vec<_>>());
    let p = mean(&out.iter().map(|r| r.page_channel_normalized).collect::<Vec<_>>());
    rows.push(vec!["AVERAGE".into(), format!("{c:.3}"), format!("{p:.3}")]);
    print_table(
        "Fig. 22 — TMCC-compatible interleaving vs sub-page baseline",
        &["workload", "4KiB across MCs", "4KiB across MCs+channels"],
        &rows,
    );
    println!(
        "\nPaper: coarse-MC within 1% average; page-across-channels degrades up to 11%.\n\
         Measured averages: coarse-MC {c:.3}, page-channel {p:.3} (page-channel worse: {})",
        p <= c
    );
    ctx.emit("fig22_interleaving", &out);
}
