//! §VIII huge-page sensitivity: with 2 MiB pages, a PTB covers 16 MiB so
//! TMCC cannot embed CTEs (4 K CTEs would be needed per PTB); only the
//! page-level-translation and fast-ML2 benefits remain.
//!
//! Paper result: TMCC still improves performance by 6 % over Compresso at
//! iso-savings, or provides 1.8× the capacity at iso-performance (vs 14 %
//! and 2.2× with 4 KiB pages).

use crate::sweep::SweepCtx;
use crate::{feasible_budget, mean, print_table};
use serde::Serialize;
use tmcc::config::TmccToggles;
use tmcc::{SchemeKind, SystemConfig};
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    perf_normalized: f64,
    iso_perf_capacity_ratio: f64,
}

pub fn run(ctx: &SweepCtx) {
    let accesses = ctx.accesses();
    let out: Vec<Row> = ctx.par_map(WorkloadProfile::large_suite(), |w| {
        // Both systems run with 2 MiB pages.
        let mut ccfg = SystemConfig::new(w.clone(), SchemeKind::Compresso);
        ccfg.huge_pages = true;
        let rc = ctx.run(ccfg, accesses);
        let used = rc.stats.dram_used_bytes;
        let budget = feasible_budget(&w, used);
        // TMCC with huge pages at iso-savings.
        let mut cfg = SystemConfig::new(w.clone(), SchemeKind::Tmcc).with_budget(budget);
        cfg.huge_pages = true;
        let rt = ctx.run(cfg, accesses);
        // Iso-performance capacity search, huge pages on.
        let perf_floor = rc.perf_accesses_per_us() * 0.99;
        let mk_cfg = |b: u64| {
            let mut c = SystemConfig::new(w.clone(), SchemeKind::Tmcc)
                .with_budget(b)
                .with_toggles(TmccToggles::full());
            c.huge_pages = true;
            c
        };
        let (_, riso) = ctx.iso_perf_budget_search_cfg(&w, mk_cfg, perf_floor, accesses);
        let a = (w.sim_pages * 4096) as f64;
        Row {
            workload: w.name,
            perf_normalized: rt.perf_accesses_per_us() / rc.perf_accesses_per_us(),
            iso_perf_capacity_ratio: (a / riso.stats.dram_used_bytes as f64) / (a / used as f64),
        }
    });
    let mut rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![
                row.workload.to_string(),
                format!("{:.3}", row.perf_normalized),
                format!("{:.2}", row.iso_perf_capacity_ratio),
            ]
        })
        .collect();
    let p = mean(&out.iter().map(|r| r.perf_normalized).collect::<Vec<_>>());
    let c = mean(&out.iter().map(|r| r.iso_perf_capacity_ratio).collect::<Vec<_>>());
    rows.push(vec!["AVERAGE".into(), format!("{p:.3}"), format!("{c:.2}")]);
    print_table(
        "§VIII — Huge pages: TMCC vs Compresso",
        &["workload", "perf @iso-savings", "capacity @iso-perf"],
        &rows,
    );
    println!(
        "\nPaper: +6% performance or 1.8x capacity under huge pages (less than the\n\
         +14% / 2.2x with 4 KiB pages, because PTB embedding is ineffective).\n\
         Measured: {:+.1}% / {c:.2}x",
        (p - 1.0) * 100.0
    );
    ctx.emit("sens_huge_pages", &out);
}
