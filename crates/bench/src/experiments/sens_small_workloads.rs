//! §VII small-workload sensitivity: the remaining PARSEC programs and a
//! RocksDB-like key-value workload — small footprints, regular access
//! patterns.
//!
//! Paper result: TMCC's performance stays within 1 % of Compresso (max
//! +5 % for RocksDB, max −0.1 % for freqmine) because these workloads
//! translate well anyway; but TMCC still provides 1.7× Compresso's
//! compression ratio on average at iso-performance (max 3.1× for
//! blackscholes).

use crate::sweep::SweepCtx;
use crate::{feasible_budget, mean, print_table};
use serde::Serialize;
use tmcc::config::TmccToggles;
use tmcc::SchemeKind;
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    perf_normalized: f64,
    iso_perf_ratio_normalized: f64,
}

pub fn run(ctx: &SweepCtx) {
    let accesses = ctx.accesses();
    let out: Vec<Row> = ctx.par_map(WorkloadProfile::small_suite(), |w| {
        let (rc, used) = ctx.compresso_anchor(&w, accesses);
        let budget = feasible_budget(&w, used);
        let rt = ctx.run_scheme(&w, SchemeKind::Tmcc, Some(budget), accesses);
        let perf_floor = rc.perf_accesses_per_us() * 0.99;
        let (_, riso) = ctx.iso_perf_budget_search(&w, TmccToggles::full(), perf_floor, accesses);
        let a = (w.sim_pages * 4096) as f64;
        Row {
            workload: w.name,
            perf_normalized: rt.perf_accesses_per_us() / rc.perf_accesses_per_us(),
            iso_perf_ratio_normalized: (a / riso.stats.dram_used_bytes as f64) / (a / used as f64),
        }
    });
    let mut rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![
                row.workload.to_string(),
                format!("{:.3}", row.perf_normalized),
                format!("{:.2}", row.iso_perf_ratio_normalized),
            ]
        })
        .collect();
    let p = mean(&out.iter().map(|r| r.perf_normalized).collect::<Vec<_>>());
    let r = mean(&out.iter().map(|r| r.iso_perf_ratio_normalized).collect::<Vec<_>>());
    let max = out
        .iter()
        .max_by(|a, b| a.iso_perf_ratio_normalized.total_cmp(&b.iso_perf_ratio_normalized))
        .expect("non-empty suite");
    rows.push(vec!["AVERAGE".into(), format!("{p:.3}"), format!("{r:.2}")]);
    print_table(
        "§VII — Small/regular workloads: TMCC vs Compresso",
        &["workload", "perf @iso-savings", "iso-perf ratio vs compresso"],
        &rows,
    );
    println!(
        "\nPaper: perf within 1% of Compresso; 1.7x average iso-perf ratio, max 3.1x\n\
         (blackscholes). Measured: perf {:+.1}% avg; ratio {r:.2}x avg, max {:.2}x ({})",
        (p - 1.0) * 100.0,
        max.iso_perf_ratio_normalized,
        max.workload
    );
    ctx.emit("sens_small_workloads", &out);
}
