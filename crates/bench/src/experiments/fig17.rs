//! Figure 17: TMCC performance normalized to Compresso when saving the
//! same amount of DRAM.
//!
//! Paper result: +14 % on average across the twelve large/irregular
//! workloads; highest for shortestPath and canneal (high memory access
//! rate + high CTE miss rate), lowest for kcore and triangleCount (low
//! CTE miss rate).

use crate::sweep::SweepCtx;
use crate::{feasible_budget, mean, print_table};
use serde::Serialize;
use tmcc::SchemeKind;
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    compresso_perf: f64,
    tmcc_perf: f64,
    normalized: f64,
    budget_bytes: u64,
}

pub fn run(ctx: &SweepCtx) {
    let accesses = ctx.accesses();
    let out: Vec<Row> = ctx.par_map(WorkloadProfile::large_suite(), |w| {
        let (rc, used) = ctx.compresso_anchor(&w, accesses);
        let budget = feasible_budget(&w, used);
        let rt = ctx.run_scheme(&w, SchemeKind::Tmcc, Some(budget), accesses);
        Row {
            workload: w.name,
            compresso_perf: rc.perf_accesses_per_us(),
            tmcc_perf: rt.perf_accesses_per_us(),
            normalized: rt.perf_accesses_per_us() / rc.perf_accesses_per_us(),
            budget_bytes: budget,
        }
    });
    let mut rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![
                row.workload.to_string(),
                format!("{:.2}", row.compresso_perf),
                format!("{:.2}", row.tmcc_perf),
                format!("{:.3}", row.normalized),
            ]
        })
        .collect();
    let avg = mean(&out.iter().map(|r| r.normalized).collect::<Vec<_>>());
    rows.push(vec!["AVERAGE".into(), "".into(), "".into(), format!("{avg:.3}")]);
    print_table(
        "Fig. 17 — TMCC performance normalized to Compresso (iso-savings)",
        &["workload", "compresso acc/us", "tmcc acc/us", "normalized"],
        &rows,
    );
    let best = out.iter().max_by(|a, b| a.normalized.total_cmp(&b.normalized)).expect("rows");
    let worst = out.iter().min_by(|a, b| a.normalized.total_cmp(&b.normalized)).expect("rows");
    println!(
        "\nPaper: +14% average; best shortestPath/canneal, worst kcore/triangleCount.\n\
         Measured: {:+.1}% average; best {} ({:+.1}%), worst {} ({:+.1}%)",
        (avg - 1.0) * 100.0,
        best.workload,
        (best.normalized - 1.0) * 100.0,
        worst.workload,
        (worst.normalized - 1.0) * 100.0,
    );
    ctx.emit("fig17_perf_vs_compresso", &out);
}
