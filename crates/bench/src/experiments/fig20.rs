//! Figure 20: TMCC's improvement over the barebone OS-inspired hardware
//! compression of §IV, split into the ML1 optimization (embedded CTEs)
//! and the ML2 optimization (memory-specialized Deflate), under the two
//! DRAM-usage scenarios of Table IV columns B and C.
//!
//! Paper result: +12.5 % total at Col B usage (8.25 % from ML1 opt,
//! 4.25 % from ML2 opt); +15.4 % at Col C usage, where the ML2
//! optimization dominates because ML2 accesses become frequent.

use crate::sweep::SweepCtx;
use crate::{feasible_budget, mean, print_table};
use serde::Serialize;
use tmcc::config::TmccToggles;
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    scenario: &'static str,
    ml1_only_speedup: f64,
    ml2_only_speedup: f64,
    full_speedup: f64,
}

pub fn run(ctx: &SweepCtx) {
    let accesses = ctx.accesses();
    // Per workload: Col B = Compresso's DRAM usage; Col C = TMCC's usage
    // at Compresso-equivalent performance (Table IV's operating point).
    let budgets: Vec<(WorkloadProfile, [u64; 2])> =
        ctx.par_map(WorkloadProfile::large_suite(), |w| {
            let (anchor, used) = ctx.compresso_anchor(&w, accesses / 2);
            let col_b = feasible_budget(&w, used);
            let floor = anchor.perf_accesses_per_us() * 0.99;
            let (col_c, _) =
                ctx.iso_perf_budget_search(&w, TmccToggles::full(), floor, accesses / 2);
            (w, [col_b, col_c])
        });
    let points: Vec<(WorkloadProfile, &'static str, u64)> = [(0usize, "Col B"), (1, "Col C")]
        .into_iter()
        .flat_map(|(idx, scenario)| budgets.iter().map(move |(w, b)| (w.clone(), scenario, b[idx])))
        .collect();
    let out: Vec<Row> = ctx.par_map(points, |(w, scenario, budget)| {
        let base =
            ctx.run_two_level(&w, TmccToggles::none(), budget, accesses).perf_accesses_per_us();
        let ml1 =
            ctx.run_two_level(&w, TmccToggles::ml1_only(), budget, accesses).perf_accesses_per_us();
        let ml2 =
            ctx.run_two_level(&w, TmccToggles::ml2_only(), budget, accesses).perf_accesses_per_us();
        let full =
            ctx.run_two_level(&w, TmccToggles::full(), budget, accesses).perf_accesses_per_us();
        Row {
            workload: w.name,
            scenario,
            ml1_only_speedup: ml1 / base,
            ml2_only_speedup: ml2 / base,
            full_speedup: full / base,
        }
    });
    let mut rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![
                format!("{} [{}]", row.workload, row.scenario),
                format!("{:.3}", row.ml1_only_speedup),
                format!("{:.3}", row.ml2_only_speedup),
                format!("{:.3}", row.full_speedup),
            ]
        })
        .collect();
    for scenario in ["Col B", "Col C"] {
        let sel: Vec<&Row> = out.iter().filter(|r| r.scenario == scenario).collect();
        let m = |f: fn(&Row) -> f64| mean(&sel.iter().map(|r| f(r)).collect::<Vec<_>>());
        rows.push(vec![
            format!("AVERAGE [{scenario}]"),
            format!("{:.3}", m(|r| r.ml1_only_speedup)),
            format!("{:.3}", m(|r| r.ml2_only_speedup)),
            format!("{:.3}", m(|r| r.full_speedup)),
        ]);
    }
    print_table(
        "Fig. 20 — Speedup over barebone OS-inspired compression",
        &["workload [scenario]", "ML1 opt only", "ML2 opt only", "full TMCC"],
        &rows,
    );
    println!(
        "\nPaper: Col B +12.5% total (ML1 8.25%, ML2 4.25%); Col C +15.4% with the\n\
         ML2 optimization's share growing as ML2 accesses become frequent."
    );
    ctx.emit("fig20_vs_barebone", &out);
}
