//! Figure 18: average L3-miss service latency under (i) no compression,
//! (ii) Compresso, (iii) TMCC at iso-compression with Compresso.
//!
//! Paper result: 53 ns / 73.9 ns / 56.4 ns — Compresso pays ~20 ns of
//! serial CTE fetching per CTE-cache miss; TMCC hides it by fetching data
//! and CTE from DRAM in parallel.

use crate::sweep::SweepCtx;
use crate::{feasible_budget, mean, print_table};
use serde::Serialize;
use tmcc::SchemeKind;
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    no_compression_ns: f64,
    compresso_ns: f64,
    tmcc_ns: f64,
}

pub fn run(ctx: &SweepCtx) {
    let accesses = ctx.accesses();
    let out: Vec<Row> = ctx.par_map(WorkloadProfile::large_suite(), |w| {
        let rn = ctx.run_scheme(&w, SchemeKind::NoCompression, None, accesses);
        let (rc, used) = ctx.compresso_anchor(&w, accesses);
        let budget = feasible_budget(&w, used);
        let rt = ctx.run_scheme(&w, SchemeKind::Tmcc, Some(budget), accesses);
        Row {
            workload: w.name,
            no_compression_ns: rn.stats.avg_l3_miss_latency_ns(),
            compresso_ns: rc.stats.avg_l3_miss_latency_ns(),
            tmcc_ns: rt.stats.avg_l3_miss_latency_ns(),
        }
    });
    let mut rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![
                row.workload.to_string(),
                format!("{:.1}", row.no_compression_ns),
                format!("{:.1}", row.compresso_ns),
                format!("{:.1}", row.tmcc_ns),
            ]
        })
        .collect();
    let a = mean(&out.iter().map(|r| r.no_compression_ns).collect::<Vec<_>>());
    let b = mean(&out.iter().map(|r| r.compresso_ns).collect::<Vec<_>>());
    let c = mean(&out.iter().map(|r| r.tmcc_ns).collect::<Vec<_>>());
    rows.push(vec!["AVERAGE".into(), format!("{a:.1}"), format!("{b:.1}"), format!("{c:.1}")]);
    print_table(
        "Fig. 18 — Average L3-miss latency (ns)",
        &["workload", "no compression", "compresso", "tmcc (iso-savings)"],
        &rows,
    );
    println!(
        "\nPaper: 53 / 73.9 / 56.4 ns. Measured: {a:.1} / {b:.1} / {c:.1} ns.\n\
         Shape check — TMCC within {:.0}% of no-compression while Compresso pays {:.0}%:",
        (c / a - 1.0) * 100.0,
        (b / a - 1.0) * 100.0
    );
    ctx.emit("fig18_l3_miss_latency", &out);
}
