//! Figure 6: fraction of page-table blocks whose eight PTEs carry
//! identical status bits — the precondition for the compressed-PTB
//! encoding.
//!
//! Paper result (from real page-table dumps): 99.94 % of L1 PTBs and
//! 99.3 % of L2 PTBs are uniform.
//!
//! We build each workload's page table the way the simulator does, then
//! perturb individual PTEs' accessed/dirty bits at the small per-entry
//! rates real OS activity produces (reclaim scans clear A bits, stores set
//! D bits at different times), and measure uniformity. Each workload's
//! perturbation RNG is seeded from its suite index, so the config points
//! are independent and the sweep can run them on any worker.

use crate::sweep::SweepCtx;
use crate::{mean, print_table};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use tmcc_sim_mem::{PageTable, PageTableConfig};
use tmcc_types::addr::{Ppn, Vpn};
use tmcc_types::pte::{Pte, PteFlags};
use tmcc_workloads::WorkloadProfile;

/// Per-PTE probability that an L1 entry's A/D bits currently differ from
/// its neighbours' (real dumps: ~0.06 % of PTBs non-uniform → ~7.5e-5 per
/// entry).
const L1_PERTURB: f64 = 7.5e-5;
/// L2 entries are touched more unevenly (~0.7 % of PTBs non-uniform).
const L2_PERTURB: f64 = 5.5e-4;

/// Base seed; each workload salts it with its suite index.
const SEED: u64 = 0xF1606;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    l1_uniform: f64,
    l2_uniform: f64,
}

fn uniform_fraction(pt: &PageTable, level: u8, perturb: f64, rng: &mut SmallRng) -> f64 {
    let ptbs = pt.ptbs_at_level(level);
    if ptbs.is_empty() {
        return 1.0;
    }
    let mut uniform = 0usize;
    for (_, mut ptb) in ptbs.clone() {
        for slot in 0..8 {
            let e = ptb.entry(slot);
            if e.is_present() && rng.gen::<f64>() < perturb {
                let f = e.flags();
                ptb.set_entry(
                    slot,
                    Pte::new(e.ppn(), PteFlags::new(f.low() ^ PteFlags::DIRTY, f.high())),
                );
            }
        }
        if ptb.uniform_status() {
            uniform += 1;
        }
    }
    uniform as f64 / ptbs.len() as f64
}

pub fn run(ctx: &SweepCtx) {
    let suite: Vec<(usize, WorkloadProfile)> =
        WorkloadProfile::large_suite().into_iter().enumerate().collect();
    let out: Vec<Row> = ctx.par_map(suite, |(idx, w)| {
        let mut rng =
            SmallRng::seed_from_u64(SEED ^ (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut pt = PageTable::new(PageTableConfig::default());
        for i in 0..w.sim_pages {
            pt.map(Vpn::new(i), Ppn::new(i));
        }
        Row {
            workload: w.name,
            l1_uniform: uniform_fraction(&pt, 1, L1_PERTURB, &mut rng),
            l2_uniform: uniform_fraction(&pt, 2, L2_PERTURB, &mut rng),
        }
    });
    let mut rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![
                row.workload.to_string(),
                format!("{:.2}%", row.l1_uniform * 100.0),
                format!("{:.2}%", row.l2_uniform * 100.0),
            ]
        })
        .collect();
    let l1 = mean(&out.iter().map(|r| r.l1_uniform).collect::<Vec<_>>());
    let l2 = mean(&out.iter().map(|r| r.l2_uniform).collect::<Vec<_>>());
    rows.push(vec!["AVERAGE".into(), format!("{:.2}%", l1 * 100.0), format!("{:.2}%", l2 * 100.0)]);
    print_table(
        "Fig. 6 — PTBs with identical status bits across all 8 PTEs",
        &["workload", "L1 PTBs uniform", "L2 PTBs uniform"],
        &rows,
    );
    println!("\nPaper: 99.94% (L1), 99.3% (L2). Measured: {:.2}% / {:.2}%", l1 * 100.0, l2 * 100.0);
    ctx.emit("fig06_ptb_status_bits", &out);
}
