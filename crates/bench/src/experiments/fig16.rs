//! Figure 16: memory-access characterization of the evaluated benchmarks
//! under no hardware memory compression — DRAM bandwidth utilization,
//! split into reads and writes.
//!
//! Paper shape: shortestPath and canneal are the most bandwidth-intensive;
//! kcore and triangleCount the least (which is why they respectively gain
//! the most / least from TMCC, Fig. 17).

use crate::print_table;
use crate::sweep::SweepCtx;
use serde::Serialize;
use tmcc::SchemeKind;
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    read_utilization: f64,
    write_utilization: f64,
    llc_misses_per_kilo_access: f64,
}

pub fn run(ctx: &SweepCtx) {
    let accesses = ctx.accesses();
    let out: Vec<Row> = ctx.par_map(WorkloadProfile::large_suite(), |w| {
        let r = ctx.run_scheme(&w, SchemeKind::NoCompression, None, accesses);
        let total = r.bandwidth_utilization;
        let reads = r.dram.reads as f64;
        let writes = r.dram.writes as f64;
        let wf = if reads + writes > 0.0 { writes / (reads + writes) } else { 0.0 };
        Row {
            workload: w.name,
            read_utilization: total * (1.0 - wf),
            write_utilization: total * wf,
            llc_misses_per_kilo_access: r.stats.llc_misses() as f64 * 1000.0
                / r.stats.accesses as f64,
        }
    });
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![
                row.workload.to_string(),
                format!("{:.1}%", row.read_utilization * 100.0),
                format!("{:.1}%", row.write_utilization * 100.0),
                format!("{:.0}", row.llc_misses_per_kilo_access),
            ]
        })
        .collect();
    print_table(
        "Fig. 16 — Memory characterization (no compression)",
        &["workload", "read BW util", "write BW util", "LLC misses/1K accesses"],
        &rows,
    );
    let max = out
        .iter()
        .max_by(|a, b| {
            (a.read_utilization + a.write_utilization)
                .total_cmp(&(b.read_utilization + b.write_utilization))
        })
        .expect("non-empty suite");
    println!(
        "\nPaper shape: shortestPath/canneal most intensive, kcore/triangleCount least.\n\
         Measured most intensive: {}",
        max.workload
    );
    ctx.emit("fig16_mem_characterization", &out);
}
