//! Table II: Deflate performance for 4 KiB memory pages — the
//! memory-specialized ASIC vs IBM's general-purpose ASIC.
//!
//! Paper: our decompressor 277 ns (140 ns half-page, 14.8 GB/s), our
//! compressor 662 ns (17.2 GB/s); IBM 1100/878 ns, 3.7 GB/s and 1050 ns,
//! 3.9 GB/s. The half-page decompression — the latency an LLC miss into
//! ML2 actually waits — is 6× faster.
//!
//! The latency numbers come from the cycle model (per-stage rates of
//! §V-B4 at 2.5 GHz); the compressed sizes feeding the model come from the
//! *real codec* run over the workload corpus.

use crate::sweep::SweepCtx;
use crate::{mean, print_table};
use serde::Serialize;
use tmcc_deflate::{IbmDeflateModel, MemDeflate};
use tmcc_workloads::WorkloadProfile;

/// Seed for the page corpus feeding the cycle model.
const SEED: u64 = 0x7AB1E2;

#[derive(Serialize)]
struct Out {
    ours_decompress_ns: f64,
    ours_half_page_ns: f64,
    ours_decompress_gbps: f64,
    ours_compress_ns: f64,
    ours_compress_gbps: f64,
    ibm_decompress_ns: f64,
    ibm_half_page_ns: f64,
    ibm_decompress_gbps: f64,
    ibm_compress_ns: f64,
    ibm_compress_gbps: f64,
}

/// Per-workload samples, concatenated in suite order before averaging.
struct Samples {
    dec: Vec<f64>,
    half: Vec<f64>,
    comp: Vec<f64>,
    dec_tp: Vec<f64>,
    comp_tp: Vec<f64>,
}

pub fn run(ctx: &SweepCtx) {
    let pages = ctx.scale().corpus_pages();
    let ibm = IbmDeflateModel::default();

    // Feed the cycle model with real compressed pages from the corpus.
    let per_workload: Vec<Samples> = ctx.par_map(WorkloadProfile::large_suite(), |w| {
        let codec = MemDeflate::default();
        let content = w.page_content(SEED);
        let mut s = Samples {
            dec: Vec::new(),
            half: Vec::new(),
            comp: Vec::new(),
            dec_tp: Vec::new(),
            comp_tp: Vec::new(),
        };
        for i in 0..pages {
            let page = content.page_bytes(i);
            let c = codec.compress_page(&page);
            s.dec.push(codec.decompress_latency(&c).ns);
            s.half.push(codec.needed_block_latency(&c).ns);
            s.comp.push(codec.compress_latency(&c).ns);
            s.dec_tp.push(codec.timing().decompress_throughput_gbps(c.payload_bits(), page.len()));
            s.comp_tp.push(codec.timing().compress_throughput_gbps(
                page.len(),
                c.lz_stats(),
                c.lz_len(),
                c.payload_bits(),
            ));
        }
        s
    });
    let mut dec = Vec::new();
    let mut half = Vec::new();
    let mut comp = Vec::new();
    let mut dec_tp = Vec::new();
    let mut comp_tp = Vec::new();
    for s in per_workload {
        dec.extend(s.dec);
        half.extend(s.half);
        comp.extend(s.comp);
        dec_tp.extend(s.dec_tp);
        comp_tp.extend(s.comp_tp);
    }
    let out = Out {
        ours_decompress_ns: mean(&dec),
        ours_half_page_ns: mean(&half),
        ours_decompress_gbps: mean(&dec_tp),
        ours_compress_ns: mean(&comp),
        ours_compress_gbps: mean(&comp_tp),
        ibm_decompress_ns: ibm.decompress_latency_ns(4096),
        ibm_half_page_ns: ibm.half_page_decompress_ns(4096),
        ibm_decompress_gbps: ibm.decompress_throughput_gbps(4096),
        ibm_compress_ns: ibm.compress_latency_ns(4096),
        ibm_compress_gbps: ibm.compress_throughput_gbps(4096),
    };
    let rows = vec![
        vec![
            "Our Decompressor".into(),
            format!("{:.0} ns", out.ours_decompress_ns),
            format!("{:.0} ns", out.ours_half_page_ns),
            format!("{:.1} GB/s", out.ours_decompress_gbps),
        ],
        vec![
            "Our Compressor".into(),
            format!("{:.0} ns", out.ours_compress_ns),
            "N/A".into(),
            format!("{:.1} GB/s", out.ours_compress_gbps),
        ],
        vec![
            "IBM Decompressor".into(),
            format!("{:.0} ns", out.ibm_decompress_ns),
            format!("{:.0} ns", out.ibm_half_page_ns),
            format!("{:.1} GB/s", out.ibm_decompress_gbps),
        ],
        vec![
            "IBM Compressor".into(),
            format!("{:.0} ns", out.ibm_compress_ns),
            "N/A".into(),
            format!("{:.1} GB/s", out.ibm_compress_gbps),
        ],
    ];
    print_table(
        "Table II — Deflate performance for 4 KiB memory pages",
        &["module", "latency", "1/2-page latency", "throughput"],
        &rows,
    );
    println!(
        "\nPaper: ours 277/140 ns 14.8 GB/s (dec), 662 ns 17.2 GB/s (comp);\n\
         IBM 1100/878 ns 3.7 GB/s, 1050 ns 3.9 GB/s.\n\
         Speedups: full-page decompress {:.1}x, needed-block {:.1}x, compress {:.1}x.\n\
         Combined unit throughput: {:.1} GB/s (paper: 32.0 GB/s; exceeds the\n\
         25.6 GB/s DDR4-3200 channel).",
        out.ibm_decompress_ns / out.ours_decompress_ns,
        out.ibm_half_page_ns / out.ours_half_page_ns,
        out.ibm_compress_ns / out.ours_compress_ns,
        out.ours_decompress_gbps + out.ours_compress_gbps,
    );
    ctx.emit("table2_deflate_perf", &out);
}
