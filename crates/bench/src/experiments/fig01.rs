//! Figure 1: TLB misses and CTE misses normalized to LLC misses, under
//! block-level (Compresso-style) hardware memory compression.
//!
//! Paper result: across the twelve large/irregular workloads, CTE misses
//! per LLC miss (avg 34 %) exceed TLB misses per LLC miss (avg 30 %),
//! because *every* memory request — including the page walker's own PTB
//! fetches — needs a CTE, while TLB misses only occur for data.

use crate::sweep::SweepCtx;
use crate::{mean, print_table};
use serde::Serialize;
use tmcc::SchemeKind;
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    tlb_miss_per_llc_miss: f64,
    cte_miss_per_llc_miss: f64,
}

pub fn run(ctx: &SweepCtx) {
    let accesses = ctx.accesses();
    let out: Vec<Row> = ctx.par_map(WorkloadProfile::large_suite(), |w| {
        let r = ctx.run_scheme(&w, SchemeKind::Compresso, None, accesses);
        Row {
            workload: w.name,
            tlb_miss_per_llc_miss: r.stats.tlb_miss_per_llc_miss(),
            cte_miss_per_llc_miss: r.stats.cte_miss_per_llc_miss(),
        }
    });
    let mut rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![
                row.workload.to_string(),
                format!("{:.1}%", row.tlb_miss_per_llc_miss * 100.0),
                format!("{:.1}%", row.cte_miss_per_llc_miss * 100.0),
            ]
        })
        .collect();
    let tlb_avg = mean(&out.iter().map(|r| r.tlb_miss_per_llc_miss).collect::<Vec<_>>());
    let cte_avg = mean(&out.iter().map(|r| r.cte_miss_per_llc_miss).collect::<Vec<_>>());
    rows.push(vec![
        "AVERAGE".into(),
        format!("{:.1}%", tlb_avg * 100.0),
        format!("{:.1}%", cte_avg * 100.0),
    ]);
    print_table(
        "Fig. 1 — TLB and CTE misses per LLC miss (Compresso CTEs)",
        &["workload", "TLB miss/LLC miss", "CTE miss/LLC miss"],
        &rows,
    );
    println!(
        "\nPaper: avg TLB 30%, avg CTE 34% (CTE misses exceed TLB misses).\n\
         Measured: avg TLB {:.1}%, avg CTE {:.1}% — CTE > TLB: {}",
        tlb_avg * 100.0,
        cte_avg * 100.0,
        cte_avg > tlb_avg
    );
    ctx.emit("fig01_tlb_cte_misses", &out);
}
