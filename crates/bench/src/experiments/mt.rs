//! Multi-tenant scenarios: isolation under an adversarial neighbor
//! (`mt_degradation`), guarantee pressure under demand spikes
//! (`mt_tail_latency`), and arrival/departure/ballooning storms
//! (`mt_churn_storm`). Every scenario runs a full [`MultiTenantSystem`]
//! — per-tenant page tables, TLBs and compression state over one shared
//! [`tmcc::tenancy::CapacityArbiter`] — with per-round invariant audits
//! on, and emits the complete per-tenant report.
//!
//! The scenario builders are scale-aware (roster footprints, warmups,
//! quanta and run lengths are sized per [`Scale`]), so the whole grid is
//! part of the journal's config hash: [`grid_signature`] feeds
//! `journal::scale_config_hash`, and a `--resume` against a journal
//! written under different scenario parameters starts cold instead of
//! replaying stale multi-tenant records.

use crate::print_table;
use crate::sweep::{Scale, SweepCtx};
use serde::Serialize;
use tmcc::tenancy::{ChurnKind, ChurnPlan, MultiTenantConfig, TenantSpec};
use tmcc::{FaultKind, MultiTenantReport, QosPolicyKind, SchemeKind};
use tmcc_workloads::WorkloadProfile;

/// Per-scale scenario sizing. The quick tier mirrors the core acceptance
/// test (`tenancy_integration.rs`) exactly, so the quarantine dynamics it
/// asserts — adversary enters *and* exits degraded mode while every
/// well-behaved floor holds — are what `mt_degradation --quick` shows.
struct MtParams {
    pages: u64,
    warmup: u64,
    quantum: u64,
    total: u64,
    size_samples: usize,
}

fn params(scale: Scale) -> MtParams {
    match scale {
        Scale::Full => {
            MtParams { pages: 2_048, warmup: 2_000, quantum: 384, total: 56_000, size_samples: 16 }
        }
        Scale::Quick => {
            MtParams { pages: 1_024, warmup: 800, quantum: 256, total: 28_000, size_samples: 8 }
        }
        Scale::Test => {
            MtParams { pages: 512, warmup: 300, quantum: 128, total: 9_000, size_samples: 8 }
        }
    }
}

/// All three QoS policies, in registry order.
const POLICIES: [QosPolicyKind; 3] = [
    QosPolicyKind::StrictPartition,
    QosPolicyKind::ProportionalShare,
    QosPolicyKind::BestEffortFloors,
];

/// One point of a multi-tenant grid.
#[derive(Clone)]
pub struct MtPoint {
    /// Scenario label within the experiment (e.g. `adversarial`).
    pub scenario: &'static str,
    /// The full scenario configuration.
    pub cfg: MultiTenantConfig,
    /// Measured accesses for the run.
    pub total: u64,
}

/// A kv workload shrunk/grown to the scenario's page count.
fn kv(name: &str, pages: u64) -> WorkloadProfile {
    let mut w = WorkloadProfile::by_name(name).expect("kv workload");
    w.sim_pages = pages;
    w
}

/// The degradation roster: three well-behaved kv tenants plus an
/// adversary whose demand undershoots its uncompressed footprint — it
/// *needs* compression to fit, so turning its content incompressible
/// collapses its free list and trips the quarantine ladder.
fn degradation_cfg(p: &MtParams, policy: QosPolicyKind, adversarial: bool) -> MultiTenantConfig {
    let resident = TenantSpec::resident_frames(&kv("kv_zipf", p.pages));
    let well = |name: &str, workload: &str, seed: u64| {
        TenantSpec::new(name, kv(workload, p.pages), SchemeKind::Tmcc, seed)
            .with_floor(resident * 6 / 10)
            .with_demand(resident)
    };
    let adversary = TenantSpec::new("adversary", kv("kv_hostile", p.pages), SchemeKind::Tmcc, 99)
        .with_floor(resident / 2)
        .with_demand(resident * 7 / 10);
    let total = p.total;
    let churn = if adversarial {
        ChurnPlan::none()
            .with(
                total / 6,
                ChurnKind::Fault { roster: 3, kind: FaultKind::ContentShift { percent: 40 } },
            )
            .with(total / 6, ChurnKind::WorkingSetSpike { roster: 3, percent: 140 })
            .with(
                total / 2,
                ChurnKind::Fault { roster: 3, kind: FaultKind::ContentShift { percent: 0 } },
            )
            .with(total / 2, ChurnKind::WorkingSetSpike { roster: 3, percent: 100 })
    } else {
        ChurnPlan::none()
    };
    MultiTenantConfig::new((3 * resident + resident * 7 / 10) as u64, policy)
        .with_tenant(well("alpha", "kv_zipf", 11))
        .with_tenant(well("beta", "kv_cache", 22))
        .with_tenant(well("gamma", "kv_scan", 33))
        .with_tenant(adversary)
        .with_churn(churn)
        .with_quantum(p.quantum)
        .with_warmup(p.warmup)
        .with_seed(0xBEEF)
        .with_size_samples(p.size_samples)
        .with_audit()
}

/// The `mt_degradation` grid: {control, adversarial} under each policy.
pub fn degradation_points(scale: Scale) -> Vec<MtPoint> {
    let p = params(scale);
    let mut points = Vec::new();
    for policy in POLICIES {
        for (scenario, adversarial) in [("control", false), ("adversarial", true)] {
            points.push(MtPoint {
                scenario,
                cfg: degradation_cfg(&p, policy, adversarial),
                total: p.total,
            });
        }
    }
    points
}

/// The tail-latency roster: the hostile tenant never turns
/// incompressible here — it just spikes its working set mid-run, and the
/// question is how many rounds each policy lets the pressure breach
/// well-behaved guarantees before the arbiter rebalances.
fn tail_latency_cfg(p: &MtParams, policy: QosPolicyKind) -> MultiTenantConfig {
    let resident = TenantSpec::resident_frames(&kv("kv_zipf", p.pages));
    let well = |name: &str, workload: &str, seed: u64| {
        TenantSpec::new(name, kv(workload, p.pages), SchemeKind::Tmcc, seed)
            .with_floor(resident * 6 / 10)
            .with_demand(resident)
    };
    let bursty = TenantSpec::new("bursty", kv("kv_hostile", p.pages), SchemeKind::Tmcc, 77)
        .with_floor(resident / 2)
        .with_demand(resident * 7 / 10);
    let total = p.total;
    MultiTenantConfig::new((3 * resident + resident * 7 / 10) as u64, policy)
        .with_tenant(well("alpha", "kv_zipf", 41))
        .with_tenant(well("beta", "kv_cache", 42))
        .with_tenant(well("gamma", "kv_scan", 43))
        .with_tenant(bursty)
        .with_churn(
            ChurnPlan::none()
                .with(total / 3, ChurnKind::WorkingSetSpike { roster: 3, percent: 160 })
                .with(2 * total / 3, ChurnKind::WorkingSetSpike { roster: 3, percent: 100 }),
        )
        .with_quantum(p.quantum)
        .with_warmup(p.warmup)
        .with_seed(0xD00D)
        .with_size_samples(p.size_samples)
        .with_audit()
}

/// The `mt_tail_latency` grid: one spike scenario per policy.
pub fn tail_latency_points(scale: Scale) -> Vec<MtPoint> {
    let p = params(scale);
    POLICIES
        .into_iter()
        .map(|policy| MtPoint {
            scenario: "spike",
            cfg: tail_latency_cfg(&p, policy),
            total: p.total,
        })
        .collect()
}

/// The churn roster: five kv tenants over a pool that holds roughly
/// three and a half of them, so every arrival renegotiates budgets and
/// every departure returns contended frames.
fn churn_cfg(
    p: &MtParams,
    policy: QosPolicyKind,
    churn: ChurnPlan,
    seed: u64,
) -> MultiTenantConfig {
    let pages = (p.pages / 2).max(256);
    let resident = TenantSpec::resident_frames(&kv("kv_zipf", pages));
    let workloads = ["kv_zipf", "kv_cache", "kv_scan", "kv_zipf", "kv_cache"];
    let mut cfg = MultiTenantConfig::new((resident as u64) * 7 / 2, policy)
        .with_initial_tenants(3)
        .with_churn(churn)
        .with_quantum(p.quantum)
        .with_warmup(p.warmup)
        .with_seed(seed)
        .with_size_samples(p.size_samples)
        .with_audit();
    for (i, workload) in workloads.into_iter().enumerate() {
        cfg = cfg.with_tenant(
            TenantSpec::new(&format!("t{i}"), kv(workload, pages), SchemeKind::Tmcc, 50 + i as u64)
                .with_floor(resident / 2)
                .with_demand(resident),
        );
    }
    cfg
}

/// The `mt_churn_storm` grid: calm → gusty → storm, each under a
/// different policy so all three see churn coverage.
pub fn churn_storm_points(scale: Scale) -> Vec<MtPoint> {
    let p = params(scale);
    let pages = (p.pages / 2).max(256);
    let balloon = u64::from(TenantSpec::resident_frames(&kv("kv_zipf", pages))) / 6;
    let t = p.total;
    let calm = ChurnPlan::none()
        .with(t / 4, ChurnKind::Arrive { roster: 3 })
        .with(t / 2, ChurnKind::Depart { roster: 0 });
    let gusty = ChurnPlan::none()
        .with(t / 6, ChurnKind::Arrive { roster: 3 })
        .with(t / 3, ChurnKind::Arrive { roster: 4 })
        .with(t / 2, ChurnKind::Depart { roster: 1 })
        .with(2 * t / 3, ChurnKind::PoolShrink { frames: balloon })
        .with(5 * t / 6, ChurnKind::PoolGrow { frames: balloon });
    let storm = ChurnPlan::none()
        .with(t / 8, ChurnKind::Arrive { roster: 3 })
        .with(t / 6, ChurnKind::Fault { roster: 1, kind: FaultKind::CteFlushStorm })
        .with(t / 5, ChurnKind::WorkingSetSpike { roster: 2, percent: 180 })
        .with(t / 4, ChurnKind::Arrive { roster: 4 })
        .with(t / 3, ChurnKind::PoolShrink { frames: balloon })
        .with(t / 2, ChurnKind::Depart { roster: 0 })
        .with(t / 2, ChurnKind::Fault { roster: 2, kind: FaultKind::ContentShift { percent: 50 } })
        .with(2 * t / 3, ChurnKind::PoolGrow { frames: balloon })
        .with(3 * t / 4, ChurnKind::WorkingSetSpike { roster: 2, percent: 100 })
        .with(7 * t / 8, ChurnKind::Depart { roster: 3 });
    vec![
        MtPoint {
            scenario: "calm",
            cfg: churn_cfg(&p, QosPolicyKind::StrictPartition, calm, 0xCA11),
            total: p.total,
        },
        MtPoint {
            scenario: "gusty",
            cfg: churn_cfg(&p, QosPolicyKind::ProportionalShare, gusty, 0x6057),
            total: p.total,
        },
        MtPoint {
            scenario: "storm",
            cfg: churn_cfg(&p, QosPolicyKind::BestEffortFloors, storm, 0x5708),
            total: p.total,
        },
    ]
}

/// Fleet sizing: many small tenants instead of a few big ones. The
/// packed per-tenant metadata (CTE slot directory, succinct residency
/// maps, lazy page store) keeps each admitted `System` in the
/// kilobyte range, so a 100+-tenant roster costs less host memory than
/// the old 5-tenant scenarios did.
struct FleetParams {
    tenants: usize,
    pages: u64,
    warmup: u64,
    quantum: u64,
    total: u64,
    size_samples: usize,
}

fn fleet_params(scale: Scale) -> FleetParams {
    match scale {
        Scale::Full => FleetParams {
            tenants: 144,
            pages: 256,
            warmup: 400,
            quantum: 256,
            total: 48_000,
            size_samples: 8,
        },
        Scale::Quick => FleetParams {
            tenants: 112,
            pages: 128,
            warmup: 200,
            quantum: 128,
            total: 24_000,
            size_samples: 8,
        },
        Scale::Test => FleetParams {
            tenants: 24,
            pages: 96,
            warmup: 100,
            quantum: 64,
            total: 6_000,
            size_samples: 8,
        },
    }
}

/// The fleet roster: `tenants` small kv tenants cycling the three kv
/// shapes over a pool that holds ~60 % of their summed residency, with
/// late arrivals and a few departures for churn coverage. Tenant content
/// seeds cycle a small set so the size-model memo amortizes sampling
/// across the fleet.
fn fleet_cfg(p: &FleetParams, policy: QosPolicyKind) -> MultiTenantConfig {
    let resident = TenantSpec::resident_frames(&kv("kv_zipf", p.pages));
    let workloads = ["kv_zipf", "kv_cache", "kv_scan"];
    let pool = (p.tenants as u64) * (resident as u64) * 6 / 10;
    let t = p.total;
    let late = 4.min(p.tenants);
    let initial = p.tenants - late;
    let mut churn = ChurnPlan::none();
    for (j, at) in [t / 4, t / 3, t / 2, 2 * t / 3].into_iter().take(late).enumerate() {
        churn = churn.with(at, ChurnKind::Arrive { roster: initial + j });
    }
    churn = churn
        .with(3 * t / 5, ChurnKind::Depart { roster: 0 })
        .with(4 * t / 5, ChurnKind::Depart { roster: 1 });
    let mut cfg = MultiTenantConfig::new(pool, policy)
        .with_initial_tenants(initial)
        .with_churn(churn)
        .with_quantum(p.quantum)
        .with_warmup(p.warmup)
        .with_seed(0xF1EE7)
        .with_size_samples(p.size_samples)
        .with_audit();
    for i in 0..p.tenants {
        let workload = workloads[i % workloads.len()];
        cfg = cfg.with_tenant(
            TenantSpec::new(
                &format!("f{i:03}"),
                kv(workload, p.pages),
                SchemeKind::Tmcc,
                200 + (i as u64 % 10),
            )
            .with_floor(resident / 2)
            .with_demand(resident),
        );
    }
    cfg
}

/// The `mt_fleet` grid: the full roster once under each policy.
pub fn fleet_points(scale: Scale) -> Vec<MtPoint> {
    let p = fleet_params(scale);
    POLICIES
        .into_iter()
        .map(|policy| MtPoint { scenario: "fleet", cfg: fleet_cfg(&p, policy), total: p.total })
        .collect()
}

/// Fingerprint input covering every multi-tenant grid at `scale` —
/// folded into the sweep journal's config hash so MT scenario changes
/// invalidate a stale `--resume` journal.
pub fn grid_signature(scale: Scale) -> String {
    let mut sig = String::new();
    for (experiment, points) in [
        ("mt_degradation", degradation_points(scale)),
        ("mt_tail_latency", tail_latency_points(scale)),
        ("mt_churn_storm", churn_storm_points(scale)),
        ("mt_fleet", fleet_points(scale)),
    ] {
        for p in points {
            sig.push_str(&format!("{experiment}|{}|{}|{:?};", p.scenario, p.total, p.cfg));
        }
    }
    sig
}

#[derive(Serialize)]
struct Row {
    scenario: &'static str,
    policy: &'static str,
    total_accesses: u64,
    report: MultiTenantReport,
}

fn run_grid(ctx: &SweepCtx, title: &str, stem: &str, points: Vec<MtPoint>) {
    let out: Vec<Row> = ctx.par_map(points, |p| {
        let policy = p.cfg.policy.name();
        let report = ctx.run_mt(p.cfg, p.total);
        Row { scenario: p.scenario, policy, total_accesses: p.total, report }
    });
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            let r = &row.report;
            let degraded: u64 = r.tenants.iter().map(|t| t.degraded_entries).sum();
            let throttled: u64 = r.tenants.iter().map(|t| t.throttled_quanta).sum();
            vec![
                row.scenario.to_string(),
                row.policy.to_string(),
                r.rounds.to_string(),
                r.churn_events_applied.to_string(),
                r.admission_rejections.to_string(),
                degraded.to_string(),
                throttled.to_string(),
                r.guarantee_breach_rounds.to_string(),
            ]
        })
        .collect();
    print_table(
        title,
        &["scenario", "policy", "rounds", "churn", "rejected", "degraded", "throttled", "breaches"],
        &rows,
    );
    ctx.emit(stem, &out);
}

/// `mt_degradation`: adversarial-neighbor isolation under each policy.
pub fn run_degradation(ctx: &SweepCtx) {
    run_grid(
        ctx,
        "Multi-tenant degradation — adversarial neighbor vs control, per QoS policy",
        "mt_degradation",
        degradation_points(ctx.scale()),
    );
}

/// `mt_tail_latency`: guarantee pressure under mid-run demand spikes.
pub fn run_tail_latency(ctx: &SweepCtx) {
    run_grid(
        ctx,
        "Multi-tenant tail pressure — working-set spikes, per QoS policy",
        "mt_tail_latency",
        tail_latency_points(ctx.scale()),
    );
}

/// `mt_churn_storm`: arrival/departure/ballooning storms of rising
/// intensity.
pub fn run_churn_storm(ctx: &SweepCtx) {
    run_grid(
        ctx,
        "Multi-tenant churn — calm, gusty and storm arrival/departure mixes",
        "mt_churn_storm",
        churn_storm_points(ctx.scale()),
    );
}

/// `mt_fleet`: a 100+-tenant roster per policy — the packed-metadata
/// stress test (each admitted tenant must stay kilobyte-scale on the
/// host).
pub fn run_fleet(ctx: &SweepCtx) {
    run_grid(
        ctx,
        "Multi-tenant fleet — 100+ small tenants per QoS policy",
        "mt_fleet",
        fleet_points(ctx.scale()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The journal invalidation contract: the signature must cover every
    /// mt grid and change whenever their scale-dependent parameters do.
    #[test]
    fn grid_signature_covers_all_grids_and_varies_by_scale() {
        let quick = grid_signature(Scale::Quick);
        for experiment in ["mt_degradation|", "mt_tail_latency|", "mt_churn_storm|", "mt_fleet|"] {
            assert!(quick.contains(experiment), "signature misses {experiment}");
        }
        assert_ne!(quick, grid_signature(Scale::Test));
        assert_ne!(quick, grid_signature(Scale::Full));
        // Deterministic: the hash must be stable across processes.
        assert_eq!(quick, grid_signature(Scale::Quick));
    }

    /// The fleet acceptance floor: 100+ tenants at every non-test scale,
    /// floors admissible within the pool.
    #[test]
    fn fleet_rosters_are_fleet_sized_and_admissible() {
        for scale in [Scale::Quick, Scale::Full] {
            for point in fleet_points(scale) {
                assert!(
                    point.cfg.roster.len() >= 100,
                    "{} fleet roster has only {} tenants",
                    scale.name(),
                    point.cfg.roster.len()
                );
                let floors: u64 = point.cfg.roster.iter().map(|t| u64::from(t.floor_frames)).sum();
                assert!(floors <= point.cfg.pool_frames, "fleet floors exceed the pool");
            }
        }
        for point in fleet_points(Scale::Test) {
            assert!(point.cfg.roster.len() >= 16, "test fleet still exercises many tenants");
        }
    }
}
