//! Multi-tenant scenarios: isolation under an adversarial neighbor
//! (`mt_degradation`), guarantee pressure under demand spikes
//! (`mt_tail_latency`), and arrival/departure/ballooning storms
//! (`mt_churn_storm`). Every scenario runs a full [`MultiTenantSystem`]
//! — per-tenant page tables, TLBs and compression state over one shared
//! [`tmcc::tenancy::CapacityArbiter`] — with per-round invariant audits
//! on, and emits the complete per-tenant report.
//!
//! The scenario builders are scale-aware (roster footprints, warmups,
//! quanta and run lengths are sized per [`Scale`]), so the whole grid is
//! part of the journal's config hash: [`grid_signature`] feeds
//! `journal::scale_config_hash`, and a `--resume` against a journal
//! written under different scenario parameters starts cold instead of
//! replaying stale multi-tenant records.

use crate::print_table;
use crate::sweep::{Scale, SweepCtx};
use serde::Serialize;
use tmcc::tenancy::{ChurnKind, ChurnPlan, MultiTenantConfig, TenantSpec};
use tmcc::{FaultKind, MultiTenantReport, QosPolicyKind, SchemeKind};
use tmcc_workloads::WorkloadProfile;

/// Per-scale scenario sizing. The quick tier mirrors the core acceptance
/// test (`tenancy_integration.rs`) exactly, so the quarantine dynamics it
/// asserts — adversary enters *and* exits degraded mode while every
/// well-behaved floor holds — are what `mt_degradation --quick` shows.
struct MtParams {
    pages: u64,
    warmup: u64,
    quantum: u64,
    total: u64,
    size_samples: usize,
}

fn params(scale: Scale) -> MtParams {
    match scale {
        Scale::Full => {
            MtParams { pages: 2_048, warmup: 2_000, quantum: 384, total: 56_000, size_samples: 16 }
        }
        Scale::Quick => {
            MtParams { pages: 1_024, warmup: 800, quantum: 256, total: 28_000, size_samples: 8 }
        }
        Scale::Test => {
            MtParams { pages: 512, warmup: 300, quantum: 128, total: 9_000, size_samples: 8 }
        }
    }
}

/// All three QoS policies, in registry order.
const POLICIES: [QosPolicyKind; 3] = [
    QosPolicyKind::StrictPartition,
    QosPolicyKind::ProportionalShare,
    QosPolicyKind::BestEffortFloors,
];

/// One point of a multi-tenant grid.
#[derive(Clone)]
pub struct MtPoint {
    /// Scenario label within the experiment (e.g. `adversarial`).
    pub scenario: &'static str,
    /// The full scenario configuration.
    pub cfg: MultiTenantConfig,
    /// Measured accesses for the run.
    pub total: u64,
}

/// A kv workload shrunk/grown to the scenario's page count.
fn kv(name: &str, pages: u64) -> WorkloadProfile {
    let mut w = WorkloadProfile::by_name(name).expect("kv workload");
    w.sim_pages = pages;
    w
}

/// The degradation roster: three well-behaved kv tenants plus an
/// adversary whose demand undershoots its uncompressed footprint — it
/// *needs* compression to fit, so turning its content incompressible
/// collapses its free list and trips the quarantine ladder.
fn degradation_cfg(p: &MtParams, policy: QosPolicyKind, adversarial: bool) -> MultiTenantConfig {
    let resident = TenantSpec::resident_frames(&kv("kv_zipf", p.pages));
    let well = |name: &str, workload: &str, seed: u64| {
        TenantSpec::new(name, kv(workload, p.pages), SchemeKind::Tmcc, seed)
            .with_floor(resident * 6 / 10)
            .with_demand(resident)
    };
    let adversary = TenantSpec::new("adversary", kv("kv_hostile", p.pages), SchemeKind::Tmcc, 99)
        .with_floor(resident / 2)
        .with_demand(resident * 7 / 10);
    let total = p.total;
    let churn = if adversarial {
        ChurnPlan::none()
            .with(
                total / 6,
                ChurnKind::Fault { roster: 3, kind: FaultKind::ContentShift { percent: 40 } },
            )
            .with(total / 6, ChurnKind::WorkingSetSpike { roster: 3, percent: 140 })
            .with(
                total / 2,
                ChurnKind::Fault { roster: 3, kind: FaultKind::ContentShift { percent: 0 } },
            )
            .with(total / 2, ChurnKind::WorkingSetSpike { roster: 3, percent: 100 })
    } else {
        ChurnPlan::none()
    };
    MultiTenantConfig::new((3 * resident + resident * 7 / 10) as u64, policy)
        .with_tenant(well("alpha", "kv_zipf", 11))
        .with_tenant(well("beta", "kv_cache", 22))
        .with_tenant(well("gamma", "kv_scan", 33))
        .with_tenant(adversary)
        .with_churn(churn)
        .with_quantum(p.quantum)
        .with_warmup(p.warmup)
        .with_seed(0xBEEF)
        .with_size_samples(p.size_samples)
        .with_audit()
}

/// The `mt_degradation` grid: {control, adversarial} under each policy.
pub fn degradation_points(scale: Scale) -> Vec<MtPoint> {
    let p = params(scale);
    let mut points = Vec::new();
    for policy in POLICIES {
        for (scenario, adversarial) in [("control", false), ("adversarial", true)] {
            points.push(MtPoint {
                scenario,
                cfg: degradation_cfg(&p, policy, adversarial),
                total: p.total,
            });
        }
    }
    points
}

/// The tail-latency roster: the hostile tenant never turns
/// incompressible here — it just spikes its working set mid-run, and the
/// question is how many rounds each policy lets the pressure breach
/// well-behaved guarantees before the arbiter rebalances.
fn tail_latency_cfg(p: &MtParams, policy: QosPolicyKind) -> MultiTenantConfig {
    let resident = TenantSpec::resident_frames(&kv("kv_zipf", p.pages));
    let well = |name: &str, workload: &str, seed: u64| {
        TenantSpec::new(name, kv(workload, p.pages), SchemeKind::Tmcc, seed)
            .with_floor(resident * 6 / 10)
            .with_demand(resident)
    };
    let bursty = TenantSpec::new("bursty", kv("kv_hostile", p.pages), SchemeKind::Tmcc, 77)
        .with_floor(resident / 2)
        .with_demand(resident * 7 / 10);
    let total = p.total;
    MultiTenantConfig::new((3 * resident + resident * 7 / 10) as u64, policy)
        .with_tenant(well("alpha", "kv_zipf", 41))
        .with_tenant(well("beta", "kv_cache", 42))
        .with_tenant(well("gamma", "kv_scan", 43))
        .with_tenant(bursty)
        .with_churn(
            ChurnPlan::none()
                .with(total / 3, ChurnKind::WorkingSetSpike { roster: 3, percent: 160 })
                .with(2 * total / 3, ChurnKind::WorkingSetSpike { roster: 3, percent: 100 }),
        )
        .with_quantum(p.quantum)
        .with_warmup(p.warmup)
        .with_seed(0xD00D)
        .with_size_samples(p.size_samples)
        .with_audit()
}

/// The `mt_tail_latency` grid: one spike scenario per policy.
pub fn tail_latency_points(scale: Scale) -> Vec<MtPoint> {
    let p = params(scale);
    POLICIES
        .into_iter()
        .map(|policy| MtPoint {
            scenario: "spike",
            cfg: tail_latency_cfg(&p, policy),
            total: p.total,
        })
        .collect()
}

/// The churn roster: five kv tenants over a pool that holds roughly
/// three and a half of them, so every arrival renegotiates budgets and
/// every departure returns contended frames.
fn churn_cfg(
    p: &MtParams,
    policy: QosPolicyKind,
    churn: ChurnPlan,
    seed: u64,
) -> MultiTenantConfig {
    let pages = (p.pages / 2).max(256);
    let resident = TenantSpec::resident_frames(&kv("kv_zipf", pages));
    let workloads = ["kv_zipf", "kv_cache", "kv_scan", "kv_zipf", "kv_cache"];
    let mut cfg = MultiTenantConfig::new((resident as u64) * 7 / 2, policy)
        .with_initial_tenants(3)
        .with_churn(churn)
        .with_quantum(p.quantum)
        .with_warmup(p.warmup)
        .with_seed(seed)
        .with_size_samples(p.size_samples)
        .with_audit();
    for (i, workload) in workloads.into_iter().enumerate() {
        cfg = cfg.with_tenant(
            TenantSpec::new(&format!("t{i}"), kv(workload, pages), SchemeKind::Tmcc, 50 + i as u64)
                .with_floor(resident / 2)
                .with_demand(resident),
        );
    }
    cfg
}

/// The `mt_churn_storm` grid: calm → gusty → storm, each under a
/// different policy so all three see churn coverage.
pub fn churn_storm_points(scale: Scale) -> Vec<MtPoint> {
    let p = params(scale);
    let pages = (p.pages / 2).max(256);
    let balloon = u64::from(TenantSpec::resident_frames(&kv("kv_zipf", pages))) / 6;
    let t = p.total;
    let calm = ChurnPlan::none()
        .with(t / 4, ChurnKind::Arrive { roster: 3 })
        .with(t / 2, ChurnKind::Depart { roster: 0 });
    let gusty = ChurnPlan::none()
        .with(t / 6, ChurnKind::Arrive { roster: 3 })
        .with(t / 3, ChurnKind::Arrive { roster: 4 })
        .with(t / 2, ChurnKind::Depart { roster: 1 })
        .with(2 * t / 3, ChurnKind::PoolShrink { frames: balloon })
        .with(5 * t / 6, ChurnKind::PoolGrow { frames: balloon });
    let storm = ChurnPlan::none()
        .with(t / 8, ChurnKind::Arrive { roster: 3 })
        .with(t / 6, ChurnKind::Fault { roster: 1, kind: FaultKind::CteFlushStorm })
        .with(t / 5, ChurnKind::WorkingSetSpike { roster: 2, percent: 180 })
        .with(t / 4, ChurnKind::Arrive { roster: 4 })
        .with(t / 3, ChurnKind::PoolShrink { frames: balloon })
        .with(t / 2, ChurnKind::Depart { roster: 0 })
        .with(t / 2, ChurnKind::Fault { roster: 2, kind: FaultKind::ContentShift { percent: 50 } })
        .with(2 * t / 3, ChurnKind::PoolGrow { frames: balloon })
        .with(3 * t / 4, ChurnKind::WorkingSetSpike { roster: 2, percent: 100 })
        .with(7 * t / 8, ChurnKind::Depart { roster: 3 });
    vec![
        MtPoint {
            scenario: "calm",
            cfg: churn_cfg(&p, QosPolicyKind::StrictPartition, calm, 0xCA11),
            total: p.total,
        },
        MtPoint {
            scenario: "gusty",
            cfg: churn_cfg(&p, QosPolicyKind::ProportionalShare, gusty, 0x6057),
            total: p.total,
        },
        MtPoint {
            scenario: "storm",
            cfg: churn_cfg(&p, QosPolicyKind::BestEffortFloors, storm, 0x5708),
            total: p.total,
        },
    ]
}

/// Fleet sizing: many small tenants instead of a few big ones. The
/// packed per-tenant metadata (CTE slot directory, succinct residency
/// maps, lazy page store) keeps each admitted `System` in the kilobyte
/// range, and the round-barrier scheduler runs the tenants' quanta in
/// parallel, so a thousand-tenant roster is cheaper per access than the
/// old 5-tenant scenarios were.
struct FleetParams {
    tenants: usize,
    pages: u64,
    warmup: u64,
    quantum: u64,
    total: u64,
    size_samples: usize,
}

fn fleet_params(scale: Scale) -> FleetParams {
    match scale {
        Scale::Full => FleetParams {
            tenants: 4_096,
            pages: 64,
            warmup: 100,
            quantum: 64,
            total: 800_000,
            size_samples: 8,
        },
        Scale::Quick => FleetParams {
            tenants: 1_024,
            pages: 64,
            warmup: 100,
            quantum: 64,
            total: 200_000,
            size_samples: 8,
        },
        Scale::Test => FleetParams {
            tenants: 192,
            pages: 64,
            warmup: 50,
            quantum: 64,
            total: 24_000,
            size_samples: 8,
        },
    }
}

/// The fleet roster: `tenants` small kv tenants cycling the three kv
/// shapes over a pool that holds ~60 % of their summed residency, with
/// late arrivals and a few departures for churn coverage. Tenant content
/// seeds cycle a small set so the size-model memo amortizes sampling
/// across the fleet.
fn fleet_cfg(p: &FleetParams, policy: QosPolicyKind) -> MultiTenantConfig {
    let resident = TenantSpec::resident_frames(&kv("kv_zipf", p.pages));
    let workloads = ["kv_zipf", "kv_cache", "kv_scan"];
    let pool = (p.tenants as u64) * (resident as u64) * 6 / 10;
    let t = p.total;
    let late = 4.min(p.tenants);
    let initial = p.tenants - late;
    let mut churn = ChurnPlan::none();
    for (j, at) in [t / 4, t / 3, t / 2, 2 * t / 3].into_iter().take(late).enumerate() {
        churn = churn.with(at, ChurnKind::Arrive { roster: initial + j });
    }
    churn = churn
        .with(3 * t / 5, ChurnKind::Depart { roster: 0 })
        .with(4 * t / 5, ChurnKind::Depart { roster: 1 });
    let mut cfg = MultiTenantConfig::new(pool, policy)
        .with_initial_tenants(initial)
        .with_churn(churn)
        .with_quantum(p.quantum)
        .with_warmup(p.warmup)
        .with_seed(0xF1EE7)
        .with_size_samples(p.size_samples)
        .with_audit();
    for i in 0..p.tenants {
        let workload = workloads[i % workloads.len()];
        cfg = cfg.with_tenant(
            TenantSpec::new(
                &format!("f{i:03}"),
                kv(workload, p.pages),
                SchemeKind::Tmcc,
                200 + (i as u64 % 10),
            )
            .with_floor(resident / 2)
            .with_demand(resident),
        );
    }
    cfg
}

/// Pool sizings for the capacity-overcommit frontier, as a percentage
/// of the roster's summed steady demand. The report's `overcommit_x100`
/// is the inverse (pool at 60 % of demand ⇒ overcommit 166 = 1.66×).
const FRONTIER_POOL_PCT: [(u64, &str); 5] = [
    (100, "frontier-1.0x"),
    (80, "frontier-1.2x"),
    (60, "frontier-1.7x"),
    (45, "frontier-2.2x"),
    (35, "frontier-2.9x"),
];

/// One overcommit-frontier point: a quarter-size steady fleet over a
/// pool holding `pool_pct` % of the summed demand, with one mid-run
/// balloon shrink/recover cycle so the breach-rate axis is exercised —
/// the deeper the overcommit, the longer the shrink keeps guarantees
/// underwater.
fn frontier_cfg(p: &FleetParams, pool_pct: u64) -> MultiTenantConfig {
    let tenants = (p.tenants / 4).max(16);
    let resident = TenantSpec::resident_frames(&kv("kv_zipf", p.pages));
    let workloads = ["kv_zipf", "kv_cache", "kv_scan"];
    let demand_total = tenants as u64 * resident as u64;
    let pool = (demand_total * pool_pct / 100).max(u64::from(resident));
    let t = p.total / 4;
    let balloon = pool / 5;
    let churn = ChurnPlan::none()
        .with(t / 3, ChurnKind::PoolShrink { frames: balloon })
        .with(2 * t / 3, ChurnKind::PoolGrow { frames: balloon });
    let mut cfg = MultiTenantConfig::new(pool, QosPolicyKind::ProportionalShare)
        .with_initial_tenants(tenants)
        .with_churn(churn)
        .with_quantum(p.quantum)
        .with_warmup(p.warmup)
        .with_seed(0xF407)
        .with_size_samples(p.size_samples)
        .with_audit();
    for i in 0..tenants {
        let workload = workloads[i % workloads.len()];
        cfg = cfg.with_tenant(
            TenantSpec::new(
                &format!("o{i:03}"),
                kv(workload, p.pages),
                SchemeKind::Tmcc,
                300 + (i as u64 % 10),
            )
            .with_floor(resident / 2)
            .with_demand(resident),
        );
    }
    cfg
}

/// The `mt_fleet` grid: the full roster once under each policy, then the
/// overcommit-frontier sweep (quarter-size roster, proportional share,
/// pool swept from fully provisioned to 2.9× overcommitted).
pub fn fleet_points(scale: Scale) -> Vec<MtPoint> {
    let p = fleet_params(scale);
    let mut points: Vec<MtPoint> = POLICIES
        .into_iter()
        .map(|policy| MtPoint { scenario: "fleet", cfg: fleet_cfg(&p, policy), total: p.total })
        .collect();
    for (pool_pct, scenario) in FRONTIER_POOL_PCT {
        points.push(MtPoint { scenario, cfg: frontier_cfg(&p, pool_pct), total: p.total / 4 });
    }
    points
}

/// Fingerprint input covering every multi-tenant grid at `scale` —
/// folded into the sweep journal's config hash so MT scenario changes
/// invalidate a stale `--resume` journal.
pub fn grid_signature(scale: Scale) -> String {
    let mut sig = String::new();
    for (experiment, points) in [
        ("mt_degradation", degradation_points(scale)),
        ("mt_tail_latency", tail_latency_points(scale)),
        ("mt_churn_storm", churn_storm_points(scale)),
        ("mt_fleet", fleet_points(scale)),
    ] {
        for p in points {
            sig.push_str(&format!("{experiment}|{}|{}|{:?};", p.scenario, p.total, p.cfg));
        }
    }
    sig
}

#[derive(Serialize)]
struct Row {
    scenario: &'static str,
    policy: &'static str,
    total_accesses: u64,
    report: MultiTenantReport,
}

/// Fleet-scale emission: a thousand-tenant roster's full per-tenant
/// report list would put ~8 MiB per sweep into the golden files, so the
/// emitted row carries the fleet-wide aggregates, a deterministic
/// every-[`FLEET_SAMPLE_STRIDE`]th tenant sample in cleartext, and an
/// order-sensitive FNV-1a digest over *every* per-tenant report — the
/// golden byte-identity checks across `--jobs` counts and kill-and-resume
/// still cover each tenant's full report through the digest.
#[derive(Serialize)]
struct FleetRow {
    scenario: &'static str,
    policy: &'static str,
    total_accesses: u64,
    /// Roster size before sampling (the emitted report's tenant list is
    /// the sample, not the roster).
    roster_tenants: usize,
    /// FNV-1a 64 over the serialized per-tenant reports in roster order.
    tenant_digest: String,
    report: MultiTenantReport,
}

const FLEET_SAMPLE_STRIDE: usize = 128;

fn fleet_row(
    scenario: &'static str,
    total_accesses: u64,
    mut report: MultiTenantReport,
) -> FleetRow {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut digest = FNV_OFFSET;
    for tenant in &report.tenants {
        let bytes = serde_json::to_string(tenant).unwrap_or_default();
        for b in bytes.bytes() {
            digest ^= u64::from(b);
            digest = digest.wrapping_mul(FNV_PRIME);
        }
    }
    let roster_tenants = report.tenants.len();
    let mut keep = 0;
    report.tenants.retain(|_| {
        let sampled = keep % FLEET_SAMPLE_STRIDE == 0;
        keep += 1;
        sampled
    });
    FleetRow {
        scenario,
        policy: report.policy,
        total_accesses,
        roster_tenants,
        tenant_digest: format!("{digest:016x}"),
        report,
    }
}

fn run_grid(ctx: &SweepCtx, title: &str, stem: &str, points: Vec<MtPoint>) {
    // Points run sequentially; --jobs parallelism runs the tenants'
    // quanta *within* each point (see `SweepCtx::seq_map`).
    let out: Vec<Row> = ctx.seq_map(points, |p| {
        let policy = p.cfg.policy.name();
        let report = ctx.run_mt(p.cfg, p.total);
        Row { scenario: p.scenario, policy, total_accesses: p.total, report }
    });
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            let r = &row.report;
            let degraded: u64 = r.tenants.iter().map(|t| t.degraded_entries).sum();
            let throttled: u64 = r.tenants.iter().map(|t| t.throttled_quanta).sum();
            vec![
                row.scenario.to_string(),
                row.policy.to_string(),
                r.rounds.to_string(),
                r.churn_events_applied.to_string(),
                r.admission_rejections.to_string(),
                degraded.to_string(),
                throttled.to_string(),
                r.guarantee_breach_rounds.to_string(),
            ]
        })
        .collect();
    print_table(
        title,
        &["scenario", "policy", "rounds", "churn", "rejected", "degraded", "throttled", "breaches"],
        &rows,
    );
    ctx.emit(stem, &out);
}

/// `mt_degradation`: adversarial-neighbor isolation under each policy.
pub fn run_degradation(ctx: &SweepCtx) {
    run_grid(
        ctx,
        "Multi-tenant degradation — adversarial neighbor vs control, per QoS policy",
        "mt_degradation",
        degradation_points(ctx.scale()),
    );
}

/// `mt_tail_latency`: guarantee pressure under mid-run demand spikes.
pub fn run_tail_latency(ctx: &SweepCtx) {
    run_grid(
        ctx,
        "Multi-tenant tail pressure — working-set spikes, per QoS policy",
        "mt_tail_latency",
        tail_latency_points(ctx.scale()),
    );
}

/// `mt_churn_storm`: arrival/departure/ballooning storms of rising
/// intensity.
pub fn run_churn_storm(ctx: &SweepCtx) {
    run_grid(
        ctx,
        "Multi-tenant churn — calm, gusty and storm arrival/departure mixes",
        "mt_churn_storm",
        churn_storm_points(ctx.scale()),
    );
}

/// `mt_fleet`: a thousand-tenant roster per policy plus the overcommit
/// frontier — the fleet-scale figures (merged latency percentiles and
/// the achieved-footprint / breach-rate curve).
pub fn run_fleet(ctx: &SweepCtx) {
    let out: Vec<FleetRow> = ctx.seq_map(fleet_points(ctx.scale()), |p| {
        let report = ctx.run_mt(p.cfg, p.total);
        fleet_row(p.scenario, p.total, report)
    });
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            let r = &row.report;
            vec![
                row.scenario.to_string(),
                row.policy.to_string(),
                row.roster_tenants.to_string(),
                r.rounds.to_string(),
                r.admission_rejections.to_string(),
                r.fleet_lat_p50_ns.to_string(),
                r.fleet_lat_p95_ns.to_string(),
                r.fleet_lat_p99_ns.to_string(),
                r.fleet_lat_p999_ns.to_string(),
                format!("{}.{:02}x", r.overcommit_x100 / 100, r.overcommit_x100 % 100),
                (r.achieved_footprint_bytes >> 20).to_string(),
                r.breach_rate_ppm.to_string(),
            ]
        })
        .collect();
    print_table(
        "Multi-tenant fleet — latency percentiles and the capacity-overcommit frontier",
        &[
            "scenario",
            "policy",
            "tenants",
            "rounds",
            "rejected",
            "p50ns",
            "p95ns",
            "p99ns",
            "p999ns",
            "overcommit",
            "footprint-MiB",
            "breach-ppm",
        ],
        &rows,
    );
    ctx.emit("mt_fleet", &out);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The journal invalidation contract: the signature must cover every
    /// mt grid and change whenever their scale-dependent parameters do.
    #[test]
    fn grid_signature_covers_all_grids_and_varies_by_scale() {
        let quick = grid_signature(Scale::Quick);
        for experiment in ["mt_degradation|", "mt_tail_latency|", "mt_churn_storm|", "mt_fleet|"] {
            assert!(quick.contains(experiment), "signature misses {experiment}");
        }
        assert_ne!(quick, grid_signature(Scale::Test));
        assert_ne!(quick, grid_signature(Scale::Full));
        // Deterministic: the hash must be stable across processes.
        assert_eq!(quick, grid_signature(Scale::Quick));
    }

    /// The fleet acceptance floor: ≥1024 tenants at quick scale, ≥4096
    /// at full, with the main fleet rosters' floors admissible within
    /// the pool (the frontier points deliberately oversubscribe).
    #[test]
    fn fleet_rosters_are_fleet_sized_and_admissible() {
        for (scale, floor) in [(Scale::Quick, 1_024), (Scale::Full, 4_096)] {
            let points = fleet_points(scale);
            for point in points.iter().filter(|p| p.scenario == "fleet") {
                assert!(
                    point.cfg.roster.len() >= floor,
                    "{} fleet roster has only {} tenants (need {floor})",
                    scale.name(),
                    point.cfg.roster.len()
                );
                let floors: u64 = point.cfg.roster.iter().map(|t| u64::from(t.floor_frames)).sum();
                assert!(floors <= point.cfg.pool_frames, "fleet floors exceed the pool");
            }
        }
        for point in fleet_points(Scale::Test).iter().filter(|p| p.scenario == "fleet") {
            assert!(point.cfg.roster.len() >= 128, "test fleet still exercises many tenants");
        }
    }

    /// The frontier sweep spans strictly increasing overcommit: the
    /// summed roster demand is fixed while the pool shrinks point to
    /// point, and every pool still covers at least one tenant.
    #[test]
    fn frontier_points_sweep_overcommit_monotonically() {
        for scale in [Scale::Test, Scale::Quick, Scale::Full] {
            let points = fleet_points(scale);
            let frontier: Vec<_> =
                points.iter().filter(|p| p.scenario.starts_with("frontier")).collect();
            assert_eq!(frontier.len(), FRONTIER_POOL_PCT.len());
            let mut last_pool = u64::MAX;
            for point in &frontier {
                assert!(point.cfg.pool_frames < last_pool, "frontier pools must shrink");
                last_pool = point.cfg.pool_frames;
                assert!(point.cfg.roster.len() >= 16);
            }
        }
    }
}
