//! Robustness sweep: capacity shocks of increasing severity.
//!
//! For each severity, a balloon deflates mid-run (removing a fraction of
//! the DRAM frame budget), holds the pressure, then reinflates. The sweep
//! records how the two-level scheme absorbed the shock — emergency
//! eviction bursts, raw-store fallbacks, time spent in degraded mode,
//! recoveries — alongside the performance it retained, all under
//! invariant auditing. The whole sweep is seed-deterministic: rerunning
//! it produces a byte-identical `results/robustness_sweep.json`.
//!
//! The shock window scales with the run: with warmup `W` and measured
//! accesses `M`, the balloon deflates at `W + M/8` and reinflates at
//! `W + 5M/8` (the paper-scale run: 65k and 85k of a 60k+40k run).

use crate::print_table;
use crate::sweep::SweepCtx;
use serde::Serialize;
use tmcc::{FaultKind, FaultPlan, SchemeKind, System, SystemConfig};
use tmcc_workloads::WorkloadProfile;

/// Shrink fractions of the frame budget, per severity.
const SEVERITIES: &[(&str, u64)] = &[
    ("none", 0),     // control: no fault, same seed
    ("mild", 8),     // budget/8 reclaimed
    ("moderate", 4), // budget/4 reclaimed
    ("severe", 2),   // budget/2 reclaimed
];

#[derive(Serialize)]
struct Row {
    severity: &'static str,
    shrink_frames: u64,
    completed: bool,
    error: Option<String>,
    faults_injected: u64,
    emergency_evictions: u64,
    raw_fallbacks: u64,
    recoveries: u64,
    degraded_ns: f64,
    migration_stall_ns: f64,
    perf_accesses_per_us: f64,
    effective_ratio: f64,
}

fn pressured_cfg() -> SystemConfig {
    let mut w = WorkloadProfile::by_name("canneal").expect("known workload");
    w.sim_pages = 4_096;
    let cfg = SystemConfig::new(w, SchemeKind::Tmcc);
    let min = System::min_budget_bytes(&cfg);
    let budget = min + (cfg.footprint_bytes().saturating_sub(min)) / 2;
    cfg.with_budget(budget)
}

pub fn run(ctx: &SweepCtx) {
    // Measured window is 2/5 of the scale's standard run (paper scale:
    // 40k of 100k); the shock sits inside it.
    let measured = ctx.accesses() * 2 / 5;
    let warmup = ctx.scale().warmup().unwrap_or_else(|| pressured_cfg().warmup_accesses);
    let shock_at = warmup + measured / 8;
    let relief_at = warmup + measured * 5 / 8;
    let out: Vec<Row> = ctx.par_map(SEVERITIES.to_vec(), |(severity, divisor)| {
        let cfg = pressured_cfg();
        let frames = cfg.dram_budget_bytes.expect("budget set") / 4096;
        let shrink = frames.checked_div(divisor).unwrap_or(0);
        let plan = if shrink == 0 {
            FaultPlan::none()
        } else {
            FaultPlan::none()
                .with(shock_at, FaultKind::ShrinkBudget { frames: shrink as u32 })
                .with(relief_at, FaultKind::GrowBudget { frames: shrink as u32 })
        };
        match ctx.try_run(cfg.with_fault_plan(plan).with_audit(), measured) {
            Ok(r) => Row {
                severity,
                shrink_frames: shrink,
                completed: true,
                error: None,
                faults_injected: r.stats.faults_injected,
                emergency_evictions: r.stats.emergency_evictions,
                raw_fallbacks: r.stats.raw_fallbacks,
                recoveries: r.stats.recoveries,
                degraded_ns: r.stats.degraded_ns,
                migration_stall_ns: r.stats.migration_stall_ns,
                perf_accesses_per_us: r.perf_accesses_per_us(),
                effective_ratio: r.stats.effective_ratio(),
            },
            Err(e) => Row {
                severity,
                shrink_frames: shrink,
                completed: false,
                error: Some(e.to_string()),
                faults_injected: 0,
                emergency_evictions: 0,
                raw_fallbacks: 0,
                recoveries: 0,
                degraded_ns: 0.0,
                migration_stall_ns: 0.0,
                perf_accesses_per_us: 0.0,
                effective_ratio: 0.0,
            },
        }
    });
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![
                row.severity.to_string(),
                row.shrink_frames.to_string(),
                row.completed.to_string(),
                row.emergency_evictions.to_string(),
                row.raw_fallbacks.to_string(),
                row.recoveries.to_string(),
                format!("{:.0}", row.degraded_ns),
                format!("{:.2}", row.perf_accesses_per_us),
            ]
        })
        .collect();
    print_table(
        "Robustness sweep — balloon shocks of increasing severity (canneal, TMCC)",
        &[
            "severity",
            "shrink",
            "completed",
            "emerg evict",
            "raw fb",
            "recoveries",
            "degraded ns",
            "acc/us",
        ],
        &rows,
    );
    let control = out.first().expect("control row").perf_accesses_per_us;
    for r in out.iter().skip(1) {
        if r.completed && control > 0.0 {
            println!(
                "{:>9}: retained {:.1}% of control performance through the shock",
                r.severity,
                r.perf_accesses_per_us / control * 100.0
            );
        }
    }
    ctx.emit("robustness_sweep", &out);
}
