//! Table I: synthesis results (area/power) for the memory-specialized
//! ASIC Deflate.
//!
//! This reproduction cannot run a 7 nm synthesis flow; Table I's values
//! are **model constants** from the paper, exposed through the
//! [`tmcc_deflate::AreaModel`] so the design-space-exploration example can
//! scale them with CAM size and Huffman code count (§V-B2's scaling data
//! points validate the model).

use crate::print_table;
use crate::sweep::SweepCtx;
use serde::Serialize;
use tmcc_deflate::AreaModel;

#[derive(Serialize)]
struct Row {
    module: &'static str,
    area_mm2: f64,
    power_mw: f64,
}

pub fn run(ctx: &SweepCtx) {
    let m = AreaModel::paper_default();
    let rows_data = [
        ("LZ Decompressor", m.lz_decompressor()),
        ("LZ Compressor", m.lz_compressor()),
        ("Huffman Decompressor", m.huffman_decompressor()),
        ("Huffman Compressor", m.huffman_compressor()),
        ("Complete Unit", m.complete_unit()),
    ];
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (name, a) in rows_data {
        rows.push(vec![
            name.to_string(),
            format!("{:.3} mm2", a.area_mm2),
            format!("{:.0} mW", a.power_mw),
        ]);
        out.push(Row { module: name, area_mm2: a.area_mm2, power_mw: a.power_mw });
    }
    print_table(
        "Table I — ASIC Deflate synthesis (7nm ASAP @0.7V model)",
        &["module", "area", "power"],
        &rows,
    );
    println!(
        "\nPaper: complete unit 0.13 mm2 / 447 mW at 2.5 GHz.\n\
         Cross-check (§V-B2): a 4 KiB CAM would cost {:.2} mm2 for the LZ compressor\n\
         (paper: 0.24 mm2) and {:.3} mm2 for the LZ decompressor (paper: 0.09 mm2).",
        AreaModel::with_params(4096, 16).lz_compressor().area_mm2,
        AreaModel::with_params(4096, 16).lz_decompressor().area_mm2,
    );
    ctx.emit("table1_asic_synthesis", &out);
}
