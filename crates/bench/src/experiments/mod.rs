//! The experiment suite: each module ports one figure/table binary onto
//! the sweep harness. A module exposes `run(&SweepCtx)`, which executes
//! its config grid through [`crate::sweep::SweepCtx::par_map`], prints
//! the human-readable table, and emits `results/<name>.json`.
//!
//! Determinism contract: every config point derives its seed from the
//! point itself (workload defaults or an index-salted constant), never
//! from shared mutable state, so the emitted JSON is identical at any
//! `--jobs` count.

pub mod capacity_cliff;
pub mod fig01;
pub mod fig02;
pub mod fig05;
pub mod fig06;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod integrity;
pub mod mt;
pub mod robustness;
pub mod sens_huge_pages;
pub mod sens_small_workloads;
pub mod table1;
pub mod table2;
pub mod table4;
