//! Figure 5: fraction of CTE misses caused by LLC misses related to a TLB
//! miss (the walker's own fetches and the data/instruction access right
//! after the walk), under page-level 8 B CTEs.
//!
//! Paper result: 89 % on average — which is what makes prefetching CTEs
//! *during the page walk* (embedding them in PTBs) so effective.

use crate::sweep::SweepCtx;
use crate::{mean, print_table};
use serde::Serialize;
use tmcc::{SchemeKind, System, SystemConfig};
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    cte_misses_after_tlb_miss: f64,
}

pub fn run(ctx: &SweepCtx) {
    let accesses = ctx.accesses();
    let out: Vec<Row> = ctx.par_map(WorkloadProfile::large_suite(), |w| {
        // Page-level CTEs without the TMCC optimizations: the OS-inspired
        // configuration of §IV, under mild capacity pressure.
        let cfg = SystemConfig::new(w.clone(), SchemeKind::OsInspired);
        let min = System::min_budget_bytes(&cfg);
        let fp = cfg.footprint_bytes();
        let budget = min + fp.saturating_sub(min) / 2;
        let r = ctx.run(cfg.with_budget(budget), accesses);
        Row { workload: w.name, cte_misses_after_tlb_miss: r.stats.cte_miss_after_tlb_fraction() }
    });
    let mut rows: Vec<Vec<String>> = out
        .iter()
        .map(|row| {
            vec![row.workload.to_string(), format!("{:.1}%", row.cte_misses_after_tlb_miss * 100.0)]
        })
        .collect();
    let avg = mean(&out.iter().map(|r| r.cte_misses_after_tlb_miss).collect::<Vec<_>>());
    rows.push(vec!["AVERAGE".into(), format!("{:.1}%", avg * 100.0)]);
    print_table(
        "Fig. 5 — CTE misses that follow TLB misses (8B page-level CTEs)",
        &["workload", "fraction of CTE misses"],
        &rows,
    );
    println!("\nPaper: 89% on average. Measured: {:.1}%", avg * 100.0);
    ctx.emit("fig05_cte_after_tlb", &out);
}
