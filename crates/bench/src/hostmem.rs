//! Host-process memory introspection for the footprint experiments and
//! the peak-RSS perf gate.
//!
//! Reads `/proc/self/status` on Linux; every probe returns 0 on other
//! platforms (the capacity experiments still emit their deterministic
//! metrics there, just without host-cost context).

/// A `kB` field of `/proc/self/status` (e.g. `VmRSS`, `VmHWM`), or 0
/// when unavailable.
pub fn status_kb(field: &str) -> u64 {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    text.lines()
        .find(|l| l.starts_with(field) && l.as_bytes().get(field.len()) == Some(&b':'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Current resident set size, kB.
pub fn current_rss_kb() -> u64 {
    status_kb("VmRSS")
}

/// Peak resident set size since process start, kB. Process-wide and
/// monotonic: under `run-all` it reflects the whole suite, so per-point
/// attribution needs [`current_rss_kb`] deltas instead.
pub fn peak_rss_kb() -> u64 {
    status_kb("VmHWM")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn probes_report_nonzero_on_linux() {
        assert!(current_rss_kb() > 0);
        assert!(peak_rss_kb() >= current_rss_kb());
    }

    #[test]
    fn unknown_field_is_zero() {
        assert_eq!(status_kb("VmDefinitelyNotAField"), 0);
    }
}
