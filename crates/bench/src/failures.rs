//! Point-failure quarantine: typed records for sweep points that
//! exhausted their retries, collected across the whole `run-all` fleet
//! and written to `results/FAILURES.json`.

use serde::{Serialize, Value};
use std::path::Path;
use std::sync::Mutex;

/// File name under the sweep output directory.
pub const FAILURES_FILE: &str = "FAILURES.json";

/// Test hook: `TMCC_BENCH_FAIL_POINT="experiment:index[:fail_attempts]"`
/// makes the matching sweep point panic on its first `fail_attempts`
/// attempts (default: every attempt). The failure-isolation integration
/// test injects crashes with it.
pub const FAIL_POINT_ENV: &str = "TMCC_BENCH_FAIL_POINT";

/// Why a point failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureCause {
    /// The point closure panicked.
    Panic {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The simulator returned a typed error.
    Sim {
        /// The error's display form.
        error: String,
    },
    /// The watchdog cancelled the point at its deadline.
    Timeout {
        /// The budget that expired, milliseconds.
        budget_ms: u64,
    },
}

impl FailureCause {
    /// Short tag used in summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            FailureCause::Panic { .. } => "panic",
            FailureCause::Sim { .. } => "sim-error",
            FailureCause::Timeout { .. } => "timeout",
        }
    }
}

// The derive stand-in only handles fieldless enums; FailureCause carries
// payloads, so its serialization is spelled out.
impl Serialize for FailureCause {
    fn to_value(&self) -> Value {
        let mut entries = vec![("kind".to_string(), Value::Str(self.kind().to_string()))];
        match self {
            FailureCause::Panic { message } => {
                entries.push(("message".to_string(), Value::Str(message.clone())));
            }
            FailureCause::Sim { error } => {
                entries.push(("error".to_string(), Value::Str(error.clone())));
            }
            FailureCause::Timeout { budget_ms } => {
                entries.push(("budget_ms".to_string(), Value::U64(*budget_ms)));
            }
        }
        Value::Map(entries)
    }
}

/// One quarantined point.
#[derive(Debug, Clone, Serialize)]
pub struct PointFailure {
    /// Registry name of the experiment the point belongs to.
    pub experiment: &'static str,
    /// The point's index in its experiment's grid.
    pub index: usize,
    /// The final attempt's failure.
    pub cause: FailureCause,
    /// Attempts made (1 initial + retries).
    pub attempts: u32,
    /// Seed of the most recently tuned config for the point (the final
    /// attempt's seed, including retry re-seeds) — together with `scale`
    /// and `config_hash` enough to replay it standalone via
    /// `tmcc-bench run <experiment> --point <index>`.
    pub seed: Option<u64>,
    /// Name of the [`crate::sweep::Scale`] the sweep ran at.
    pub scale: &'static str,
    /// The scale's tuning-knob hash (see `journal::scale_config_hash`);
    /// matches the `config=` field of the sweep journal header.
    pub config_hash: u64,
}

/// Thread-safe failure collector shared by every experiment context.
#[derive(Default)]
pub struct FailureSink {
    failures: Mutex<Vec<PointFailure>>,
}

impl FailureSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one quarantined point.
    pub fn record(&self, failure: PointFailure) {
        self.failures.lock().expect("failure sink").push(failure);
    }

    /// Snapshot of everything recorded so far, in a stable order.
    pub fn snapshot(&self) -> Vec<PointFailure> {
        let mut all = self.failures.lock().expect("failure sink").clone();
        all.sort_by(|a, b| (a.experiment, a.index).cmp(&(b.experiment, b.index)));
        all
    }

    /// Recorded failure count.
    pub fn len(&self) -> usize {
        self.failures.lock().expect("failure sink").len()
    }

    /// Whether nothing failed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes `FAILURES.json` under `out_dir` when anything failed,
    /// removes a stale one when nothing did. Returns the failure count.
    pub fn finalize(&self, out_dir: &Path) -> usize {
        let all = self.snapshot();
        let path = out_dir.join(FAILURES_FILE);
        if all.is_empty() {
            let _ = std::fs::remove_file(&path);
            return 0;
        }
        let _ = std::fs::create_dir_all(out_dir);
        match serde_json::to_string_pretty(&all) {
            Ok(s) => {
                if std::fs::write(&path, s).is_ok() {
                    eprintln!("[{} quarantined point(s) written to {}]", all.len(), path.display());
                }
            }
            Err(e) => eprintln!("could not serialize failures: {e}"),
        }
        all.len()
    }

    /// One-line summary for the exit message.
    pub fn summary_line(&self) -> String {
        let all = self.snapshot();
        let mut parts: Vec<String> = Vec::new();
        for f in &all {
            parts.push(format!("{}#{} ({})", f.experiment, f.index, f.cause.kind()));
        }
        format!("{} point(s) quarantined after retries: {}", all.len(), parts.join(", "))
    }
}

/// A parsed [`FAIL_POINT_ENV`] injection target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailPoint {
    /// Experiment the injection applies to (registry name).
    pub experiment_hash: u64,
    /// Point index within the experiment.
    pub index: usize,
    /// Attempts that should fail (attempt numbers `< fail_attempts`).
    pub fail_attempts: u32,
}

impl FailPoint {
    /// Reads and parses the environment hook once.
    pub fn from_env() -> Option<Self> {
        static PARSED: std::sync::OnceLock<Option<FailPoint>> = std::sync::OnceLock::new();
        *PARSED.get_or_init(|| {
            let raw = std::env::var(FAIL_POINT_ENV).ok()?;
            let mut parts = raw.split(':');
            let experiment = parts.next()?;
            let index: usize = parts.next()?.parse().ok()?;
            let fail_attempts: u32 = match parts.next() {
                Some(n) => n.parse().ok()?,
                None => u32::MAX,
            };
            Some(FailPoint {
                experiment_hash: crate::journal::fingerprint(experiment),
                index,
                fail_attempts,
            })
        })
    }

    /// Whether attempt `attempt` of point `index` in `experiment` should
    /// be made to fail.
    pub fn matches(&self, experiment: &str, index: usize, attempt: u32) -> bool {
        self.experiment_hash == crate::journal::fingerprint(experiment)
            && self.index == index
            && attempt < self.fail_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_serializes_with_kind_tag() {
        let v = FailureCause::Timeout { budget_ms: 1500 }.to_value();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("timeout"));
        assert_eq!(v.get("budget_ms").and_then(Value::as_u64), Some(1500));

        let v = FailureCause::Panic { message: "boom".into() }.to_value();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("panic"));
        assert_eq!(v.get("message").and_then(Value::as_str), Some("boom"));
    }

    #[test]
    fn finalize_writes_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("tmcc-failures-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(FAILURES_FILE);

        let sink = FailureSink::new();
        sink.record(PointFailure {
            experiment: "fig01_tlb_cte_misses",
            index: 3,
            cause: FailureCause::Sim { error: "capacity exhausted".into() },
            attempts: 3,
            seed: Some(0xBEEF),
            scale: "test",
            config_hash: 0xabcd,
        });
        assert_eq!(sink.finalize(&dir), 1);
        assert!(path.exists());
        let text = std::fs::read_to_string(&path).expect("read failures");
        assert!(text.contains("fig01_tlb_cte_misses"));
        assert!(text.contains("sim-error"));
        assert!(sink.summary_line().contains("fig01_tlb_cte_misses#3"));

        let empty = FailureSink::new();
        assert_eq!(empty.finalize(&dir), 0);
        assert!(!path.exists(), "stale FAILURES.json must be removed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
