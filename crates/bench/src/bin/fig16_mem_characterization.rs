//! Figure 16: memory-access characterization of the evaluated benchmarks
//! under no hardware memory compression — DRAM bandwidth utilization,
//! split into reads and writes.
//!
//! Paper shape: shortestPath and canneal are the most bandwidth-intensive;
//! kcore and triangleCount the least (which is why they respectively gain
//! the most / least from TMCC, Fig. 17).

use serde::Serialize;
use tmcc::SchemeKind;
use tmcc_bench::{print_table, run_scheme, write_json, DEFAULT_ACCESSES};
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    read_utilization: f64,
    write_utilization: f64,
    llc_misses_per_kilo_access: f64,
}

fn main() {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for w in WorkloadProfile::large_suite() {
        let r = run_scheme(&w, SchemeKind::NoCompression, None, DEFAULT_ACCESSES);
        let total = r.bandwidth_utilization;
        let reads = r.dram.reads as f64;
        let writes = r.dram.writes as f64;
        let wf = if reads + writes > 0.0 { writes / (reads + writes) } else { 0.0 };
        let row = Row {
            workload: w.name,
            read_utilization: total * (1.0 - wf),
            write_utilization: total * wf,
            llc_misses_per_kilo_access: r.stats.llc_misses() as f64 * 1000.0
                / r.stats.accesses as f64,
        };
        rows.push(vec![
            row.workload.to_string(),
            format!("{:.1}%", row.read_utilization * 100.0),
            format!("{:.1}%", row.write_utilization * 100.0),
            format!("{:.0}", row.llc_misses_per_kilo_access),
        ]);
        out.push(row);
    }
    print_table(
        "Fig. 16 — Memory characterization (no compression)",
        &["workload", "read BW util", "write BW util", "LLC misses/1K accesses"],
        &rows,
    );
    let max = out
        .iter()
        .max_by(|a, b| {
            (a.read_utilization + a.write_utilization)
                .total_cmp(&(b.read_utilization + b.write_utilization))
        })
        .expect("non-empty suite");
    println!(
        "\nPaper shape: shortestPath/canneal most intensive, kcore/triangleCount least.\n\
         Measured most intensive: {}",
        max.workload
    );
    write_json("fig16_mem_characterization", &out);
}
