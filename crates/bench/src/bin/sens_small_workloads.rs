//! Standalone shim for the small-workload sensitivity (§VII) experiment: runs it at full scale
//! through the shared sweep harness (the logic lives in
//! `tmcc_bench::experiments`; `tmcc-bench run-all` runs the whole suite).

fn main() {
    tmcc_bench::registry::run_standalone("sens_small_workloads");
}
