//! Standalone shim for the Figure 6 experiment: runs it at full scale
//! through the shared sweep harness (the logic lives in
//! `tmcc_bench::experiments`; `tmcc-bench run-all` runs the whole suite).

fn main() {
    tmcc_bench::registry::run_standalone("fig06_ptb_status_bits");
}
