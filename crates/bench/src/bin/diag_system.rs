//! Diagnostics: a compact per-scheme breakdown of one workload, useful
//! when calibrating the workload profiles or investigating a figure
//! binary's output. Not part of the experiment suite.
//!
//! Usage: `cargo run --release -p tmcc-bench --bin diag_system [workload]`

use tmcc::{SchemeKind, System, SystemConfig};
use tmcc_workloads::WorkloadProfile;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bfs".to_string());
    let Some(mut w) = WorkloadProfile::by_name(&name) else {
        eprintln!("unknown workload '{name}'");
        std::process::exit(1);
    };
    for arg in std::env::args().skip(2) {
        match arg.as_str() {
            "--no-seq" => w.pattern.p_seq = 0.0,
            "--no-tail" => w.pattern.tail_fraction = 0.0,
            "--no-hot" => w.pattern.p_hot = 0.0,
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    println!("workload {} — {} pages\n", w.name, w.sim_pages);

    let rc = System::new(SystemConfig::new(w.clone(), SchemeKind::Compresso)).run(100_000);
    println!(
        "compresso: perf={:.2} used={}MB l3lat={:.1} cte_miss/llc={:.2} tlb_miss/llc={:.2}",
        rc.perf_accesses_per_us(),
        rc.stats.dram_used_bytes >> 20,
        rc.stats.avg_l3_miss_latency_ns(),
        rc.stats.cte_miss_per_llc_miss(),
        rc.stats.tlb_miss_per_llc_miss(),
    );

    let min = System::min_budget_bytes(&SystemConfig::new(w.clone(), SchemeKind::Tmcc));
    let budget = rc.stats.dram_used_bytes.max(min);
    let rt = System::new(SystemConfig::new(w.clone(), SchemeKind::Tmcc).with_budget(budget))
        .run(100_000);
    let s = rt.stats;
    let ml1 = s.ml1_cte_hit + s.ml1_parallel_correct + s.ml1_parallel_mismatch + s.ml1_serial;
    println!(
        "tmcc:      perf={:.2} used={}MB l3lat={:.1} cte_hit={:.2} ml2/miss={:.3}",
        rt.perf_accesses_per_us(),
        s.dram_used_bytes >> 20,
        s.avg_l3_miss_latency_ns(),
        s.cte_hit_rate(),
        s.ml2_reads as f64 / s.llc_misses().max(1) as f64,
    );
    println!(
        "  ml1: avg {:.1} ns over {} reads (hit {} / par {} / stale {} / serial {})",
        s.ml1_latency_sum_ns / ml1.max(1) as f64,
        ml1,
        s.ml1_cte_hit,
        s.ml1_parallel_correct,
        s.ml1_parallel_mismatch,
        s.ml1_serial
    );
    println!(
        "  ml2: avg {:.1} ns over {} reads; migrations up {} / down {}; stalls {:.0} ns; crit {}",
        s.ml2_latency_sum_ns / s.ml2_reads.max(1) as f64,
        s.ml2_reads,
        s.ml2_to_ml1_migrations,
        s.ml1_to_ml2_migrations,
        s.migration_stall_ns,
        s.ml2_crit_penalties
    );
    println!(
        "  perf vs compresso: {:+.1}%",
        (rt.perf_accesses_per_us() / rc.perf_accesses_per_us() - 1.0) * 100.0
    );
}
