//! Figure 20: TMCC's improvement over the barebone OS-inspired hardware
//! compression of §IV, split into the ML1 optimization (embedded CTEs)
//! and the ML2 optimization (memory-specialized Deflate), under the two
//! DRAM-usage scenarios of Table IV columns B and C.
//!
//! Paper result: +12.5 % total at Col B usage (8.25 % from ML1 opt,
//! 4.25 % from ML2 opt); +15.4 % at Col C usage, where the ML2
//! optimization dominates because ML2 accesses become frequent.

use serde::Serialize;
use tmcc::config::TmccToggles;
use tmcc_bench::{
    compresso_anchor, feasible_budget, iso_perf_budget_search, mean, print_table, run_two_level,
    write_json, DEFAULT_ACCESSES,
};
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    scenario: &'static str,
    ml1_only_speedup: f64,
    ml2_only_speedup: f64,
    full_speedup: f64,
}

fn main() {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    // Per workload: Col B = Compresso's DRAM usage; Col C = TMCC's usage
    // at Compresso-equivalent performance (Table IV's operating point).
    let mut budgets: Vec<(WorkloadProfile, [u64; 2])> = Vec::new();
    for w in WorkloadProfile::large_suite() {
        let (anchor, used) = compresso_anchor(&w, DEFAULT_ACCESSES / 2);
        let col_b = feasible_budget(&w, used);
        let floor = anchor.perf_accesses_per_us() * 0.99;
        let (col_c, _) =
            iso_perf_budget_search(&w, TmccToggles::full(), floor, DEFAULT_ACCESSES / 2);
        budgets.push((w, [col_b, col_c]));
    }
    for (idx, scenario) in [(0usize, "Col B"), (1, "Col C")] {
        for (w, b) in &budgets {
            let w = w.clone();
            let budget = b[idx];
            let base = run_two_level(&w, TmccToggles::none(), budget, DEFAULT_ACCESSES)
                .perf_accesses_per_us();
            let ml1 = run_two_level(&w, TmccToggles::ml1_only(), budget, DEFAULT_ACCESSES)
                .perf_accesses_per_us();
            let ml2 = run_two_level(&w, TmccToggles::ml2_only(), budget, DEFAULT_ACCESSES)
                .perf_accesses_per_us();
            let full = run_two_level(&w, TmccToggles::full(), budget, DEFAULT_ACCESSES)
                .perf_accesses_per_us();
            let row = Row {
                workload: w.name,
                scenario,
                ml1_only_speedup: ml1 / base,
                ml2_only_speedup: ml2 / base,
                full_speedup: full / base,
            };
            rows.push(vec![
                format!("{} [{}]", row.workload, scenario),
                format!("{:.3}", row.ml1_only_speedup),
                format!("{:.3}", row.ml2_only_speedup),
                format!("{:.3}", row.full_speedup),
            ]);
            out.push(row);
        }
    }
    for scenario in ["Col B", "Col C"] {
        let sel: Vec<&Row> = out.iter().filter(|r| r.scenario == scenario).collect();
        let m = |f: fn(&Row) -> f64| mean(&sel.iter().map(|r| f(r)).collect::<Vec<_>>());
        rows.push(vec![
            format!("AVERAGE [{scenario}]"),
            format!("{:.3}", m(|r| r.ml1_only_speedup)),
            format!("{:.3}", m(|r| r.ml2_only_speedup)),
            format!("{:.3}", m(|r| r.full_speedup)),
        ]);
    }
    print_table(
        "Fig. 20 — Speedup over barebone OS-inspired compression",
        &["workload [scenario]", "ML1 opt only", "ML2 opt only", "full TMCC"],
        &rows,
    );
    println!(
        "\nPaper: Col B +12.5% total (ML1 8.25%, ML2 4.25%); Col C +15.4% with the\n\
         ML2 optimization's share growing as ML2 accesses become frequent."
    );
    write_json("fig20_vs_barebone", &out);
}
