//! Diagnostics: measured per-template compressed sizes under the real
//! codecs — the raw data for calibrating ContentProfile mixtures.

use tmcc_compression::{BestOfCodec, BlockCodec};
use tmcc_deflate::MemDeflate;
use tmcc_workloads::{ContentProfile, PageContent, PageTemplate};

fn main() {
    let deflate = MemDeflate::default();
    let block = BestOfCodec::new();
    let templates = [
        ("sparse.05", PageTemplate::Sparse { density: 0.05 }),
        ("sparse.08", PageTemplate::Sparse { density: 0.08 }),
        ("record8x48", PageTemplate::RecordPack { vocab: 8, record_len: 48 }),
        ("record8x36", PageTemplate::RecordPack { vocab: 8, record_len: 36 }),
        ("record10x40", PageTemplate::RecordPack { vocab: 10, record_len: 40 }),
        ("record24x48", PageTemplate::RecordPack { vocab: 24, record_len: 48 }),
        ("pointers", PageTemplate::Pointers),
        ("ints8", PageTemplate::SmallInts { span: 8 }),
        ("ints16", PageTemplate::SmallInts { span: 16 }),
        ("ints200", PageTemplate::SmallInts { span: 200 }),
        ("ints4000", PageTemplate::SmallInts { span: 4000 }),
        ("float", PageTemplate::FloatLike),
        ("text", PageTemplate::TextLike),
        ("random", PageTemplate::Random),
    ];
    println!(
        "{:<12} {:>9} {:>10} {:>9} {:>10}",
        "template", "deflate B", "(ratio)", "block B", "(ratio)"
    );
    for (name, t) in templates {
        let content = PageContent::new(ContentProfile::new(vec![(t, 1.0)]), 77);
        let mut d = 0usize;
        let mut b = 0usize;
        const N: u64 = 16;
        for i in 0..N {
            let page = content.page_bytes(i);
            d += deflate.compressed_size(&page);
            b += page
                .chunks_exact(64)
                .map(|c| {
                    let arr: &[u8; 64] = c.try_into().unwrap();
                    block.compressed_size(arr)
                })
                .sum::<usize>();
        }
        let (d, b) = (d as f64 / N as f64, b as f64 / N as f64);
        println!("{:<12} {:>9.0} {:>9.2}x {:>9.0} {:>9.2}x", name, d, 4096.0 / d, b, 4096.0 / b);
    }
}
