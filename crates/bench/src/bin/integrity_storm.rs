//! Standalone shim for the integrity-storm experiment: runs it at full
//! scale through the shared sweep harness (the logic lives in
//! `tmcc_bench::experiments`; `tmcc-bench run-all` runs the whole suite).

fn main() {
    tmcc_bench::registry::run_standalone("integrity_storm");
}
