//! Standalone shim for the huge-page sensitivity (§VIII) experiment: runs it at full scale
//! through the shared sweep harness (the logic lives in
//! `tmcc_bench::experiments`; `tmcc-bench run-all` runs the whole suite).

fn main() {
    tmcc_bench::registry::run_standalone("sens_huge_pages");
}
