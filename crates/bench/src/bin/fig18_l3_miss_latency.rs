//! Figure 18: average L3-miss service latency under (i) no compression,
//! (ii) Compresso, (iii) TMCC at iso-compression with Compresso.
//!
//! Paper result: 53 ns / 73.9 ns / 56.4 ns — Compresso pays ~20 ns of
//! serial CTE fetching per CTE-cache miss; TMCC hides it by fetching data
//! and CTE from DRAM in parallel.

use serde::Serialize;
use tmcc::SchemeKind;
use tmcc_bench::{
    compresso_anchor, feasible_budget, mean, print_table, run_scheme, write_json, DEFAULT_ACCESSES,
};
use tmcc_workloads::WorkloadProfile;

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    no_compression_ns: f64,
    compresso_ns: f64,
    tmcc_ns: f64,
}

fn main() {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for w in WorkloadProfile::large_suite() {
        let rn = run_scheme(&w, SchemeKind::NoCompression, None, DEFAULT_ACCESSES);
        let (rc, used) = compresso_anchor(&w, DEFAULT_ACCESSES);
        let budget = feasible_budget(&w, used);
        let rt = run_scheme(&w, SchemeKind::Tmcc, Some(budget), DEFAULT_ACCESSES);
        let row = Row {
            workload: w.name,
            no_compression_ns: rn.stats.avg_l3_miss_latency_ns(),
            compresso_ns: rc.stats.avg_l3_miss_latency_ns(),
            tmcc_ns: rt.stats.avg_l3_miss_latency_ns(),
        };
        rows.push(vec![
            row.workload.to_string(),
            format!("{:.1}", row.no_compression_ns),
            format!("{:.1}", row.compresso_ns),
            format!("{:.1}", row.tmcc_ns),
        ]);
        out.push(row);
    }
    let a = mean(&out.iter().map(|r| r.no_compression_ns).collect::<Vec<_>>());
    let b = mean(&out.iter().map(|r| r.compresso_ns).collect::<Vec<_>>());
    let c = mean(&out.iter().map(|r| r.tmcc_ns).collect::<Vec<_>>());
    rows.push(vec!["AVERAGE".into(), format!("{a:.1}"), format!("{b:.1}"), format!("{c:.1}")]);
    print_table(
        "Fig. 18 — Average L3-miss latency (ns)",
        &["workload", "no compression", "compresso", "tmcc (iso-savings)"],
        &rows,
    );
    println!(
        "\nPaper: 53 / 73.9 / 56.4 ns. Measured: {a:.1} / {b:.1} / {c:.1} ns.\n\
         Shape check — TMCC within {:.0}% of no-compression while Compresso pays {:.0}%:",
        (c / a - 1.0) * 100.0,
        (b / a - 1.0) * 100.0
    );
    write_json("fig18_l3_miss_latency", &out);
}
