//! The shared sweep harness behind `tmcc-bench` and the per-figure
//! binaries.
//!
//! Every experiment runs through a [`SweepCtx`]: it supplies the run
//! [`Scale`], a worker pool for [`SweepCtx::par_map`] grids, the JSON
//! output directory, and global counters (accesses simulated, optional
//! host-time phase profile). Determinism is by construction — each config
//! point carries its own seed, `par_map` returns results in input order
//! regardless of scheduling, and the JSON emitters consume those ordered
//! results — so `--jobs 1` and `--jobs N` produce byte-identical
//! per-figure files.

use crate::DEFAULT_ACCESSES;
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};
use serde::Serialize;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tmcc::config::TmccToggles;
use tmcc::{PhaseProfile, RunReport, SchemeKind, System, SystemConfig, TmccError};
use tmcc_workloads::WorkloadProfile;

/// How much work each config point simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-fidelity runs (the published `results/` files).
    Full,
    /// ~5× smaller: CI smoke runs that still exercise every phase.
    Quick,
    /// Tiny: the golden determinism test (seconds for the whole suite).
    Test,
}

impl Scale {
    /// Display name (recorded in `BENCH_sweep.json`).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Full => "full",
            Scale::Quick => "quick",
            Scale::Test => "test",
        }
    }

    /// Measured accesses per simulation run.
    pub fn accesses(self) -> u64 {
        match self {
            Scale::Full => DEFAULT_ACCESSES,
            Scale::Quick => 10_000,
            Scale::Test => 1_000,
        }
    }

    /// Warmup override (`None` keeps each config's paper default).
    pub fn warmup(self) -> Option<u64> {
        match self {
            Scale::Full => None,
            Scale::Quick => Some(5_000),
            Scale::Test => Some(500),
        }
    }

    /// Pages per workload image for the compression-ratio study (Fig. 15).
    pub fn content_pages(self) -> u64 {
        match self {
            Scale::Full => 384,
            Scale::Quick => 96,
            Scale::Test => 16,
        }
    }

    /// Pages per workload feeding the Deflate cycle model (Table II).
    pub fn corpus_pages(self) -> u64 {
        match self {
            Scale::Full => 24,
            Scale::Quick => 8,
            Scale::Test => 4,
        }
    }

    /// Cap on each workload's simulated footprint (`None` keeps the
    /// paper-scale page counts). Only the test scale shrinks footprints:
    /// system construction (page table, size-model sampling) is linear in
    /// pages and would otherwise dominate tiny runs.
    pub fn pages_cap(self) -> Option<u64> {
        match self {
            Scale::Full | Scale::Quick => None,
            Scale::Test => Some(2_048),
        }
    }

    /// Size-model codec samples per system ([`SystemConfig::size_samples`]).
    /// Sampling compresses real pages with the real codecs, a fixed
    /// ~100 ms per constructed system at the paper default of 128 — fine
    /// for paper-scale runs, dominant at the test scale.
    pub fn size_samples(self) -> usize {
        match self {
            Scale::Full | Scale::Quick => 128,
            Scale::Test => 16,
        }
    }
}

/// Resolves a `--jobs` request: 0 means one worker per available CPU.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    }
}

/// Shared context for one sweep invocation.
///
/// The worker pool is shared (`Arc`): the `run-all` scheduler builds one
/// pool and hands it to every experiment's context, so inner `par_map`
/// grids from different experiments feed the same work-stealing deques.
pub struct SweepCtx {
    scale: Scale,
    jobs: usize,
    pool: Arc<ThreadPool>,
    out_dir: PathBuf,
    profile_enabled: bool,
    accesses: AtomicU64,
    prof_steps: AtomicU64,
    prof_workload_ns: AtomicU64,
    prof_translation_ns: AtomicU64,
    prof_data_ns: AtomicU64,
    prof_maintenance_ns: AtomicU64,
}

impl SweepCtx {
    /// Builds a context with its own pool. `jobs == 0` means one worker
    /// per available CPU.
    pub fn new(scale: Scale, jobs: usize, out_dir: PathBuf, profile: bool) -> Self {
        let jobs = resolve_jobs(jobs);
        let pool = Arc::new(ThreadPoolBuilder::new().num_threads(jobs).build().expect("pool"));
        Self::with_pool(scale, jobs, out_dir, profile, pool)
    }

    /// Builds a context over an existing shared pool. `jobs` must already
    /// be resolved (non-zero) and should match the pool's thread count.
    pub fn with_pool(
        scale: Scale,
        jobs: usize,
        out_dir: PathBuf,
        profile: bool,
        pool: Arc<ThreadPool>,
    ) -> Self {
        Self {
            scale,
            jobs,
            pool,
            out_dir,
            profile_enabled: profile,
            accesses: AtomicU64::new(0),
            prof_steps: AtomicU64::new(0),
            prof_workload_ns: AtomicU64::new(0),
            prof_translation_ns: AtomicU64::new(0),
            prof_data_ns: AtomicU64::new(0),
            prof_maintenance_ns: AtomicU64::new(0),
        }
    }

    /// Context for a standalone figure binary: full scale, auto jobs,
    /// the repo `results/` directory.
    pub fn standalone() -> Self {
        Self::new(Scale::Full, 0, crate::results_dir(), false)
    }

    /// The run scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Measured accesses per simulation run at this scale.
    pub fn accesses(&self) -> u64 {
        self.scale.accesses()
    }

    /// Total accesses (warmup included) simulated through this context.
    pub fn accesses_simulated(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }

    /// Aggregated host-time phase profile, if profiling was requested.
    pub fn profile(&self) -> Option<PhaseProfile> {
        if !self.profile_enabled {
            return None;
        }
        Some(PhaseProfile {
            steps: self.prof_steps.load(Ordering::Relaxed),
            workload_ns: self.prof_workload_ns.load(Ordering::Relaxed),
            translation_ns: self.prof_translation_ns.load(Ordering::Relaxed),
            data_ns: self.prof_data_ns.load(Ordering::Relaxed),
            maintenance_ns: self.prof_maintenance_ns.load(Ordering::Relaxed),
        })
    }

    /// Maps `f` over `items` on the worker pool; results come back in
    /// input order no matter how the workers are scheduled.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        if self.jobs <= 1 {
            return items.into_iter().map(f).collect();
        }
        self.pool.install(|| items.into_par_iter().map(f).collect())
    }

    /// Writes `results/<name>.json` under the context's output directory
    /// (same bytes as the legacy per-binary `write_json`).
    pub fn emit<T: Serialize>(&self, name: &str, value: &T) {
        let _ = fs::create_dir_all(&self.out_dir);
        let path = self.out_dir.join(format!("{name}.json"));
        match serde_json::to_string_pretty(value) {
            Ok(s) => {
                if fs::write(&path, s).is_ok() {
                    println!("\n[results written to {}]", path.display());
                }
            }
            Err(e) => eprintln!("could not serialize results: {e}"),
        }
    }

    /// Applies the scale's warmup/footprint overrides and the profile
    /// flag to a config.
    pub fn tune(&self, mut cfg: SystemConfig) -> SystemConfig {
        if let Some(w) = self.scale.warmup() {
            cfg.warmup_accesses = w;
        }
        if let Some(cap) = self.scale.pages_cap() {
            cfg.workload.sim_pages = cfg.workload.sim_pages.min(cap);
        }
        cfg.size_samples = self.scale.size_samples();
        if self.profile_enabled {
            cfg.profile = true;
        }
        cfg
    }

    /// Runs one tuned config for `accesses` measured accesses, counting
    /// the simulated work and (if enabled) the phase profile.
    pub fn run(&self, cfg: SystemConfig, accesses: u64) -> RunReport {
        match self.try_run(cfg, accesses) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`SweepCtx::run`] (robustness sweeps record
    /// the error instead of aborting).
    pub fn try_run(&self, cfg: SystemConfig, accesses: u64) -> Result<RunReport, TmccError> {
        let cfg = self.tune(cfg);
        let warmup = cfg.warmup_accesses;
        let mut sys = System::try_new(cfg)?;
        let result = sys.try_run(accesses);
        // Count even failed runs: the work up to the failure was simulated.
        self.accesses.fetch_add(warmup + accesses, Ordering::Relaxed);
        let p = sys.phase_profile();
        if p.steps > 0 {
            self.prof_steps.fetch_add(p.steps, Ordering::Relaxed);
            self.prof_workload_ns.fetch_add(p.workload_ns, Ordering::Relaxed);
            self.prof_translation_ns.fetch_add(p.translation_ns, Ordering::Relaxed);
            self.prof_data_ns.fetch_add(p.data_ns, Ordering::Relaxed);
            self.prof_maintenance_ns.fetch_add(p.maintenance_ns, Ordering::Relaxed);
        }
        result
    }

    /// [`crate::run_scheme`] through the context.
    pub fn run_scheme(
        &self,
        workload: &WorkloadProfile,
        scheme: SchemeKind,
        budget: Option<u64>,
        accesses: u64,
    ) -> RunReport {
        let mut cfg = SystemConfig::new(workload.clone(), scheme);
        cfg.dram_budget_bytes = budget;
        self.run(cfg, accesses)
    }

    /// [`crate::run_two_level`] through the context.
    pub fn run_two_level(
        &self,
        workload: &WorkloadProfile,
        toggles: TmccToggles,
        budget: u64,
        accesses: u64,
    ) -> RunReport {
        let kind = if toggles.embedded_ctes && toggles.fast_deflate {
            SchemeKind::Tmcc
        } else {
            SchemeKind::OsInspired
        };
        let cfg =
            SystemConfig::new(workload.clone(), kind).with_budget(budget).with_toggles(toggles);
        self.run(cfg, accesses)
    }

    /// [`crate::compresso_anchor`] through the context.
    pub fn compresso_anchor(&self, workload: &WorkloadProfile, accesses: u64) -> (RunReport, u64) {
        let r = self.run_scheme(workload, SchemeKind::Compresso, None, accesses);
        let used = r.stats.dram_used_bytes;
        (r, used)
    }

    /// [`crate::iso_perf_budget_search`] through the context.
    pub fn iso_perf_budget_search(
        &self,
        workload: &WorkloadProfile,
        toggles: TmccToggles,
        perf_floor: f64,
        accesses: u64,
    ) -> (u64, RunReport) {
        let kind = if toggles.embedded_ctes && toggles.fast_deflate {
            SchemeKind::Tmcc
        } else {
            SchemeKind::OsInspired
        };
        self.iso_perf_budget_search_cfg(
            workload,
            |b| SystemConfig::new(workload.clone(), kind).with_budget(b).with_toggles(toggles),
            perf_floor,
            accesses,
        )
    }

    /// [`crate::iso_perf_budget_search_cfg`] through the context.
    pub fn iso_perf_budget_search_cfg(
        &self,
        workload: &WorkloadProfile,
        make_cfg: impl Fn(u64) -> SystemConfig,
        perf_floor: f64,
        accesses: u64,
    ) -> (u64, RunReport) {
        let probe = SystemConfig::new(workload.clone(), SchemeKind::Tmcc);
        let min = System::min_budget_bytes(&probe);
        let max = workload.sim_pages * 4096 + (1 << 22);
        let mut lo = min;
        let mut hi = max;
        let mut best: Option<(u64, RunReport)> = None;
        for _ in 0..5 {
            let mid = lo + (hi - lo) / 2;
            let r = self.run(make_cfg(mid), accesses);
            if r.perf_accesses_per_us() >= perf_floor {
                best = Some((mid, r));
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        best.unwrap_or_else(|| {
            let r = self.run(make_cfg(max), accesses);
            (max, r)
        })
    }
}

/// One experiment's entry in `BENCH_sweep.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentTiming {
    /// Registry name (also the `results/<name>.json` file stem).
    pub name: &'static str,
    /// Wall-clock milliseconds the experiment took.
    pub wall_ms: f64,
    /// Total accesses (warmup included) the experiment simulated.
    pub accesses_simulated: u64,
    /// Simulation throughput over the experiment's wall time.
    pub accesses_per_sec: f64,
}

/// The consolidated `BENCH_sweep.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct SweepSummary {
    /// Scale the sweep ran at.
    pub scale: &'static str,
    /// Worker count.
    pub jobs: usize,
    /// Per-experiment wall clock and throughput.
    pub experiments: Vec<ExperimentTiming>,
    /// Wall-clock milliseconds for the whole sweep.
    pub total_wall_ms: f64,
    /// Total accesses simulated across every experiment.
    pub total_accesses_simulated: u64,
    /// Aggregate simulation throughput.
    pub accesses_per_sec: f64,
    /// Host-time phase profile (all zeros unless `--profile` was given).
    pub profile: PhaseProfile,
}
