//! The shared sweep harness behind `tmcc-bench` and the per-figure
//! binaries.
//!
//! Every experiment runs through a [`SweepCtx`]: it supplies the run
//! [`Scale`], a worker pool for [`SweepCtx::par_map`] grids, the JSON
//! output directory, and global counters (accesses simulated, optional
//! host-time phase profile). Determinism is by construction — each config
//! point carries its own seed, `par_map` returns results in input order
//! regardless of scheduling, and the JSON emitters consume those ordered
//! results — so `--jobs 1` and `--jobs N` produce byte-identical
//! per-figure files.
//!
//! # Failure isolation (DESIGN.md §6.2)
//!
//! Under `tmcc-bench`, every `par_map` point runs inside a
//! `catch_unwind` ring: a panicking, erroring, or timed-out point is
//! retried up to `--retries` times (each retry deterministically
//! re-seeded in [`SweepCtx::tune`]), and a point that exhausts its
//! retries is quarantined into `results/FAILURES.json` — its experiment
//! aborts, the rest of the fleet keeps running. The sweep journal
//! ([`crate::journal`]) makes completed points replayable after a crash;
//! the watchdog ([`crate::watchdog`]) cancels points that exceed their
//! deadline through the simulator's cooperative [`RunHandle`].

use crate::failures::{FailPoint, FailureCause, FailureSink, PointFailure};
use crate::journal::{fingerprint, SweepJournal};
use crate::watchdog::{effective_budget, Watchdog};
use crate::DEFAULT_ACCESSES;
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};
use serde::Serialize;
use std::cell::{Cell, RefCell};
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tmcc::config::TmccToggles;
use tmcc::{
    MultiTenantConfig, MultiTenantReport, MultiTenantSystem, PhaseProfile, RunHandle, RunReport,
    SchemeKind, System, SystemConfig, TmccError,
};
use tmcc_workloads::WorkloadProfile;

/// How much work each config point simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-fidelity runs (the published `results/` files).
    Full,
    /// ~5× smaller: CI smoke runs that still exercise every phase.
    Quick,
    /// Tiny: the golden determinism test (seconds for the whole suite).
    Test,
}

impl Scale {
    /// Display name (recorded in `BENCH_sweep.json`).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Full => "full",
            Scale::Quick => "quick",
            Scale::Test => "test",
        }
    }

    /// Measured accesses per simulation run.
    pub fn accesses(self) -> u64 {
        match self {
            Scale::Full => DEFAULT_ACCESSES,
            Scale::Quick => 10_000,
            Scale::Test => 1_000,
        }
    }

    /// Warmup override (`None` keeps each config's paper default).
    pub fn warmup(self) -> Option<u64> {
        match self {
            Scale::Full => None,
            Scale::Quick => Some(5_000),
            Scale::Test => Some(500),
        }
    }

    /// Pages per workload image for the compression-ratio study (Fig. 15).
    pub fn content_pages(self) -> u64 {
        match self {
            Scale::Full => 384,
            Scale::Quick => 96,
            Scale::Test => 16,
        }
    }

    /// Pages per workload feeding the Deflate cycle model (Table II).
    pub fn corpus_pages(self) -> u64 {
        match self {
            Scale::Full => 24,
            Scale::Quick => 8,
            Scale::Test => 4,
        }
    }

    /// Cap on each workload's simulated footprint (`None` keeps the
    /// paper-scale page counts). Only the test scale shrinks footprints:
    /// system construction (page table, size-model sampling) is linear in
    /// pages and would otherwise dominate tiny runs.
    pub fn pages_cap(self) -> Option<u64> {
        match self {
            Scale::Full | Scale::Quick => None,
            Scale::Test => Some(2_048),
        }
    }

    /// Size-model codec samples per system ([`SystemConfig::size_samples`]).
    /// Sampling compresses real pages with the real codecs, a fixed
    /// ~100 ms per constructed system at the paper default of 128 — fine
    /// for paper-scale runs, dominant at the test scale.
    pub fn size_samples(self) -> usize {
        match self {
            Scale::Full | Scale::Quick => 128,
            Scale::Test => 16,
        }
    }

    /// Base watchdog budget per simulation run, before the experiment's
    /// `budget_weight` multiplier. Calibrated ~50× above observed run
    /// times at each scale — the watchdog exists to catch wedged points,
    /// not slow ones.
    pub fn point_budget(self) -> Duration {
        match self {
            Scale::Full => Duration::from_secs(600),
            Scale::Quick => Duration::from_secs(120),
            Scale::Test => Duration::from_secs(60),
        }
    }
}

/// Default `--retries`: attempts per point = retries + 1.
pub const DEFAULT_RETRIES: u32 = 2;

/// Resolves a `--jobs` request: 0 means one worker per available CPU.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    }
}

/// A point's retry state, visible to [`SweepCtx::tune`] on the worker
/// thread executing the point.
#[derive(Debug, Clone, Copy, Default)]
struct PointState {
    attempt: u32,
    timeouts: u32,
}

thread_local! {
    /// Retry state of the point currently executing on this worker.
    static POINT_CTX: Cell<PointState> = const { Cell::new(PointState { attempt: 0, timeouts: 0 }) };
    /// Display form of the last simulator error [`SweepCtx::run`]
    /// panicked on — lets the retry ring report a typed `sim-error`
    /// cause instead of a generic panic.
    static LAST_SIM_ERROR: RefCell<Option<String>> = const { RefCell::new(None) };
    /// Seed of the most recently tuned config on this worker, recorded
    /// into `FAILURES.json` so a quarantined point can be replayed at
    /// the exact seed of its final attempt.
    static LAST_POINT_SEED: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Panic payload for a watchdog-cancelled run; [`SweepCtx::try_run`]
/// throws it so timeouts route through the same retry ring as panics,
/// even for callers that match on `Result` (the robustness sweep).
struct PointTimeout {
    budget_ms: u64,
}

/// Panic payload thrown after a point exhausts its retries and was
/// recorded in the failure sink. The experiment-level `catch_unwind` in
/// `tmcc-bench` recognizes it and does not double-report.
pub struct PointAborted;

/// Panic payload thrown by `--point` replay after the selected point
/// finished: the experiment stops before aggregating or emitting partial
/// results, and `tmcc-bench` reports the replay as a success.
pub struct PointReplayDone;

/// Shared context for one sweep invocation.
///
/// The worker pool is shared (`Arc`): the `run-all` scheduler builds one
/// pool and hands it to every experiment's context, so inner `par_map`
/// grids from different experiments feed the same work-stealing deques.
/// Journal, watchdog, and failure sink are likewise shared across the
/// per-experiment contexts of a `run-all`.
pub struct SweepCtx {
    scale: Scale,
    jobs: usize,
    pool: Arc<ThreadPool>,
    out_dir: PathBuf,
    profile_enabled: bool,
    experiment: &'static str,
    budget_weight: f64,
    retries: u32,
    only_point: Option<usize>,
    journal: Option<Arc<SweepJournal>>,
    watchdog: Option<Arc<Watchdog>>,
    failures: Option<Arc<FailureSink>>,
    accesses: AtomicU64,
    /// Summed worker time spent executing this experiment's points. Under
    /// the shared `run-all` pool an experiment's *span* includes time its
    /// workers were stolen by other experiments, so span-based throughput
    /// is schedule-dependent; busy time is not.
    busy_ns: AtomicU64,
    points_replayed: AtomicU64,
    prof_steps: AtomicU64,
    prof_workload_ns: AtomicU64,
    prof_translation_ns: AtomicU64,
    prof_data_ns: AtomicU64,
    prof_maintenance_ns: AtomicU64,
}

impl SweepCtx {
    /// Builds a context with its own pool. `jobs == 0` means one worker
    /// per available CPU.
    pub fn new(scale: Scale, jobs: usize, out_dir: PathBuf, profile: bool) -> Self {
        let jobs = resolve_jobs(jobs);
        let pool = Arc::new(ThreadPoolBuilder::new().num_threads(jobs).build().expect("pool"));
        Self::with_pool(scale, jobs, out_dir, profile, pool)
    }

    /// Builds a context over an existing shared pool. `jobs` must already
    /// be resolved (non-zero) and should match the pool's thread count.
    pub fn with_pool(
        scale: Scale,
        jobs: usize,
        out_dir: PathBuf,
        profile: bool,
        pool: Arc<ThreadPool>,
    ) -> Self {
        Self {
            scale,
            jobs,
            pool,
            out_dir,
            profile_enabled: profile,
            experiment: "",
            budget_weight: 1.0,
            retries: DEFAULT_RETRIES,
            only_point: None,
            journal: None,
            watchdog: None,
            failures: None,
            accesses: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            points_replayed: AtomicU64::new(0),
            prof_steps: AtomicU64::new(0),
            prof_workload_ns: AtomicU64::new(0),
            prof_translation_ns: AtomicU64::new(0),
            prof_data_ns: AtomicU64::new(0),
            prof_maintenance_ns: AtomicU64::new(0),
        }
    }

    /// Context for a standalone figure binary: full scale, auto jobs,
    /// the repo `results/` directory.
    pub fn standalone() -> Self {
        Self::new(Scale::Full, 0, crate::results_dir(), false)
    }

    /// Names the experiment this context runs and sets its watchdog
    /// budget multiplier (`registry::Experiment::budget_weight`). The
    /// name keys the context's journal records and failure reports.
    pub fn for_experiment(mut self, name: &'static str, budget_weight: f64) -> Self {
        self.experiment = name;
        self.budget_weight = budget_weight;
        self
    }

    /// Attaches the shared sweep journal: completed runs are appended,
    /// and runs already journaled are replayed instead of simulated.
    pub fn with_journal(mut self, journal: Arc<SweepJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Attaches the shared watchdog: every simulation run gets a
    /// cancellation deadline.
    pub fn with_watchdog(mut self, watchdog: Arc<Watchdog>) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Attaches the shared failure sink, enabling the per-point retry +
    /// quarantine ring in [`SweepCtx::par_map`].
    pub fn with_failures(mut self, failures: Arc<FailureSink>) -> Self {
        self.failures = Some(failures);
        self
    }

    /// Sets the per-point retry count (attempts = retries + 1).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Restricts the sweep to one point index of the experiment's first
    /// grid (`tmcc-bench run <exp> --point <idx>`): the point runs alone
    /// through the normal retry ring, then the experiment stops with
    /// [`PointReplayDone`] instead of emitting partial results. This is
    /// the standalone replay for a `FAILURES.json` entry.
    pub fn with_point(mut self, point: Option<usize>) -> Self {
        self.only_point = point;
        self
    }

    /// The run scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Measured accesses per simulation run at this scale.
    pub fn accesses(&self) -> u64 {
        self.scale.accesses()
    }

    /// Total accesses (warmup included) simulated through this context.
    /// Replayed runs count too — the figure they feed represents the
    /// same simulated work whether it ran now or before the crash.
    pub fn accesses_simulated(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }

    /// Summed worker nanoseconds spent executing this context's points
    /// (all attempts). Independent of how the shared pool interleaved
    /// this experiment with others, unlike its start-to-finish span.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.load(Ordering::Relaxed)
    }

    /// Runs replayed from the journal instead of simulated.
    pub fn points_replayed(&self) -> u64 {
        self.points_replayed.load(Ordering::Relaxed)
    }

    /// The experiment name this context was built for ("" standalone).
    pub fn experiment(&self) -> &'static str {
        self.experiment
    }

    /// Aggregated host-time phase profile, if profiling was requested.
    pub fn profile(&self) -> Option<PhaseProfile> {
        if !self.profile_enabled {
            return None;
        }
        Some(PhaseProfile {
            steps: self.prof_steps.load(Ordering::Relaxed),
            workload_ns: self.prof_workload_ns.load(Ordering::Relaxed),
            translation_ns: self.prof_translation_ns.load(Ordering::Relaxed),
            data_ns: self.prof_data_ns.load(Ordering::Relaxed),
            maintenance_ns: self.prof_maintenance_ns.load(Ordering::Relaxed),
        })
    }

    /// Maps `f` over `items` on the worker pool; results come back in
    /// input order no matter how the workers are scheduled.
    ///
    /// When a failure sink is attached (`tmcc-bench` runs), each point
    /// runs inside the retry ring: a panic, simulator error, or watchdog
    /// timeout is retried up to the configured `--retries` with a
    /// deterministic re-seed, and a point that exhausts its attempts is
    /// quarantined before the experiment aborts with [`PointAborted`].
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + Clone,
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        self.map_points(items, f, false)
    }

    /// Like [`SweepCtx::par_map`], but runs the points one at a time on
    /// the calling thread with the worker pool *installed*, so all
    /// `--jobs` parallelism serves work *inside* the point (the
    /// multi-tenant round loop fans its tenant quanta onto the ambient
    /// pool). Fleet-scale grids use this: one thousand-tenant roster
    /// live at a time parallelizes cleanly, while running several such
    /// points concurrently just thrashes the allocator.
    pub fn seq_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + Clone,
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        self.map_points(items, f, true)
    }

    fn map_points<T, R, F>(&self, items: Vec<T>, f: F, sequential: bool) -> Vec<R>
    where
        T: Send + Clone,
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        let indexed: Vec<(usize, T)> = items.into_iter().enumerate().collect();
        if let Some(point) = self.only_point {
            let grid = indexed.len();
            let Some((index, item)) = indexed.into_iter().find(|&(i, _)| i == point) else {
                eprintln!("[{}] --point {point} out of range (grid has {grid})", self.experiment);
                std::panic::panic_any(PointAborted);
            };
            let _ = self.run_point(index, item, &f);
            println!("[{}] point {point} replayed successfully", self.experiment);
            std::panic::panic_any(PointReplayDone);
        }
        let run = |(index, item): (usize, T)| self.run_point(index, item, &f);
        if self.jobs <= 1 {
            return indexed.into_iter().map(run).collect();
        }
        if sequential {
            self.pool.install(|| indexed.into_iter().map(run).collect())
        } else {
            self.pool.install(|| indexed.into_par_iter().map(run).collect())
        }
    }

    /// One point through the retry ring (or straight through when no
    /// failure sink is attached — standalone binaries keep the legacy
    /// fail-fast behavior).
    fn run_point<T, R, F>(&self, index: usize, item: T, f: &F) -> R
    where
        T: Clone,
        F: Fn(T) -> R,
    {
        let Some(sink) = &self.failures else {
            let start = Instant::now();
            let r = f(item);
            self.busy_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            return r;
        };
        let attempts = self.retries + 1;
        let mut timeouts = 0u32;
        let mut last_cause = None;
        for attempt in 0..attempts {
            POINT_CTX.with(|c| c.set(PointState { attempt, timeouts }));
            LAST_SIM_ERROR.with(|c| c.borrow_mut().take());
            let injected =
                FailPoint::from_env().is_some_and(|fp| fp.matches(self.experiment, index, attempt));
            let start = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| {
                if injected {
                    panic!("injected failure ({})", crate::failures::FAIL_POINT_ENV);
                }
                f(item.clone())
            }));
            self.busy_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            POINT_CTX.with(|c| c.set(PointState::default()));
            match result {
                Ok(r) => {
                    if attempt > 0 {
                        eprintln!(
                            "[{}] point {index} recovered on attempt {}",
                            self.experiment,
                            attempt + 1
                        );
                    }
                    return r;
                }
                Err(payload) => {
                    let cause = classify_failure(payload);
                    if matches!(cause, FailureCause::Timeout { .. }) {
                        timeouts += 1;
                    }
                    eprintln!(
                        "[{}] point {index} attempt {}/{attempts} failed ({})",
                        self.experiment,
                        attempt + 1,
                        cause.kind()
                    );
                    last_cause = Some(cause);
                }
            }
        }
        let cause = last_cause.unwrap_or(FailureCause::Panic { message: "unknown".into() });
        sink.record(PointFailure {
            experiment: self.experiment,
            index,
            cause,
            attempts,
            seed: LAST_POINT_SEED.with(Cell::get),
            scale: self.scale.name(),
            config_hash: crate::journal::scale_config_hash(self.scale),
        });
        std::panic::panic_any(PointAborted);
    }

    /// Writes `results/<name>.json` under the context's output directory
    /// (same bytes as the legacy per-binary `write_json`).
    pub fn emit<T: Serialize>(&self, name: &str, value: &T) {
        let _ = fs::create_dir_all(&self.out_dir);
        let path = self.out_dir.join(format!("{name}.json"));
        match serde_json::to_string_pretty(value) {
            Ok(s) => {
                if fs::write(&path, s).is_ok() {
                    println!("\n[results written to {}]", path.display());
                }
            }
            Err(e) => eprintln!("could not serialize results: {e}"),
        }
    }

    /// Applies the scale's warmup/footprint overrides and the profile
    /// flag to a config, plus the executing point's retry adjustments:
    /// retry attempts get a deterministic seed perturbation (a flaky
    /// point re-rolls its access stream instead of replaying the exact
    /// crash), and `--quick` runs halve the footprint per prior timeout
    /// so a wedged smoke point degrades instead of timing out forever.
    pub fn tune(&self, mut cfg: SystemConfig) -> SystemConfig {
        if let Some(w) = self.scale.warmup() {
            cfg.warmup_accesses = w;
        }
        if let Some(cap) = self.scale.pages_cap() {
            cfg.workload.sim_pages = cfg.workload.sim_pages.min(cap);
        }
        cfg.size_samples = self.scale.size_samples();
        if self.profile_enabled {
            cfg.profile = true;
        }
        let point = POINT_CTX.with(Cell::get);
        if point.attempt > 0 {
            cfg.seed ^= RESEED_GOLDEN.wrapping_mul(point.attempt as u64);
        }
        if point.timeouts > 0 && self.scale == Scale::Quick {
            let shift = point.timeouts.min(8);
            cfg.workload.sim_pages = (cfg.workload.sim_pages >> shift).max(64);
        }
        LAST_POINT_SEED.with(|c| c.set(Some(cfg.seed)));
        cfg
    }

    /// Multi-tenant counterpart of [`SweepCtx::tune`]. The scenario
    /// builders in `experiments::mt` are already scale-aware (roster
    /// footprints, warmups and quanta are sized per [`Scale`]), so only
    /// the per-attempt retry re-seed applies here.
    pub fn tune_mt(&self, mut cfg: MultiTenantConfig) -> MultiTenantConfig {
        let point = POINT_CTX.with(Cell::get);
        if point.attempt > 0 {
            cfg.seed ^= RESEED_GOLDEN.wrapping_mul(point.attempt as u64);
        }
        LAST_POINT_SEED.with(|c| c.set(Some(cfg.seed)));
        cfg
    }

    /// Runs one tuned config for `accesses` measured accesses, counting
    /// the simulated work and (if enabled) the phase profile.
    pub fn run(&self, cfg: SystemConfig, accesses: u64) -> RunReport {
        match self.try_run(cfg, accesses) {
            Ok(r) => r,
            Err(e) => {
                // Leave the typed error for the retry ring's classifier;
                // the panic itself is what routes control there.
                LAST_SIM_ERROR.with(|c| *c.borrow_mut() = Some(e.to_string()));
                panic!("{e}")
            }
        }
    }

    /// Fallible variant of [`SweepCtx::run`] (robustness sweeps record
    /// the error instead of aborting).
    ///
    /// This is the journal's unit of replay: the tuned config + access
    /// count fingerprint the run, a journal hit decodes the stored
    /// report (bit-exact — downstream JSON stays byte-identical) instead
    /// of simulating, and a completed run is appended before returning.
    /// Watchdog cancellation is converted to a [`PointTimeout`] panic so
    /// timeouts reach the retry ring even from callers that handle the
    /// `Err` branch themselves.
    pub fn try_run(&self, cfg: SystemConfig, accesses: u64) -> Result<RunReport, TmccError> {
        self.try_run_keyed("", cfg, accesses)
    }

    /// Integrity-storm counterpart of [`SweepCtx::try_run`]: identical
    /// replay and journaling, but keys carry the `int|` prefix (like
    /// `mt|` and `cap|`) so storm records — whose configs differ from a
    /// plain run's only by the flip plan — live in their own key space
    /// and can never shadow or be shadowed by another family's record.
    pub fn try_run_integrity(
        &self,
        cfg: SystemConfig,
        accesses: u64,
    ) -> Result<RunReport, TmccError> {
        self.try_run_keyed("int|", cfg, accesses)
    }

    /// Runs one integrity point, panicking on error so failures route
    /// through the retry ring (the storm counterpart of [`SweepCtx::run`]).
    pub fn run_integrity(&self, cfg: SystemConfig, accesses: u64) -> RunReport {
        match self.try_run_integrity(cfg, accesses) {
            Ok(r) => r,
            Err(e) => {
                LAST_SIM_ERROR.with(|c| *c.borrow_mut() = Some(e.to_string()));
                panic!("{e}")
            }
        }
    }

    fn try_run_keyed(
        &self,
        key_prefix: &'static str,
        cfg: SystemConfig,
        accesses: u64,
    ) -> Result<RunReport, TmccError> {
        let cfg = self.tune(cfg);
        let warmup = cfg.warmup_accesses;
        let key = fingerprint(&format!("{key_prefix}{cfg:?}|{accesses}"));
        if let Some(journal) = &self.journal {
            if let Some(json) = journal.lookup(self.experiment, key) {
                match decode_report(json) {
                    Ok(report) => {
                        self.accesses.fetch_add(warmup + accesses, Ordering::Relaxed);
                        self.points_replayed.fetch_add(1, Ordering::Relaxed);
                        return Ok(report);
                    }
                    Err(detail) => eprintln!(
                        "warning: [{}] journal record undecodable ({detail}); re-running",
                        self.experiment
                    ),
                }
            }
        }
        let mut sys = System::try_new(cfg)?;
        let _guard = self.watchdog.as_ref().map(|dog| {
            let handle = RunHandle::new();
            sys.attach_handle(&handle);
            dog.arm(self.point_budget(), &handle)
        });
        let result = sys.try_run(accesses);
        // Count even failed runs: the work up to the failure was simulated.
        self.accesses.fetch_add(warmup + accesses, Ordering::Relaxed);
        let p = sys.phase_profile();
        if p.steps > 0 {
            self.prof_steps.fetch_add(p.steps, Ordering::Relaxed);
            self.prof_workload_ns.fetch_add(p.workload_ns, Ordering::Relaxed);
            self.prof_translation_ns.fetch_add(p.translation_ns, Ordering::Relaxed);
            self.prof_data_ns.fetch_add(p.data_ns, Ordering::Relaxed);
            self.prof_maintenance_ns.fetch_add(p.maintenance_ns, Ordering::Relaxed);
        }
        if let Err(e) = &result {
            if e.is_cancelled() {
                let budget_ms = self.point_budget().as_millis() as u64;
                std::panic::panic_any(PointTimeout { budget_ms });
            }
        }
        if let (Ok(report), Some(journal)) = (&result, &self.journal) {
            match serde_json::to_string(report) {
                Ok(json) => journal.append(self.experiment, key, &json),
                Err(e) => eprintln!("warning: could not journal a run: {e}"),
            }
        }
        result
    }

    /// Runs one multi-tenant scenario, panicking on error so failures
    /// route through the retry ring (the MT counterpart of
    /// [`SweepCtx::run`]).
    pub fn run_mt(&self, cfg: MultiTenantConfig, accesses: u64) -> MultiTenantReport {
        match self.try_run_mt(cfg, accesses) {
            Ok(r) => r,
            Err(e) => {
                LAST_SIM_ERROR.with(|c| *c.borrow_mut() = Some(e.to_string()));
                panic!("{e}")
            }
        }
    }

    /// Fallible multi-tenant counterpart of [`SweepCtx::try_run`]: same
    /// journal replay (keys prefixed `mt|` so they can never collide
    /// with single-system fingerprints), same watchdog arming — the
    /// cancellation token is wired in before construction so admission
    /// warmups respect the deadline — and the same timeout-to-panic
    /// conversion into the retry ring.
    pub fn try_run_mt(
        &self,
        cfg: MultiTenantConfig,
        accesses: u64,
    ) -> Result<MultiTenantReport, TmccError> {
        let cfg = self.tune_mt(cfg);
        let initial_warmups =
            cfg.warmup_accesses * cfg.initial_tenants.min(cfg.roster.len()) as u64;
        let key = fingerprint(&format!("mt|{cfg:?}|{accesses}"));
        if let Some(journal) = &self.journal {
            if let Some(json) = journal.lookup(self.experiment, key) {
                match decode_mt_report(json) {
                    Ok(report) => {
                        self.accesses.fetch_add(initial_warmups + accesses, Ordering::Relaxed);
                        self.points_replayed.fetch_add(1, Ordering::Relaxed);
                        return Ok(report);
                    }
                    Err(detail) => eprintln!(
                        "warning: [{}] journal record undecodable ({detail}); re-running",
                        self.experiment
                    ),
                }
            }
        }
        let handle = RunHandle::new();
        let _guard = self.watchdog.as_ref().map(|dog| dog.arm(self.point_budget(), &handle));
        let result = MultiTenantSystem::try_new_cancellable(cfg, Some(&handle))
            .and_then(|mut sys| sys.try_run(accesses));
        // Count even failed scenarios: the work up to the failure ran.
        self.accesses.fetch_add(initial_warmups + accesses, Ordering::Relaxed);
        if let Err(e) = &result {
            if e.is_cancelled() {
                let budget_ms = self.point_budget().as_millis() as u64;
                std::panic::panic_any(PointTimeout { budget_ms });
            }
        }
        if let (Ok(report), Some(journal)) = (&result, &self.journal) {
            match serde_json::to_string(report) {
                Ok(json) => journal.append(self.experiment, key, &json),
                Err(e) => eprintln!("warning: could not journal a run: {e}"),
            }
        }
        result
    }

    /// Runs one capacity/footprint point, panicking on error so failures
    /// route through the retry ring (the capacity counterpart of
    /// [`SweepCtx::run`]).
    pub fn run_capacity(
        &self,
        cfg: SystemConfig,
        accesses: u64,
    ) -> (RunReport, CapacityProbe, Option<HostCost>) {
        match self.try_run_capacity(cfg, accesses) {
            Ok(r) => r,
            Err(e) => {
                LAST_SIM_ERROR.with(|c| *c.borrow_mut() = Some(e.to_string()));
                panic!("{e}")
            }
        }
    }

    /// Capacity counterpart of [`SweepCtx::try_run`]: same journal replay
    /// (keys prefixed `cap|`) and watchdog arming, but the journal record
    /// carries a [`CapacityProbe`] beside the report — the host-side
    /// metadata/store measurements a plain [`RunReport`] cannot express.
    /// The returned [`HostCost`] is the *nondeterministic* wall-clock/RSS
    /// side and is `None` for replayed points; it must never feed a
    /// golden-compared results file.
    pub fn try_run_capacity(
        &self,
        cfg: SystemConfig,
        accesses: u64,
    ) -> Result<(RunReport, CapacityProbe, Option<HostCost>), TmccError> {
        let cfg = self.tune(cfg);
        let warmup = cfg.warmup_accesses;
        let key = fingerprint(&format!("cap|{cfg:?}|{accesses}"));
        if let Some(journal) = &self.journal {
            if let Some(json) = journal.lookup(self.experiment, key) {
                match decode_capacity(json) {
                    Ok((report, probe)) => {
                        self.accesses.fetch_add(warmup + accesses, Ordering::Relaxed);
                        self.points_replayed.fetch_add(1, Ordering::Relaxed);
                        return Ok((report, probe, None));
                    }
                    Err(detail) => eprintln!(
                        "warning: [{}] journal record undecodable ({detail}); re-running",
                        self.experiment
                    ),
                }
            }
        }
        let rss_before_kb = crate::hostmem::current_rss_kb();
        let construct_start = Instant::now();
        let mut sys = System::try_new(cfg)?;
        let construct_ms = construct_start.elapsed().as_secs_f64() * 1e3;
        let _guard = self.watchdog.as_ref().map(|dog| {
            let handle = RunHandle::new();
            sys.attach_handle(&handle);
            dog.arm(self.point_budget(), &handle)
        });
        let run_start = Instant::now();
        let result = sys.try_run(accesses);
        let run_ms = run_start.elapsed().as_secs_f64() * 1e3;
        self.accesses.fetch_add(warmup + accesses, Ordering::Relaxed);
        if let Err(e) = &result {
            if e.is_cancelled() {
                let budget_ms = self.point_budget().as_millis() as u64;
                std::panic::panic_any(PointTimeout { budget_ms });
            }
        }
        let report = result?;
        let (store_reads, store_writes, store_divergent_writes) = sys.page_store().stats();
        let probe = CapacityProbe {
            metadata_heap_bytes: sys.metadata_heap_bytes() as u64,
            store_heap_bytes: sys.page_store().heap_bytes() as u64,
            store_reads,
            store_writes,
            store_divergent_writes,
            pinned_pages: sys.page_store().pinned_pages() as u64,
        };
        let host = HostCost {
            construct_ms,
            run_ms,
            rss_before_kb,
            rss_after_kb: crate::hostmem::current_rss_kb(),
        };
        if let Some(journal) = &self.journal {
            match (serde_json::to_string(&report), serde_json::to_string(&probe)) {
                (Ok(r), Ok(p)) => {
                    journal.append(
                        self.experiment,
                        key,
                        &format!("{{\"report\":{r},\"probe\":{p}}}"),
                    );
                }
                _ => eprintln!("warning: could not journal a capacity run"),
            }
        }
        Ok((report, probe, Some(host)))
    }

    /// This context's watchdog deadline per simulation run.
    fn point_budget(&self) -> Duration {
        effective_budget(self.scale.point_budget().mul_f64(self.budget_weight.max(0.1)))
    }

    /// [`crate::run_scheme`] through the context.
    pub fn run_scheme(
        &self,
        workload: &WorkloadProfile,
        scheme: SchemeKind,
        budget: Option<u64>,
        accesses: u64,
    ) -> RunReport {
        let mut cfg = SystemConfig::new(workload.clone(), scheme);
        cfg.dram_budget_bytes = budget;
        self.run(cfg, accesses)
    }

    /// [`crate::run_two_level`] through the context.
    pub fn run_two_level(
        &self,
        workload: &WorkloadProfile,
        toggles: TmccToggles,
        budget: u64,
        accesses: u64,
    ) -> RunReport {
        let kind = if toggles.embedded_ctes && toggles.fast_deflate {
            SchemeKind::Tmcc
        } else {
            SchemeKind::OsInspired
        };
        let cfg =
            SystemConfig::new(workload.clone(), kind).with_budget(budget).with_toggles(toggles);
        self.run(cfg, accesses)
    }

    /// [`crate::compresso_anchor`] through the context.
    pub fn compresso_anchor(&self, workload: &WorkloadProfile, accesses: u64) -> (RunReport, u64) {
        let r = self.run_scheme(workload, SchemeKind::Compresso, None, accesses);
        let used = r.stats.dram_used_bytes;
        (r, used)
    }

    /// [`crate::iso_perf_budget_search`] through the context.
    pub fn iso_perf_budget_search(
        &self,
        workload: &WorkloadProfile,
        toggles: TmccToggles,
        perf_floor: f64,
        accesses: u64,
    ) -> (u64, RunReport) {
        let kind = if toggles.embedded_ctes && toggles.fast_deflate {
            SchemeKind::Tmcc
        } else {
            SchemeKind::OsInspired
        };
        self.iso_perf_budget_search_cfg(
            workload,
            |b| SystemConfig::new(workload.clone(), kind).with_budget(b).with_toggles(toggles),
            perf_floor,
            accesses,
        )
    }

    /// [`crate::iso_perf_budget_search_cfg`] through the context.
    pub fn iso_perf_budget_search_cfg(
        &self,
        workload: &WorkloadProfile,
        make_cfg: impl Fn(u64) -> SystemConfig,
        perf_floor: f64,
        accesses: u64,
    ) -> (u64, RunReport) {
        let probe = SystemConfig::new(workload.clone(), SchemeKind::Tmcc);
        let min = System::min_budget_bytes(&probe);
        let max = workload.sim_pages * 4096 + (1 << 22);
        let mut lo = min;
        let mut hi = max;
        let mut best: Option<(u64, RunReport)> = None;
        for _ in 0..5 {
            let mid = lo + (hi - lo) / 2;
            let r = self.run(make_cfg(mid), accesses);
            if r.perf_accesses_per_us() >= perf_floor {
                best = Some((mid, r));
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        best.unwrap_or_else(|| {
            let r = self.run(make_cfg(max), accesses);
            (max, r)
        })
    }
}

/// Seed-perturbation constant for retry attempts (the golden-ratio
/// multiplier also used by the workspace hasher). `seed ^ GOLDEN*attempt`
/// is deterministic — re-running a resumed sweep retries with the same
/// perturbed seeds — yet decorrelates the access stream from the attempt
/// that failed.
const RESEED_GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Classifies a caught point panic into a typed cause, consuming the
/// thread-local simulator-error note when one was left.
fn classify_failure(payload: Box<dyn std::any::Any + Send>) -> FailureCause {
    let payload = match payload.downcast::<PointTimeout>() {
        Ok(t) => return FailureCause::Timeout { budget_ms: t.budget_ms },
        Err(p) => p,
    };
    if let Some(error) = LAST_SIM_ERROR.with(|c| c.borrow_mut().take()) {
        return FailureCause::Sim { error };
    }
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into());
    FailureCause::Panic { message }
}

/// Decodes a journaled compact-JSON report (see `RunReport::from_value`).
fn decode_report(json: &str) -> Result<RunReport, String> {
    let value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    RunReport::from_value(&value)
}

/// Decodes a journaled multi-tenant report.
fn decode_mt_report(json: &str) -> Result<MultiTenantReport, String> {
    let value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    MultiTenantReport::from_value(&value)
}

/// Deterministic host-side measurements of one capacity point: the
/// scheme's metadata heap and the lazy page store's activity. Everything
/// here is a pure function of the config, so it is journaled beside the
/// report and may feed golden-compared results files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CapacityProbe {
    /// Host heap bytes of the scheme's metadata structures
    /// (`System::metadata_heap_bytes`).
    pub metadata_heap_bytes: u64,
    /// Host heap bytes of the lazy page store (scratch + pinned pages).
    pub store_heap_bytes: u64,
    /// Pages materialized from the content seed.
    pub store_reads: u64,
    /// Whole-page writes verified against the seed.
    pub store_writes: u64,
    /// Writes that diverged from the seed and pinned host memory.
    pub store_divergent_writes: u64,
    /// Pages pinned (divergent) at the end of the run.
    pub pinned_pages: u64,
}

impl CapacityProbe {
    /// Decodes a probe from its journaled JSON value.
    pub fn from_value(v: &serde::Value) -> Result<Self, String> {
        let mut f = serde::FieldReader::open(v, "CapacityProbe")?;
        let probe = Self {
            metadata_heap_bytes: f.u64("metadata_heap_bytes")?,
            store_heap_bytes: f.u64("store_heap_bytes")?,
            store_reads: f.u64("store_reads")?,
            store_writes: f.u64("store_writes")?,
            store_divergent_writes: f.u64("store_divergent_writes")?,
            pinned_pages: f.u64("pinned_pages")?,
        };
        f.finish()?;
        Ok(probe)
    }
}

/// Nondeterministic host costs of one *live* capacity run (wall clock,
/// RSS). `None` for journal-replayed points; only ever emitted to
/// `FOOTPRINT.json`, which the golden diffs exclude.
#[derive(Debug, Clone, Copy)]
pub struct HostCost {
    /// `System::try_new` wall time, ms.
    pub construct_ms: f64,
    /// Warmup + measured accesses wall time, ms.
    pub run_ms: f64,
    /// Process RSS just before construction, kB.
    pub rss_before_kb: u64,
    /// Process RSS right after the run, kB.
    pub rss_after_kb: u64,
}

/// Decodes a journaled capacity record (`{"report": .., "probe": ..}`).
fn decode_capacity(json: &str) -> Result<(RunReport, CapacityProbe), String> {
    let value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let mut f = serde::FieldReader::open(&value, "CapacityRecord")?;
    let report = RunReport::from_value(f.value("report")?)?;
    let probe = CapacityProbe::from_value(f.value("probe")?)?;
    f.finish()?;
    Ok((report, probe))
}

/// One experiment's entry in `BENCH_sweep.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentTiming {
    /// Registry name (also the `results/<name>.json` file stem).
    pub name: &'static str,
    /// `"ok"`, or `"failed"` when the experiment aborted on a
    /// quarantined point (see `results/FAILURES.json`).
    pub status: &'static str,
    /// Wall-clock milliseconds from the experiment's start to its finish.
    /// Under a shared `run-all` pool spans overlap and include time spent
    /// on *other* experiments' stolen work, so they sum to more than the
    /// suite wall clock and vary with scheduling order.
    pub wall_ms: f64,
    /// Summed worker milliseconds actually executing this experiment's
    /// points — schedule-independent, what `accesses_per_sec` divides by.
    pub busy_ms: f64,
    /// Total accesses (warmup included) the experiment simulated.
    pub accesses_simulated: u64,
    /// Simulation throughput per busy worker-second (falls back to the
    /// wall span for experiments that never enter the point runner).
    /// This is what `tmcc-bench perf-gate` compares: busy time makes it
    /// reproducible under the work-stealing scheduler, where span-based
    /// throughput flips by 2x+ with queue position.
    pub accesses_per_sec: f64,
    /// Runs replayed from the sweep journal instead of simulated
    /// (non-zero only under `--resume`).
    pub points_replayed: u64,
}

/// The consolidated `BENCH_sweep.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct SweepSummary {
    /// Scale the sweep ran at.
    pub scale: &'static str,
    /// Worker count.
    pub jobs: usize,
    /// Per-experiment wall clock and throughput.
    pub experiments: Vec<ExperimentTiming>,
    /// Wall-clock milliseconds for the whole sweep.
    pub total_wall_ms: f64,
    /// Total accesses simulated across every experiment.
    pub total_accesses_simulated: u64,
    /// Aggregate simulation throughput.
    pub accesses_per_sec: f64,
    /// Peak process RSS over the whole sweep, kB (0 off-Linux). Gated
    /// one-sidedly by `tmcc-bench perf-gate` against the checked-in
    /// baseline so metadata-footprint regressions fail CI.
    pub peak_rss_kb: u64,
    /// Host-time phase profile (all zeros unless `--profile` was given).
    pub profile: PhaseProfile,
}
