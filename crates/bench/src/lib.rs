//! Shared harness for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has one binary in
//! `src/bin/` (see DESIGN.md §4). They share this tiny library: pretty
//! table printing, JSON result emission under `results/`, and the standard
//! run helpers (iso-savings budgets, normalized comparisons, iso-perf
//! search).

pub mod experiments;
pub mod failures;
pub mod hostmem;
pub mod journal;
pub mod perf_gate;
pub mod registry;
pub mod sweep;
pub mod watchdog;

use serde::Serialize;
use std::fs;
use std::path::PathBuf;
use tmcc::config::TmccToggles;
use tmcc::{RunReport, SchemeKind, System, SystemConfig};
use tmcc_workloads::WorkloadProfile;

/// Default measured accesses per run. Large enough to stabilize miss
/// rates on every workload, small enough that a full figure regenerates
/// in minutes.
pub const DEFAULT_ACCESSES: u64 = 100_000;

/// Prints a two-column-plus table with a header.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// The repo-level `results/` directory (the default sweep output).
pub fn results_dir() -> PathBuf {
    PathBuf::from(env_root()).join("results")
}

/// Writes a JSON result document under `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if fs::write(&path, s).is_ok() {
                println!("\n[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("could not serialize results: {e}"),
    }
}

fn env_root() -> String {
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| format!("{d}/../.."))
        .unwrap_or_else(|_| ".".to_string())
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Runs one workload under one scheme with an optional budget.
pub fn run_scheme(
    workload: &WorkloadProfile,
    scheme: SchemeKind,
    budget: Option<u64>,
    accesses: u64,
) -> RunReport {
    let mut cfg = SystemConfig::new(workload.clone(), scheme);
    cfg.dram_budget_bytes = budget;
    System::new(cfg).run(accesses)
}

/// Runs a two-level scheme with explicit toggles (Fig. 20 ablations).
pub fn run_two_level(
    workload: &WorkloadProfile,
    toggles: TmccToggles,
    budget: u64,
    accesses: u64,
) -> RunReport {
    let kind = if toggles.embedded_ctes && toggles.fast_deflate {
        SchemeKind::Tmcc
    } else {
        SchemeKind::OsInspired
    };
    let cfg = SystemConfig::new(workload.clone(), kind).with_budget(budget).with_toggles(toggles);
    System::new(cfg).run(accesses)
}

/// Runs Compresso and returns `(report, dram_used)` — the iso-savings
/// anchor of Figs. 17/18/19.
pub fn compresso_anchor(workload: &WorkloadProfile, accesses: u64) -> (RunReport, u64) {
    let r = run_scheme(workload, SchemeKind::Compresso, None, accesses);
    let used = r.stats.dram_used_bytes;
    (r, used)
}

/// The feasible TMCC budget nearest `target` (clamped to the minimum
/// feasible budget for the workload).
pub fn feasible_budget(workload: &WorkloadProfile, target: u64) -> u64 {
    let cfg = SystemConfig::new(workload.clone(), SchemeKind::Tmcc);
    let min = System::min_budget_bytes(&cfg);
    target.max(min)
}

/// Binary-search the smallest DRAM budget at which `toggles` still
/// delivers at least `perf_floor` accesses/µs (the Table IV methodology:
/// "operating points where TMCC can still provide the same performance as
/// Compresso"). Returns `(budget, report_at_budget)`.
pub fn iso_perf_budget_search(
    workload: &WorkloadProfile,
    toggles: TmccToggles,
    perf_floor: f64,
    accesses: u64,
) -> (u64, RunReport) {
    let cfg = SystemConfig::new(workload.clone(), SchemeKind::Tmcc);
    let min = System::min_budget_bytes(&cfg);
    let max = workload.sim_pages * 4096 + (1 << 22);
    let mut lo = min;
    let mut hi = max;
    let mut best: Option<(u64, RunReport)> = None;
    for _ in 0..5 {
        let mid = lo + (hi - lo) / 2;
        let r = run_two_level(workload, toggles, mid, accesses);
        if r.perf_accesses_per_us() >= perf_floor {
            best = Some((mid, r));
            hi = mid; // try to save more
        } else {
            lo = mid + 1;
        }
    }
    best.unwrap_or_else(|| {
        let r = run_two_level(workload, toggles, max, accesses);
        (max, r)
    })
}

/// Like [`iso_perf_budget_search`], but with an arbitrary config factory —
/// used by the huge-page sensitivity study, which needs extra settings on
/// every probe.
pub fn iso_perf_budget_search_cfg(
    workload: &WorkloadProfile,
    make_cfg: impl Fn(u64) -> SystemConfig,
    perf_floor: f64,
    accesses: u64,
) -> (u64, RunReport) {
    let probe = SystemConfig::new(workload.clone(), SchemeKind::Tmcc);
    let min = System::min_budget_bytes(&probe);
    let max = workload.sim_pages * 4096 + (1 << 22);
    let mut lo = min;
    let mut hi = max;
    let mut best: Option<(u64, RunReport)> = None;
    for _ in 0..5 {
        let mid = lo + (hi - lo) / 2;
        let r = System::new(make_cfg(mid)).run(accesses);
        if r.perf_accesses_per_us() >= perf_floor {
            best = Some((mid, r));
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    best.unwrap_or_else(|| {
        let r = System::new(make_cfg(max)).run(accesses);
        (max, r)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
