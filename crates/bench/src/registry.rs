//! The experiment registry: every figure/table of the evaluation,
//! registered by name so `tmcc-bench` (and the golden determinism test)
//! can enumerate and run them uniformly.
//!
//! Names double as the `results/<name>.json` file stems. The per-figure
//! binaries in `src/bin/` are thin shims over [`run_standalone`].

use crate::experiments;
use crate::sweep::SweepCtx;

/// One registered experiment.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Registry name == `results/<name>.json` stem.
    pub name: &'static str,
    /// Watchdog budget multiplier over `Scale::point_budget`, calibrated
    /// to the experiment's sequential runs per sweep point: 1.0 for one
    /// run per point, up to 4.0 for the iso-perf binary searches (each
    /// point chains several simulation runs that must share a deadline
    /// class without tripping it).
    pub budget_weight: f64,
    /// One-line description shown by `tmcc-bench list`.
    pub title: &'static str,
    /// Executes the config grid through the context and emits the JSON.
    pub run: fn(&SweepCtx),
}

/// Every registered experiment, in suite order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "fig01_tlb_cte_misses",
            budget_weight: 1.0,
            title: "Fig. 1 — TLB and CTE misses per LLC miss (Compresso CTEs)",
            run: experiments::fig01::run,
        },
        Experiment {
            name: "fig02_cte_hit_rates",
            budget_weight: 1.0,
            title: "Fig. 2 — CTE hits under a 4x CTE cache + LLC victim caching",
            run: experiments::fig02::run,
        },
        Experiment {
            name: "fig05_cte_after_tlb",
            budget_weight: 1.0,
            title: "Fig. 5 — CTE misses that follow TLB misses (8B page-level CTEs)",
            run: experiments::fig05::run,
        },
        Experiment {
            name: "fig06_ptb_status_bits",
            budget_weight: 1.0,
            title: "Fig. 6 — PTBs with identical status bits across all 8 PTEs",
            run: experiments::fig06::run,
        },
        Experiment {
            name: "fig15_compression_ratio",
            budget_weight: 1.0,
            title: "Fig. 15 — Compression ratio per workload image",
            run: experiments::fig15::run,
        },
        Experiment {
            name: "fig16_mem_characterization",
            budget_weight: 1.0,
            title: "Fig. 16 — Memory characterization (no compression)",
            run: experiments::fig16::run,
        },
        Experiment {
            name: "fig17_perf_vs_compresso",
            budget_weight: 2.0,
            title: "Fig. 17 — TMCC performance normalized to Compresso (iso-savings)",
            run: experiments::fig17::run,
        },
        Experiment {
            name: "fig18_l3_miss_latency",
            budget_weight: 2.0,
            title: "Fig. 18 — Average L3-miss latency",
            run: experiments::fig18::run,
        },
        Experiment {
            name: "fig19_ml1_access_split",
            budget_weight: 2.0,
            title: "Fig. 19 — Distribution of ML1 read accesses (TMCC)",
            run: experiments::fig19::run,
        },
        Experiment {
            name: "fig20_vs_barebone",
            budget_weight: 2.0,
            title: "Fig. 20 — Speedup over barebone OS-inspired compression",
            run: experiments::fig20::run,
        },
        Experiment {
            name: "fig21_ml2_access_rate",
            budget_weight: 2.0,
            title: "Fig. 21 — ML2 accesses per (LLC miss + writeback)",
            run: experiments::fig21::run,
        },
        Experiment {
            name: "fig22_interleaving",
            budget_weight: 2.0,
            title: "Fig. 22 — TMCC-compatible interleaving vs sub-page baseline",
            run: experiments::fig22::run,
        },
        Experiment {
            name: "table1_asic_synthesis",
            budget_weight: 1.0,
            title: "Table I — ASIC Deflate synthesis (7nm model)",
            run: experiments::table1::run,
        },
        Experiment {
            name: "table2_deflate_perf",
            budget_weight: 1.0,
            title: "Table II — Deflate performance for 4 KiB memory pages",
            run: experiments::table2::run,
        },
        Experiment {
            name: "table4_iso_perf_ratio",
            budget_weight: 4.0,
            title: "Table IV — Iso-performance compression ratio vs Compresso",
            run: experiments::table4::run,
        },
        Experiment {
            name: "sens_huge_pages",
            budget_weight: 4.0,
            title: "§VIII — Huge pages: TMCC vs Compresso",
            run: experiments::sens_huge_pages::run,
        },
        Experiment {
            name: "sens_small_workloads",
            budget_weight: 2.0,
            title: "§VII — Small/regular workloads: TMCC vs Compresso",
            run: experiments::sens_small_workloads::run,
        },
        Experiment {
            name: "robustness_sweep",
            budget_weight: 2.0,
            title: "Robustness sweep — balloon shocks of increasing severity",
            run: experiments::robustness::run,
        },
        Experiment {
            name: "integrity_storm",
            budget_weight: 2.0,
            title: "Integrity storm — flip rate vs. detection coverage and SDC escapes",
            run: experiments::integrity::run,
        },
        Experiment {
            name: "capacity_cliff",
            budget_weight: 2.0,
            title: "Capacity cliff — TB-scale footprints under lazy materialization",
            run: experiments::capacity_cliff::run,
        },
        Experiment {
            name: "mt_degradation",
            budget_weight: 3.0,
            title: "Multi-tenant — adversarial-neighbor isolation per QoS policy",
            run: experiments::mt::run_degradation,
        },
        Experiment {
            name: "mt_tail_latency",
            budget_weight: 3.0,
            title: "Multi-tenant — guarantee pressure under working-set spikes",
            run: experiments::mt::run_tail_latency,
        },
        Experiment {
            name: "mt_churn_storm",
            budget_weight: 3.0,
            title: "Multi-tenant — arrival/departure/ballooning churn storms",
            run: experiments::mt::run_churn_storm,
        },
        Experiment {
            name: "mt_fleet",
            budget_weight: 3.0,
            title: "Multi-tenant — thousand-tenant fleet and overcommit frontier",
            run: experiments::mt::run_fleet,
        },
    ]
}

/// Looks an experiment up by exact name, or by unique prefix (so
/// `tmcc-bench run fig17` works).
pub fn find(name: &str) -> Result<Experiment, String> {
    let everything = all();
    if let Some(e) = everything.iter().find(|e| e.name == name) {
        return Ok(*e);
    }
    let matches: Vec<&Experiment> =
        everything.iter().filter(|e| e.name.starts_with(name)).collect();
    match matches.len() {
        1 => Ok(*matches[0]),
        0 => Err(format!("no experiment named '{name}' (see `tmcc-bench list`)")),
        _ => Err(format!(
            "'{name}' is ambiguous: {}",
            matches.iter().map(|e| e.name).collect::<Vec<_>>().join(", ")
        )),
    }
}

/// Entry point for the per-figure shim binaries: full scale, one worker
/// per CPU, repo `results/` output.
pub fn run_standalone(name: &str) {
    match find(name) {
        Ok(e) => {
            let ctx = SweepCtx::standalone().for_experiment(e.name, e.budget_weight);
            (e.run)(&ctx);
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
