//! `tmcc-bench` — the parallel sweep driver for the whole figure suite.
//!
//! ```text
//! tmcc-bench list
//! tmcc-bench run <name>... [--jobs N] [--quick|--test] [--profile] [--out DIR]
//!                          [--resume] [--retries N]
//! tmcc-bench run-all       [--jobs N] [--quick|--test] [--profile] [--out DIR]
//!                          [--resume] [--retries N]
//! ```
//!
//! `run-all` executes every registered experiment and writes the same
//! per-figure `results/*.json` files the standalone binaries write —
//! byte-identically at any `--jobs` count — plus a consolidated
//! `results/BENCH_sweep.json` with wall-clock, accesses simulated and
//! accesses/sec per experiment. `--profile` additionally collects the
//! simulator's host-time phase split (workload / translation / data /
//! maintenance).
//!
//! # Crash safety (DESIGN.md §6.2)
//!
//! Every completed simulation run is journaled under
//! `<out>/.journal/`; `--resume` replays journaled runs byte-identically
//! and simulates only the remainder. Failing points are retried
//! (`--retries`, default 2) and then quarantined into
//! `results/FAILURES.json`; a quarantined point fails its experiment but
//! never the rest of the fleet, and the process exits non-zero so CI
//! notices.

use rayon::ThreadPoolBuilder;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tmcc::PhaseProfile;
use tmcc_bench::failures::FailureSink;
use tmcc_bench::journal::{JournalMeta, ResumeState, SweepJournal};
use tmcc_bench::perf_gate;
use tmcc_bench::registry::{self, Experiment};
use tmcc_bench::sweep::{
    resolve_jobs, ExperimentTiming, PointAborted, PointReplayDone, Scale, SweepCtx, SweepSummary,
    DEFAULT_RETRIES,
};
use tmcc_bench::watchdog::Watchdog;

struct Options {
    jobs: usize,
    scale: Scale,
    profile: bool,
    out: PathBuf,
    resume: bool,
    retries: u32,
    point: Option<usize>,
    names: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: tmcc-bench <command> [options]\n\
         \n\
         commands:\n\
         \x20 list                 list registered experiments\n\
         \x20 run <name>...        run the named experiments\n\
         \x20 run-all              run every registered experiment\n\
         \x20 perf-gate --baseline F --current F [--tolerance-pct P]\n\
         \x20           [--rss-tolerance-pct R]\n\
         \x20                      diff two BENCH_sweep.json summaries; exit 1 on\n\
         \x20                      any acc/s regression beyond P% (default 15) or\n\
         \x20                      peak-RSS growth beyond R% (default 25)\n\
         \n\
         options:\n\
         \x20 --jobs N             worker threads (default: one per CPU)\n\
         \x20 --quick              ~5x smaller runs (CI smoke scale)\n\
         \x20 --test               tiny runs (golden determinism scale)\n\
         \x20 --profile            collect host-time per-phase timing\n\
         \x20 --out DIR            output directory (default: repo results/)\n\
         \x20 --resume             replay completed points from the sweep journal\n\
         \x20 --retries N          attempts per point = N + 1 (default: 2)\n\
         \x20 --point N            (run, one experiment) replay only grid point N —\n\
         \x20                      standalone reproduction of a FAILURES.json entry"
    );
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        jobs: 0,
        scale: Scale::Full,
        profile: false,
        out: tmcc_bench::results_dir(),
        resume: false,
        retries: DEFAULT_RETRIES,
        point: None,
        names: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let v = it.next().unwrap_or_else(|| usage());
                opts.jobs = v.parse().unwrap_or_else(|_| usage());
            }
            "--quick" => opts.scale = Scale::Quick,
            "--test" => opts.scale = Scale::Test,
            "--profile" => opts.profile = true,
            "--out" => {
                let v = it.next().unwrap_or_else(|| usage());
                opts.out = PathBuf::from(v);
            }
            "--resume" => opts.resume = true,
            "--point" => {
                let v = it.next().unwrap_or_else(|| usage());
                opts.point = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--retries" => {
                let v = it.next().unwrap_or_else(|| usage());
                opts.retries = v.parse().unwrap_or_else(|_| usage());
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}\n");
                usage();
            }
            name => opts.names.push(name.to_string()),
        }
    }
    opts
}

/// The shared crash-safety plumbing of one sweep invocation.
struct Harness {
    journal: Arc<SweepJournal>,
    watchdog: Arc<Watchdog>,
    failures: Arc<FailureSink>,
}

impl Harness {
    /// Opens the journal (resuming if asked), starts the watchdog.
    fn new(opts: &Options) -> Self {
        let meta = JournalMeta::current(opts.scale);
        let journal = if opts.resume {
            match SweepJournal::open_resume(&opts.out, &meta) {
                Ok((journal, state)) => {
                    match state {
                        ResumeState::Fresh => {
                            println!("[resume] no journal found; starting cold");
                        }
                        ResumeState::Resumed { records, dropped_tail } => {
                            println!(
                                "[resume] replaying {records} completed point(s) from {}{}",
                                journal.path().display(),
                                if dropped_tail { " (torn tail dropped)" } else { "" }
                            );
                        }
                        ResumeState::Invalidated { field } => {
                            println!(
                                "[resume] journal {field} mismatch (different build, scale, or \
                                 tuning); starting cold"
                            );
                        }
                    }
                    journal
                }
                Err(e) => {
                    eprintln!("cannot resume: {e}");
                    std::process::exit(1);
                }
            }
        } else {
            match SweepJournal::open_fresh(&opts.out, &meta) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("cannot open sweep journal: {e}");
                    std::process::exit(1);
                }
            }
        };
        Self {
            journal: Arc::new(journal),
            watchdog: Arc::new(Watchdog::new()),
            failures: Arc::new(FailureSink::new()),
        }
    }

    /// A context wired to the shared journal/watchdog/sink for one
    /// experiment.
    fn ctx_for(
        &self,
        e: &Experiment,
        opts: &Options,
        jobs: usize,
        pool: Arc<rayon::ThreadPool>,
    ) -> SweepCtx {
        SweepCtx::with_pool(opts.scale, jobs, opts.out.clone(), opts.profile, pool)
            .for_experiment(e.name, e.budget_weight)
            .with_retries(opts.retries)
            .with_point(opts.point)
            .with_journal(Arc::clone(&self.journal))
            .with_watchdog(Arc::clone(&self.watchdog))
            .with_failures(Arc::clone(&self.failures))
    }
}

/// Runs one experiment through its context, isolating panics: a point
/// quarantine ([`PointAborted`]) or any other experiment-level panic
/// marks the experiment failed without taking down the suite.
fn run_one(e: &Experiment, ctx: &SweepCtx) -> ExperimentTiming {
    println!("\n━━━ {} ━━━", e.name);
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| (e.run)(ctx)));
    let wall = start.elapsed();
    let status = match outcome {
        Ok(()) => "ok",
        Err(payload) if payload.is::<PointReplayDone>() => "replayed",
        Err(payload) => {
            if !payload.is::<PointAborted>() {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                eprintln!("[{}] experiment aborted: {message}", e.name);
            }
            "failed"
        }
    };
    let accesses = ctx.accesses_simulated();
    // Throughput divides by summed point-execution time, not the span:
    // under the shared pool a span includes time this experiment's
    // workers spent stolen by other experiments, which makes span-based
    // acc/s flip 2x+ with scheduling order and trip the perf gate.
    let busy = ctx.busy_ns() as f64 / 1e9;
    let denom = if busy > 0.0 { busy } else { wall.as_secs_f64() };
    ExperimentTiming {
        name: e.name,
        status,
        wall_ms: wall.as_secs_f64() * 1e3,
        busy_ms: busy * 1e3,
        accesses_simulated: accesses,
        accesses_per_sec: accesses as f64 / denom.max(1e-9),
        points_replayed: ctx.points_replayed(),
    }
}

/// Runs `experiments` sequentially, one context each, timing each.
fn run_suite_serial(
    experiments: &[Experiment],
    opts: &Options,
    harness: &Harness,
) -> (Vec<ExperimentTiming>, PhaseProfile) {
    let pool = Arc::new(ThreadPoolBuilder::new().num_threads(1).build().expect("pool"));
    let mut timings = Vec::new();
    let mut profile = PhaseProfile::default();
    for e in experiments {
        let ctx = harness.ctx_for(e, opts, 1, Arc::clone(&pool));
        timings.push(run_one(e, &ctx));
        if let Some(p) = ctx.profile() {
            accumulate_profile(&mut profile, &p);
        }
    }
    (timings, profile)
}

/// Runs `experiments` as tasks on one shared work-stealing pool: every
/// experiment is spawned up front, each with its own context (so access
/// counters stay per-experiment) over the same pool, and the pool
/// saturates its workers across experiment boundaries — an experiment's
/// inner grid chunks fill the gaps left by another's stragglers.
///
/// Results land in per-experiment slots indexed by registry position, so
/// the summary (and every `results/*.json`) keeps registry order no
/// matter how the tasks get scheduled. Per-experiment wall clocks overlap
/// under this scheduler (workers help whichever task is queued), so they
/// sum to more than the suite's wall clock. Panics never reach the
/// shared pool's scope join — [`run_one`] catches them at the experiment
/// boundary, so one failing experiment cannot poison the batch.
fn run_suite_parallel(
    experiments: &[Experiment],
    opts: &Options,
    harness: &Harness,
    jobs: usize,
) -> (Vec<ExperimentTiming>, PhaseProfile) {
    let pool = Arc::new(ThreadPoolBuilder::new().num_threads(jobs).build().expect("pool"));
    let ctxs: Vec<SweepCtx> =
        experiments.iter().map(|e| harness.ctx_for(e, opts, jobs, Arc::clone(&pool))).collect();
    let slots: Vec<Mutex<Option<ExperimentTiming>>> =
        experiments.iter().map(|_| Mutex::new(None)).collect();
    pool.scope(|scope| {
        for (i, e) in experiments.iter().enumerate() {
            let ctx = &ctxs[i];
            let slot = &slots[i];
            scope.spawn(move || {
                *slot.lock().expect("timing slot") = Some(run_one(e, ctx));
            });
        }
    });
    let timings = slots
        .into_iter()
        .map(|m| m.into_inner().expect("timing slot").expect("experiment ran"))
        .collect();
    let mut profile = PhaseProfile::default();
    for p in ctxs.iter().filter_map(SweepCtx::profile) {
        accumulate_profile(&mut profile, &p);
    }
    (timings, profile)
}

fn accumulate_profile(acc: &mut PhaseProfile, p: &PhaseProfile) {
    acc.steps += p.steps;
    acc.workload_ns += p.workload_ns;
    acc.translation_ns += p.translation_ns;
    acc.data_ns += p.data_ns;
    acc.maintenance_ns += p.maintenance_ns;
}

/// Runs `experiments`, timing each; returns the consolidated summary.
fn run_suite(experiments: &[Experiment], opts: &Options, harness: &Harness) -> SweepSummary {
    let jobs = resolve_jobs(opts.jobs);
    let suite_start = Instant::now();
    let (timings, profile) = if jobs <= 1 {
        run_suite_serial(experiments, opts, harness)
    } else {
        run_suite_parallel(experiments, opts, harness, jobs)
    };
    let total_wall = suite_start.elapsed();
    let total_accesses: u64 = timings.iter().map(|t| t.accesses_simulated).sum();
    SweepSummary {
        scale: opts.scale.name(),
        jobs,
        experiments: timings,
        total_wall_ms: total_wall.as_secs_f64() * 1e3,
        total_accesses_simulated: total_accesses,
        accesses_per_sec: total_accesses as f64 / total_wall.as_secs_f64().max(1e-9),
        peak_rss_kb: tmcc_bench::hostmem::peak_rss_kb(),
        profile,
    }
}

fn print_summary(summary: &SweepSummary) {
    println!("\n━━━ sweep summary ({} scale, {} jobs) ━━━", summary.scale, summary.jobs);
    for t in &summary.experiments {
        let replayed = if t.points_replayed > 0 {
            format!("  ({} replayed)", t.points_replayed)
        } else {
            String::new()
        };
        println!(
            "  {:<28} {:>6} {:>9.0} ms  {:>12} accesses  {:>12.0} acc/s{}",
            t.name, t.status, t.wall_ms, t.accesses_simulated, t.accesses_per_sec, replayed
        );
    }
    println!(
        "  {:<28} {:>6} {:>9.0} ms  {:>12} accesses  {:>12.0} acc/s",
        "TOTAL",
        "",
        summary.total_wall_ms,
        summary.total_accesses_simulated,
        summary.accesses_per_sec
    );
    let p = &summary.profile;
    if p.steps > 0 {
        let (w, t, d, m) = p.shares();
        println!(
            "  phase profile over {} steps: workload {:.1}% / translation {:.1}% / \
             data {:.1}% / maintenance {:.1}%",
            p.steps,
            w * 100.0,
            t * 100.0,
            d * 100.0,
            m * 100.0
        );
    }
}

/// Writes `FAILURES.json` (or removes a stale one) and exits non-zero
/// when anything was quarantined.
fn finish(harness: &Harness, opts: &Options) {
    let quarantined = harness.failures.finalize(&opts.out);
    if quarantined > 0 {
        eprintln!("tmcc-bench: {}", harness.failures.summary_line());
        std::process::exit(1);
    }
}

fn main() {
    // `--point` unwinds with [`PointReplayDone`] on success; that control
    // flow must not print as a panic.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !info.payload().is::<PointReplayDone>() {
            default_hook(info);
        }
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    match command.as_str() {
        "list" => {
            for e in registry::all() {
                println!("{:<28} {}", e.name, e.title);
            }
        }
        "run" => {
            let opts = parse_options(&args[1..]);
            if opts.names.is_empty() {
                eprintln!("run: at least one experiment name required\n");
                usage();
            }
            let mut experiments = Vec::new();
            for name in &opts.names {
                match registry::find(name) {
                    Ok(e) => experiments.push(e),
                    Err(msg) => {
                        eprintln!("{msg}");
                        std::process::exit(1);
                    }
                }
            }
            if opts.point.is_some() && experiments.len() != 1 {
                eprintln!("--point replays one grid point; name exactly one experiment\n");
                usage();
            }
            let harness = Harness::new(&opts);
            let summary = run_suite(&experiments, &opts, &harness);
            print_summary(&summary);
            finish(&harness, &opts);
            if opts.point.is_some() && summary.experiments.iter().any(|t| t.status != "replayed") {
                // An out-of-range point aborts without quarantining
                // anything; the replay still failed.
                std::process::exit(1);
            }
        }
        "run-all" => {
            let opts = parse_options(&args[1..]);
            if !opts.names.is_empty() {
                eprintln!("run-all takes no experiment names\n");
                usage();
            }
            if opts.point.is_some() {
                eprintln!("--point requires `run` with a single experiment\n");
                usage();
            }
            let harness = Harness::new(&opts);
            let summary = run_suite(&registry::all(), &opts, &harness);
            print_summary(&summary);
            let _ = std::fs::create_dir_all(&opts.out);
            let path = opts.out.join("BENCH_sweep.json");
            match serde_json::to_string_pretty(&summary) {
                Ok(s) => {
                    if std::fs::write(&path, s).is_ok() {
                        println!("\n[sweep summary written to {}]", path.display());
                    }
                }
                Err(e) => eprintln!("could not serialize sweep summary: {e}"),
            }
            finish(&harness, &opts);
        }
        "perf-gate" => {
            let mut baseline = None;
            let mut current = None;
            let mut tolerance = perf_gate::DEFAULT_TOLERANCE_PCT;
            let mut rss_tolerance = perf_gate::DEFAULT_RSS_TOLERANCE_PCT;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--baseline" => baseline = it.next().map(PathBuf::from),
                    "--current" => current = it.next().map(PathBuf::from),
                    "--tolerance-pct" => {
                        let v = it.next().unwrap_or_else(|| usage());
                        tolerance = v.parse().unwrap_or_else(|_| usage());
                    }
                    "--rss-tolerance-pct" => {
                        let v = it.next().unwrap_or_else(|| usage());
                        rss_tolerance = v.parse().unwrap_or_else(|_| usage());
                    }
                    other => {
                        eprintln!("perf-gate: unknown argument {other}\n");
                        usage();
                    }
                }
            }
            let (Some(baseline), Some(current)) = (baseline, current) else {
                eprintln!("perf-gate: --baseline and --current are both required\n");
                usage();
            };
            let read = |path: &PathBuf| match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("perf-gate: cannot read {}: {e}", path.display());
                    std::process::exit(1);
                }
            };
            let outcome = match perf_gate::evaluate(
                &read(&baseline),
                &read(&current),
                tolerance,
                rss_tolerance,
            ) {
                Ok(o) => o,
                Err(msg) => {
                    eprintln!("perf-gate: {msg}");
                    std::process::exit(1);
                }
            };
            println!("━━━ perf gate (tolerance {tolerance:.0}%, RSS {rss_tolerance:.0}%) ━━━");
            for r in &outcome.rows {
                println!(
                    "  {:<28} {:>12.0} → {:>12.0} acc/s  {:>+7.1}%  {}",
                    r.name,
                    r.baseline_aps,
                    r.current_aps,
                    r.delta_pct,
                    if r.regressed { "REGRESSED" } else { "ok" }
                );
            }
            if let Some(rss) = outcome.rss {
                println!(
                    "  {:<28} {:>12} → {:>12} kB     {:>+7.1}%  {}",
                    "peak RSS",
                    rss.baseline_kb,
                    rss.current_kb,
                    rss.delta_pct,
                    if rss.regressed { "REGRESSED" } else { "ok" }
                );
            }
            for s in &outcome.skipped {
                println!("  skipped: {s}");
            }
            let regressions = outcome.regressions();
            if !regressions.is_empty() {
                eprintln!(
                    "perf-gate: {} experiment(s) regressed beyond {tolerance:.0}%: {}",
                    regressions.len(),
                    regressions.join(", ")
                );
            }
            if outcome.rss.is_some_and(|r| r.regressed) {
                eprintln!("perf-gate: peak RSS grew beyond {rss_tolerance:.0}%");
            }
            if outcome.failed() {
                std::process::exit(1);
            }
            println!("perf-gate: {} experiment(s) within tolerance", outcome.rows.len());
        }
        _ => usage(),
    }
}
