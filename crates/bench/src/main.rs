//! `tmcc-bench` — the parallel sweep driver for the whole figure suite.
//!
//! ```text
//! tmcc-bench list
//! tmcc-bench run <name>... [--jobs N] [--quick|--test] [--profile] [--out DIR]
//! tmcc-bench run-all       [--jobs N] [--quick|--test] [--profile] [--out DIR]
//! ```
//!
//! `run-all` executes every registered experiment and writes the same
//! per-figure `results/*.json` files the standalone binaries write —
//! byte-identically at any `--jobs` count — plus a consolidated
//! `results/BENCH_sweep.json` with wall-clock, accesses simulated and
//! accesses/sec per experiment. `--profile` additionally collects the
//! simulator's host-time phase split (workload / translation / data /
//! maintenance).

use rayon::ThreadPoolBuilder;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tmcc::PhaseProfile;
use tmcc_bench::registry::{self, Experiment};
use tmcc_bench::sweep::{resolve_jobs, ExperimentTiming, Scale, SweepCtx, SweepSummary};

struct Options {
    jobs: usize,
    scale: Scale,
    profile: bool,
    out: PathBuf,
    names: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: tmcc-bench <command> [options]\n\
         \n\
         commands:\n\
         \x20 list                 list registered experiments\n\
         \x20 run <name>...        run the named experiments\n\
         \x20 run-all              run every registered experiment\n\
         \n\
         options:\n\
         \x20 --jobs N             worker threads (default: one per CPU)\n\
         \x20 --quick              ~5x smaller runs (CI smoke scale)\n\
         \x20 --test               tiny runs (golden determinism scale)\n\
         \x20 --profile            collect host-time per-phase timing\n\
         \x20 --out DIR            output directory (default: repo results/)"
    );
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        jobs: 0,
        scale: Scale::Full,
        profile: false,
        out: tmcc_bench::results_dir(),
        names: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let v = it.next().unwrap_or_else(|| usage());
                opts.jobs = v.parse().unwrap_or_else(|_| usage());
            }
            "--quick" => opts.scale = Scale::Quick,
            "--test" => opts.scale = Scale::Test,
            "--profile" => opts.profile = true,
            "--out" => {
                let v = it.next().unwrap_or_else(|| usage());
                opts.out = PathBuf::from(v);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}\n");
                usage();
            }
            name => opts.names.push(name.to_string()),
        }
    }
    opts
}

/// Runs `experiments` sequentially through one context, timing each.
fn run_suite_serial(
    experiments: &[Experiment],
    opts: &Options,
) -> (Vec<ExperimentTiming>, PhaseProfile) {
    let ctx = SweepCtx::new(opts.scale, 1, opts.out.clone(), opts.profile);
    let mut timings = Vec::new();
    for e in experiments {
        println!("\n━━━ {} ━━━", e.name);
        let before = ctx.accesses_simulated();
        let start = Instant::now();
        (e.run)(&ctx);
        let wall = start.elapsed();
        let accesses = ctx.accesses_simulated() - before;
        timings.push(ExperimentTiming {
            name: e.name,
            wall_ms: wall.as_secs_f64() * 1e3,
            accesses_simulated: accesses,
            accesses_per_sec: accesses as f64 / wall.as_secs_f64().max(1e-9),
        });
    }
    (timings, ctx.profile().unwrap_or_default())
}

/// Runs `experiments` as tasks on one shared work-stealing pool: every
/// experiment is spawned up front, each with its own context (so access
/// counters stay per-experiment) over the same pool, and the pool
/// saturates its workers across experiment boundaries — an experiment's
/// inner grid chunks fill the gaps left by another's stragglers.
///
/// Results land in per-experiment slots indexed by registry position, so
/// the summary (and every `results/*.json`) keeps registry order no
/// matter how the tasks get scheduled. Per-experiment wall clocks overlap
/// under this scheduler (workers help whichever task is queued), so they
/// sum to more than the suite's wall clock.
fn run_suite_parallel(
    experiments: &[Experiment],
    opts: &Options,
    jobs: usize,
) -> (Vec<ExperimentTiming>, PhaseProfile) {
    let pool = Arc::new(ThreadPoolBuilder::new().num_threads(jobs).build().expect("pool"));
    let ctxs: Vec<SweepCtx> = experiments
        .iter()
        .map(|_| {
            SweepCtx::with_pool(opts.scale, jobs, opts.out.clone(), opts.profile, Arc::clone(&pool))
        })
        .collect();
    let slots: Vec<Mutex<Option<ExperimentTiming>>> =
        experiments.iter().map(|_| Mutex::new(None)).collect();
    pool.scope(|scope| {
        for (i, e) in experiments.iter().enumerate() {
            let ctx = &ctxs[i];
            let slot = &slots[i];
            scope.spawn(move || {
                println!("\n━━━ {} ━━━", e.name);
                let start = Instant::now();
                (e.run)(ctx);
                let wall = start.elapsed();
                let accesses = ctx.accesses_simulated();
                *slot.lock().expect("timing slot") = Some(ExperimentTiming {
                    name: e.name,
                    wall_ms: wall.as_secs_f64() * 1e3,
                    accesses_simulated: accesses,
                    accesses_per_sec: accesses as f64 / wall.as_secs_f64().max(1e-9),
                });
            });
        }
    });
    let timings = slots
        .into_iter()
        .map(|m| m.into_inner().expect("timing slot").expect("experiment ran"))
        .collect();
    let profile =
        ctxs.iter().filter_map(SweepCtx::profile).fold(PhaseProfile::default(), |mut acc, p| {
            acc.steps += p.steps;
            acc.workload_ns += p.workload_ns;
            acc.translation_ns += p.translation_ns;
            acc.data_ns += p.data_ns;
            acc.maintenance_ns += p.maintenance_ns;
            acc
        });
    (timings, profile)
}

/// Runs `experiments`, timing each; returns the consolidated summary.
fn run_suite(experiments: &[Experiment], opts: &Options) -> SweepSummary {
    let jobs = resolve_jobs(opts.jobs);
    let suite_start = Instant::now();
    let (timings, profile) = if jobs <= 1 {
        run_suite_serial(experiments, opts)
    } else {
        run_suite_parallel(experiments, opts, jobs)
    };
    let total_wall = suite_start.elapsed();
    let total_accesses: u64 = timings.iter().map(|t| t.accesses_simulated).sum();
    SweepSummary {
        scale: opts.scale.name(),
        jobs,
        experiments: timings,
        total_wall_ms: total_wall.as_secs_f64() * 1e3,
        total_accesses_simulated: total_accesses,
        accesses_per_sec: total_accesses as f64 / total_wall.as_secs_f64().max(1e-9),
        profile,
    }
}

fn print_summary(summary: &SweepSummary) {
    println!("\n━━━ sweep summary ({} scale, {} jobs) ━━━", summary.scale, summary.jobs);
    for t in &summary.experiments {
        println!(
            "  {:<28} {:>9.0} ms  {:>12} accesses  {:>12.0} acc/s",
            t.name, t.wall_ms, t.accesses_simulated, t.accesses_per_sec
        );
    }
    println!(
        "  {:<28} {:>9.0} ms  {:>12} accesses  {:>12.0} acc/s",
        "TOTAL", summary.total_wall_ms, summary.total_accesses_simulated, summary.accesses_per_sec
    );
    let p = &summary.profile;
    if p.steps > 0 {
        let (w, t, d, m) = p.shares();
        println!(
            "  phase profile over {} steps: workload {:.1}% / translation {:.1}% / \
             data {:.1}% / maintenance {:.1}%",
            p.steps,
            w * 100.0,
            t * 100.0,
            d * 100.0,
            m * 100.0
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    match command.as_str() {
        "list" => {
            for e in registry::all() {
                println!("{:<28} {}", e.name, e.title);
            }
        }
        "run" => {
            let opts = parse_options(&args[1..]);
            if opts.names.is_empty() {
                eprintln!("run: at least one experiment name required\n");
                usage();
            }
            let mut experiments = Vec::new();
            for name in &opts.names {
                match registry::find(name) {
                    Ok(e) => experiments.push(e),
                    Err(msg) => {
                        eprintln!("{msg}");
                        std::process::exit(1);
                    }
                }
            }
            let summary = run_suite(&experiments, &opts);
            print_summary(&summary);
        }
        "run-all" => {
            let opts = parse_options(&args[1..]);
            if !opts.names.is_empty() {
                eprintln!("run-all takes no experiment names\n");
                usage();
            }
            let summary = run_suite(&registry::all(), &opts);
            print_summary(&summary);
            let _ = std::fs::create_dir_all(&opts.out);
            let path = opts.out.join("BENCH_sweep.json");
            match serde_json::to_string_pretty(&summary) {
                Ok(s) => {
                    if std::fs::write(&path, s).is_ok() {
                        println!("\n[sweep summary written to {}]", path.display());
                    }
                }
                Err(e) => eprintln!("could not serialize sweep summary: {e}"),
            }
        }
        _ => usage(),
    }
}
