//! `tmcc-bench` — the parallel sweep driver for the whole figure suite.
//!
//! ```text
//! tmcc-bench list
//! tmcc-bench run <name>... [--jobs N] [--quick|--test] [--profile] [--out DIR]
//! tmcc-bench run-all       [--jobs N] [--quick|--test] [--profile] [--out DIR]
//! ```
//!
//! `run-all` executes every registered experiment and writes the same
//! per-figure `results/*.json` files the standalone binaries write —
//! byte-identically at any `--jobs` count — plus a consolidated
//! `results/BENCH_sweep.json` with wall-clock, accesses simulated and
//! accesses/sec per experiment. `--profile` additionally collects the
//! simulator's host-time phase split (workload / translation / data /
//! maintenance).

use std::path::PathBuf;
use std::time::Instant;
use tmcc_bench::registry::{self, Experiment};
use tmcc_bench::sweep::{ExperimentTiming, Scale, SweepCtx, SweepSummary};

struct Options {
    jobs: usize,
    scale: Scale,
    profile: bool,
    out: PathBuf,
    names: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: tmcc-bench <command> [options]\n\
         \n\
         commands:\n\
         \x20 list                 list registered experiments\n\
         \x20 run <name>...        run the named experiments\n\
         \x20 run-all              run every registered experiment\n\
         \n\
         options:\n\
         \x20 --jobs N             worker threads (default: one per CPU)\n\
         \x20 --quick              ~5x smaller runs (CI smoke scale)\n\
         \x20 --test               tiny runs (golden determinism scale)\n\
         \x20 --profile            collect host-time per-phase timing\n\
         \x20 --out DIR            output directory (default: repo results/)"
    );
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        jobs: 0,
        scale: Scale::Full,
        profile: false,
        out: tmcc_bench::results_dir(),
        names: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let v = it.next().unwrap_or_else(|| usage());
                opts.jobs = v.parse().unwrap_or_else(|_| usage());
            }
            "--quick" => opts.scale = Scale::Quick,
            "--test" => opts.scale = Scale::Test,
            "--profile" => opts.profile = true,
            "--out" => {
                let v = it.next().unwrap_or_else(|| usage());
                opts.out = PathBuf::from(v);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}\n");
                usage();
            }
            name => opts.names.push(name.to_string()),
        }
    }
    opts
}

/// Runs `experiments` through one context, timing each; returns the
/// consolidated summary.
fn run_suite(experiments: &[Experiment], opts: &Options) -> SweepSummary {
    let ctx = SweepCtx::new(opts.scale, opts.jobs, opts.out.clone(), opts.profile);
    let suite_start = Instant::now();
    let mut timings = Vec::new();
    for e in experiments {
        println!("\n━━━ {} ━━━", e.name);
        let before = ctx.accesses_simulated();
        let start = Instant::now();
        (e.run)(&ctx);
        let wall = start.elapsed();
        let accesses = ctx.accesses_simulated() - before;
        let wall_ms = wall.as_secs_f64() * 1e3;
        timings.push(ExperimentTiming {
            name: e.name,
            wall_ms,
            accesses_simulated: accesses,
            accesses_per_sec: accesses as f64 / wall.as_secs_f64().max(1e-9),
        });
    }
    let total_wall = suite_start.elapsed();
    let total_accesses: u64 = timings.iter().map(|t| t.accesses_simulated).sum();
    SweepSummary {
        scale: opts.scale.name(),
        jobs: ctx.jobs(),
        experiments: timings,
        total_wall_ms: total_wall.as_secs_f64() * 1e3,
        total_accesses_simulated: total_accesses,
        accesses_per_sec: total_accesses as f64 / total_wall.as_secs_f64().max(1e-9),
        profile: ctx.profile().unwrap_or_default(),
    }
}

fn print_summary(summary: &SweepSummary) {
    println!("\n━━━ sweep summary ({} scale, {} jobs) ━━━", summary.scale, summary.jobs);
    for t in &summary.experiments {
        println!(
            "  {:<28} {:>9.0} ms  {:>12} accesses  {:>12.0} acc/s",
            t.name, t.wall_ms, t.accesses_simulated, t.accesses_per_sec
        );
    }
    println!(
        "  {:<28} {:>9.0} ms  {:>12} accesses  {:>12.0} acc/s",
        "TOTAL", summary.total_wall_ms, summary.total_accesses_simulated, summary.accesses_per_sec
    );
    let p = &summary.profile;
    if p.steps > 0 {
        let (w, t, d, m) = p.shares();
        println!(
            "  phase profile over {} steps: workload {:.1}% / translation {:.1}% / \
             data {:.1}% / maintenance {:.1}%",
            p.steps,
            w * 100.0,
            t * 100.0,
            d * 100.0,
            m * 100.0
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    match command.as_str() {
        "list" => {
            for e in registry::all() {
                println!("{:<28} {}", e.name, e.title);
            }
        }
        "run" => {
            let opts = parse_options(&args[1..]);
            if opts.names.is_empty() {
                eprintln!("run: at least one experiment name required\n");
                usage();
            }
            let mut experiments = Vec::new();
            for name in &opts.names {
                match registry::find(name) {
                    Ok(e) => experiments.push(e),
                    Err(msg) => {
                        eprintln!("{msg}");
                        std::process::exit(1);
                    }
                }
            }
            let summary = run_suite(&experiments, &opts);
            print_summary(&summary);
        }
        "run-all" => {
            let opts = parse_options(&args[1..]);
            if !opts.names.is_empty() {
                eprintln!("run-all takes no experiment names\n");
                usage();
            }
            let summary = run_suite(&registry::all(), &opts);
            print_summary(&summary);
            let _ = std::fs::create_dir_all(&opts.out);
            let path = opts.out.join("BENCH_sweep.json");
            match serde_json::to_string_pretty(&summary) {
                Ok(s) => {
                    if std::fs::write(&path, s).is_ok() {
                        println!("\n[sweep summary written to {}]", path.display());
                    }
                }
                Err(e) => eprintln!("could not serialize sweep summary: {e}"),
            }
        }
        _ => usage(),
    }
}
