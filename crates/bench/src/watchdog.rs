//! Per-point watchdog: cooperative deadlines for sweep points.
//!
//! A sweep point that wedges (a pathological config, a livelocked search)
//! would otherwise hold its worker forever and hang the whole `run-all`
//! fleet. The watchdog gives every point a deadline derived from its
//! experiment's budget (see `registry::Experiment::budget_weight` and
//! `Scale::point_budget`): a single background thread tracks all armed
//! deadlines and, when one expires, *cancels* the point's
//! [`tmcc::RunHandle`]. The simulator polls the handle in its access loop
//! and unwinds with [`tmcc::TmccError::Cancelled`] — cooperative
//! cancellation, no thread killing, so worker state is never corrupted.
//!
//! Timed-out points re-enter the retry path like any other failure;
//! `--quick` runs additionally halve the point's footprint per prior
//! timeout (`SweepCtx::tune`) so a smoke sweep degrades instead of dying.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tmcc::RunHandle;

/// Test/ops hook: `TMCC_BENCH_POINT_BUDGET_MS=N` overrides every
/// computed point budget with `N` milliseconds.
pub const POINT_BUDGET_ENV: &str = "TMCC_BENCH_POINT_BUDGET_MS";

struct Entry {
    deadline: Instant,
    handle: RunHandle,
    fired: bool,
}

#[derive(Default)]
struct Board {
    entries: HashMap<u64, Entry>,
    next_id: u64,
    shutdown: bool,
}

/// The shared deadline tracker. One per sweep; arming is cheap (a map
/// insert under a lock), so per-point use from every worker is fine.
pub struct Watchdog {
    board: Arc<(Mutex<Board>, Condvar)>,
    thread: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Starts the watchdog thread.
    pub fn new() -> Self {
        let board = Arc::new((Mutex::new(Board::default()), Condvar::new()));
        let thread_board = Arc::clone(&board);
        let thread = std::thread::Builder::new()
            .name("tmcc-watchdog".into())
            .spawn(move || watch_loop(&thread_board))
            .expect("spawn watchdog thread");
        Self { board, thread: Some(thread) }
    }

    /// Arms a deadline `budget` from now for `handle`. Dropping the
    /// returned guard disarms it; [`WatchdogGuard::expired`] reports
    /// whether the watchdog fired first.
    pub fn arm(&self, budget: Duration, handle: &RunHandle) -> WatchdogGuard {
        let (lock, cvar) = &*self.board;
        let mut board = lock.lock().expect("watchdog board");
        let id = board.next_id;
        board.next_id += 1;
        board.entries.insert(
            id,
            Entry { deadline: Instant::now() + budget, handle: handle.clone(), fired: false },
        );
        cvar.notify_one();
        WatchdogGuard { board: Arc::clone(&self.board), id }
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        {
            let (lock, cvar) = &*self.board;
            lock.lock().expect("watchdog board").shutdown = true;
            cvar.notify_one();
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Disarms its deadline on drop.
pub struct WatchdogGuard {
    board: Arc<(Mutex<Board>, Condvar)>,
    id: u64,
}

impl WatchdogGuard {
    /// Whether the deadline fired (the handle was cancelled) before the
    /// guard was dropped.
    pub fn expired(&self) -> bool {
        let (lock, _) = &*self.board;
        lock.lock().expect("watchdog board").entries.get(&self.id).is_some_and(|e| e.fired)
    }
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        let (lock, _) = &*self.board;
        lock.lock().expect("watchdog board").entries.remove(&self.id);
    }
}

fn watch_loop(board: &(Mutex<Board>, Condvar)) {
    let (lock, cvar) = board;
    let mut guard = lock.lock().expect("watchdog board");
    loop {
        if guard.shutdown {
            return;
        }
        let now = Instant::now();
        let mut nearest: Option<Instant> = None;
        for entry in guard.entries.values_mut() {
            if entry.fired {
                continue;
            }
            if entry.deadline <= now {
                entry.handle.cancel();
                entry.fired = true;
            } else {
                nearest = Some(nearest.map_or(entry.deadline, |n| n.min(entry.deadline)));
            }
        }
        guard = match nearest {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(now);
                cvar.wait_timeout(guard, wait).expect("watchdog board").0
            }
            None => cvar.wait(guard).expect("watchdog board"),
        };
    }
}

/// Applies the [`POINT_BUDGET_ENV`] override to a computed budget.
pub fn effective_budget(computed: Duration) -> Duration {
    match std::env::var(POINT_BUDGET_ENV).ok().and_then(|v| v.parse::<u64>().ok()) {
        Some(ms) => Duration::from_millis(ms),
        None => computed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_deadline() {
        let dog = Watchdog::new();
        let handle = RunHandle::new();
        let guard = dog.arm(Duration::from_millis(20), &handle);
        assert!(!handle.is_cancelled());
        let start = Instant::now();
        while !handle.is_cancelled() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(handle.is_cancelled(), "watchdog never fired");
        assert!(guard.expired());
    }

    #[test]
    fn disarms_on_drop() {
        let dog = Watchdog::new();
        let handle = RunHandle::new();
        let guard = dog.arm(Duration::from_millis(30), &handle);
        drop(guard);
        std::thread::sleep(Duration::from_millis(80));
        assert!(!handle.is_cancelled(), "disarmed deadline still fired");
    }

    #[test]
    fn tracks_many_deadlines_independently() {
        let dog = Watchdog::new();
        let fast = RunHandle::new();
        let slow = RunHandle::new();
        let _fast_guard = dog.arm(Duration::from_millis(10), &fast);
        let _slow_guard = dog.arm(Duration::from_secs(600), &slow);
        let start = Instant::now();
        while !fast.is_cancelled() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(fast.is_cancelled());
        assert!(!slow.is_cancelled());
    }
}
