//! The sweep journal: crash-safe checkpoint/resume for `tmcc-bench`.
//!
//! Every completed simulation run (one `SweepCtx::try_run` inside an
//! experiment's config grid) appends one self-checking record to
//! `<out>/.journal/sweep.journal`. A sweep killed mid-flight — OOM, CI
//! timeout, SIGKILL — is resumed with `tmcc-bench run-all --resume`: runs
//! whose records survive are *replayed* from the journal (the decoded
//! [`tmcc::RunReport`] is bit-exact, so the regenerated `results/*.json`
//! are byte-identical to an uninterrupted sweep), and only the remainder
//! is simulated.
//!
//! # Format
//!
//! Line-oriented UTF-8, one header line then zero or more records:
//!
//! ```text
//! tmcc-journal v1 build=<git-describe> scale=<scale> config=<hex64>
//! p <crc32-hex8> <key-hex16> <experiment> <compact-json>
//! ```
//!
//! The header pins everything that could silently change replayed bytes:
//! the build (journal keys fingerprint `SystemConfig` through its `Debug`
//! output, which may drift between builds), the run [`Scale`], and a hash
//! of the scale's tuning knobs. [`SweepJournal::open_resume`] discards the
//! whole journal when any of the three differ — a stale journal downgrades
//! to a cold start, never to a silent mix of old and new results.
//!
//! Each record carries a CRC32 over everything after the checksum field.
//! Appends flush before returning, so a crash can lose at most the record
//! being written. Recovery tolerates exactly that: a torn *final* line is
//! dropped; a corrupt record anywhere *before* the tail means something
//! other than a crash mangled the file, and resume refuses it with a
//! typed [`JournalError`] rather than replaying doubtful bytes.

use crate::sweep::Scale;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tmcc_types::FxHashMap;

/// Journal format version; bumped on any layout change.
const VERSION: &str = "v1";

/// File name under `<out>/.journal/`.
const FILE_NAME: &str = "sweep.journal";

/// Test hook: `TMCC_BENCH_EXIT_AFTER_POINTS=N` kills the process (exit
/// code [`EXIT_AFTER_POINTS_CODE`]) right after the Nth journal append —
/// the resume-determinism test uses it as a deterministic "crash".
pub const EXIT_AFTER_POINTS_ENV: &str = "TMCC_BENCH_EXIT_AFTER_POINTS";

/// Exit code used by the [`EXIT_AFTER_POINTS_ENV`] crash hook.
pub const EXIT_AFTER_POINTS_CODE: i32 = 86;

/// Typed journal failures (satellite: corrupted/truncated journals are
/// rejected loudly, not replayed).
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem error, with the operation that failed.
    Io { op: &'static str, detail: String },
    /// The header line is missing or unparsable.
    BadHeader { detail: String },
    /// The header parsed but pins a different build/scale/config.
    HeaderMismatch { field: &'static str, expected: String, found: String },
    /// A record line failed its checksum or shape checks.
    CorruptRecord { line: usize, detail: String },
    /// A record line before the tail is torn (crash damage is only
    /// tolerated on the final line).
    TruncatedRecord { line: usize },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { op, detail } => write!(f, "journal {op} failed: {detail}"),
            JournalError::BadHeader { detail } => write!(f, "journal header invalid: {detail}"),
            JournalError::HeaderMismatch { field, expected, found } => write!(
                f,
                "journal {field} mismatch: journal was written by {found}, this sweep is {expected}"
            ),
            JournalError::CorruptRecord { line, detail } => {
                write!(f, "journal record at line {line} corrupt: {detail}")
            }
            JournalError::TruncatedRecord { line } => {
                write!(f, "journal record at line {line} truncated before the tail")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Everything the header pins. Two sweeps with equal metadata produce
/// byte-identical records for the same (experiment, key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalMeta {
    /// Build fingerprint (`git describe --always --dirty`, or a stable
    /// fallback outside a work tree).
    pub build: String,
    /// The sweep [`Scale`].
    pub scale: Scale,
    /// Hash over the scale's tuning knobs (accesses, warmup, footprint
    /// cap, codec samples) — the invalidation rule documented in the
    /// README: resuming under different tuning starts cold.
    pub config_hash: u64,
}

impl JournalMeta {
    /// Metadata for a sweep at `scale` built from the current binary.
    pub fn current(scale: Scale) -> Self {
        Self { build: build_id(), scale, config_hash: scale_config_hash(scale) }
    }

    fn header_line(&self) -> String {
        format!(
            "tmcc-journal {VERSION} build={} scale={} config={:016x}",
            self.build,
            self.scale.name(),
            self.config_hash
        )
    }
}

/// `git describe --always --dirty`, else a compile-time fallback that at
/// least changes with the crate version.
pub fn build_id() -> String {
    let described = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    described.unwrap_or_else(|| format!("pkg-{}", env!("CARGO_PKG_VERSION")))
}

/// Hash over everything a [`Scale`] pins about the sweep's configuration:
/// the single-system tuning knobs *and* the multi-tenant scenario grids
/// (rosters, churn plans, quanta all vary by scale) — so a journal written
/// under different MT parameters invalidates on `--resume` instead of
/// replaying stale records.
pub fn scale_config_hash(scale: Scale) -> u64 {
    fingerprint(&format!(
        "accesses={} warmup={:?} pages_cap={:?} size_samples={} mt={:016x} cap={:016x} \
         int={:016x}",
        scale.accesses(),
        scale.warmup(),
        scale.pages_cap(),
        scale.size_samples(),
        fingerprint(&crate::experiments::mt::grid_signature(scale)),
        fingerprint(&crate::experiments::capacity_cliff::grid_signature(scale)),
        fingerprint(&crate::experiments::integrity::grid_signature(scale))
    ))
}

/// FxHash64 of a string — the journal's key and config fingerprints.
pub fn fingerprint(s: &str) -> u64 {
    use std::hash::Hasher;
    let mut h = tmcc_types::FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// CRC32 (IEEE, reflected) — per-record corruption check. The shared
/// workspace implementation, re-exported so existing call sites (and the
/// reference-vector test below) keep working.
pub use tmcc_types::crc32::crc32;

/// One parsed record.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Registry name of the experiment that ran the point.
    pub experiment: String,
    /// Fingerprint of the tuned config + access count (see
    /// `SweepCtx::try_run`).
    pub key: u64,
    /// The run's report as compact JSON (decoded lazily on replay).
    pub json: String,
}

impl JournalRecord {
    fn line(&self) -> String {
        let payload = format!("{:016x} {} {}", self.key, self.experiment, self.json);
        format!("p {:08x} {payload}\n", crc32(payload.as_bytes()))
    }

    /// Parses one record line (without trailing newline). `Ok(None)`
    /// means the line is damaged in a way consistent with a torn append
    /// (checksum/shape failure) — the caller decides whether its position
    /// makes that tolerable.
    fn parse(line: &str) -> Option<Self> {
        let rest = line.strip_prefix("p ")?;
        let (crc_hex, payload) = rest.split_at_checked(8)?;
        let payload = payload.strip_prefix(' ')?;
        let stored = u32::from_str_radix(crc_hex, 16).ok()?;
        if crc32(payload.as_bytes()) != stored {
            return None;
        }
        let (key_hex, rest) = payload.split_at_checked(16)?;
        let rest = rest.strip_prefix(' ')?;
        let key = u64::from_str_radix(key_hex, 16).ok()?;
        let (experiment, json) = rest.split_once(' ')?;
        Some(Self { experiment: experiment.to_string(), key, json: json.to_string() })
    }
}

/// What [`SweepJournal::open_resume`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeState {
    /// No journal existed; the sweep starts cold.
    Fresh,
    /// A journal matched the metadata; `records` points were loaded.
    Resumed {
        /// Completed points available for replay.
        records: usize,
        /// Torn final line dropped during recovery (at most one).
        dropped_tail: bool,
    },
    /// A journal existed but pinned different metadata and was discarded.
    Invalidated {
        /// Which header field differed.
        field: &'static str,
    },
}

/// The append-only sweep journal. Shared by every experiment context of a
/// sweep (`Arc`); appends are serialized by an internal lock and flushed
/// before returning.
pub struct SweepJournal {
    path: PathBuf,
    file: Mutex<File>,
    /// Records loaded at open. Lookups consult only this snapshot — live
    /// appends are never replayed within the same process, so a sweep's
    /// behavior doesn't depend on experiment scheduling order.
    loaded: FxHashMap<(String, u64), String>,
    appended: AtomicU64,
    exit_after: Option<u64>,
}

impl SweepJournal {
    fn journal_path(out_dir: &Path) -> PathBuf {
        out_dir.join(".journal").join(FILE_NAME)
    }

    /// Starts a fresh journal under `<out_dir>/.journal/`, truncating any
    /// previous one.
    pub fn open_fresh(out_dir: &Path, meta: &JournalMeta) -> Result<Self, JournalError> {
        let path = Self::journal_path(out_dir);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)
                .map_err(|e| JournalError::Io { op: "create dir", detail: e.to_string() })?;
        }
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| JournalError::Io { op: "create", detail: e.to_string() })?;
        file.write_all(meta.header_line().as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.flush())
            .map_err(|e| JournalError::Io { op: "write header", detail: e.to_string() })?;
        Ok(Self {
            path,
            file: Mutex::new(file),
            loaded: FxHashMap::default(),
            appended: AtomicU64::new(0),
            exit_after: exit_after_points(),
        })
    }

    /// Resumes from an existing journal if its header matches `meta`;
    /// otherwise (missing, or metadata mismatch) starts fresh. Returns
    /// the journal and what happened. Corruption before the tail is an
    /// error, not an invalidation — it never happens from a crash, so it
    /// is surfaced instead of silently discarded.
    pub fn open_resume(
        out_dir: &Path,
        meta: &JournalMeta,
    ) -> Result<(Self, ResumeState), JournalError> {
        let path = Self::journal_path(out_dir);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Self::open_fresh(out_dir, meta)?, ResumeState::Fresh));
            }
            Err(e) => return Err(JournalError::Io { op: "read", detail: e.to_string() }),
        };
        match parse_journal(&text, meta) {
            Ok((records, dropped_tail)) => {
                let loaded: FxHashMap<(String, u64), String> =
                    records.into_iter().map(|r| ((r.experiment, r.key), r.json)).collect();
                let count = loaded.len();
                // Re-open for append; recovery rewrites the file without
                // the torn tail so the journal stays clean on disk.
                let mut file = OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(true)
                    .open(&path)
                    .map_err(|e| JournalError::Io { op: "reopen", detail: e.to_string() })?;
                let mut contents = meta.header_line();
                contents.push('\n');
                let mut entries: Vec<(&(String, u64), &String)> = loaded.iter().collect();
                entries.sort_by(|a, b| a.0.cmp(b.0));
                for (&(ref experiment, key), json) in entries {
                    let rec =
                        JournalRecord { experiment: experiment.clone(), key, json: json.clone() };
                    contents.push_str(&rec.line());
                }
                file.write_all(contents.as_bytes())
                    .and_then(|()| file.flush())
                    .map_err(|e| JournalError::Io { op: "rewrite", detail: e.to_string() })?;
                let journal = Self {
                    path,
                    file: Mutex::new(file),
                    loaded,
                    appended: AtomicU64::new(0),
                    exit_after: exit_after_points(),
                };
                Ok((journal, ResumeState::Resumed { records: count, dropped_tail }))
            }
            Err(JournalError::HeaderMismatch { field, .. }) => {
                let journal = Self::open_fresh(out_dir, meta)?;
                Ok((journal, ResumeState::Invalidated { field }))
            }
            Err(e) => Err(e),
        }
    }

    /// The journal file path (for messages).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Completed points loaded at open.
    pub fn loaded_points(&self) -> usize {
        self.loaded.len()
    }

    /// The stored compact-JSON report for `(experiment, key)`, if the
    /// journal loaded one at open.
    pub fn lookup(&self, experiment: &str, key: u64) -> Option<&str> {
        // FxHashMap<(String, u64), _> can't be probed with (&str, u64)
        // without allocating; experiments are few and short, so this
        // allocation is noise next to the simulation it skips.
        self.loaded.get(&(experiment.to_string(), key)).map(String::as_str)
    }

    /// Appends one completed point, flushing before returning (a crash
    /// after `append` never loses the record). Honors the
    /// [`EXIT_AFTER_POINTS_ENV`] crash hook.
    pub fn append(&self, experiment: &str, key: u64, json: &str) {
        let record =
            JournalRecord { experiment: experiment.to_string(), key, json: json.to_string() };
        {
            let mut file = self.file.lock().expect("journal file lock");
            if file.write_all(record.line().as_bytes()).and_then(|()| file.flush()).is_err() {
                // A journal write failure must not kill the sweep — the
                // journal is a recovery aid, the results are the product.
                eprintln!("warning: journal append failed; resume coverage reduced");
                return;
            }
        }
        let n = self.appended.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(limit) = self.exit_after {
            if n >= limit {
                eprintln!("[journal] {EXIT_AFTER_POINTS_ENV}={limit} reached; simulating crash");
                std::process::exit(EXIT_AFTER_POINTS_CODE);
            }
        }
    }

    /// Points appended by this process (excludes replayed ones).
    pub fn appended_points(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }
}

fn exit_after_points() -> Option<u64> {
    std::env::var(EXIT_AFTER_POINTS_ENV).ok().and_then(|v| v.parse().ok())
}

/// Strictly parses a journal's full text against `meta`. Returns the
/// records and whether a torn tail line was dropped.
fn parse_journal(
    text: &str,
    meta: &JournalMeta,
) -> Result<(Vec<JournalRecord>, bool), JournalError> {
    let mut lines = text.split_inclusive('\n');
    let header = lines.next().ok_or(JournalError::BadHeader { detail: "empty file".into() })?;
    check_header(header.trim_end_matches('\n'), meta)?;

    let rest: Vec<&str> = lines.collect();
    let mut records = Vec::new();
    let mut dropped_tail = false;
    for (i, raw) in rest.iter().enumerate() {
        let line_no = i + 2; // 1-based, after the header
        let is_last = i + 1 == rest.len();
        let torn = !raw.ends_with('\n');
        let line = raw.trim_end_matches('\n');
        if line.is_empty() && is_last {
            break;
        }
        match JournalRecord::parse(line) {
            Some(rec) if !torn => records.push(rec),
            Some(_) | None => {
                if is_last {
                    // Crash damage: the append was cut mid-line.
                    dropped_tail = true;
                } else if torn {
                    return Err(JournalError::TruncatedRecord { line: line_no });
                } else {
                    return Err(JournalError::CorruptRecord {
                        line: line_no,
                        detail: "checksum or shape mismatch".into(),
                    });
                }
            }
        }
    }
    Ok((records, dropped_tail))
}

fn check_header(line: &str, meta: &JournalMeta) -> Result<(), JournalError> {
    let mut parts = line.split(' ');
    let magic = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if magic != "tmcc-journal" {
        return Err(JournalError::BadHeader { detail: format!("bad magic {magic:?}") });
    }
    if version != VERSION {
        return Err(JournalError::HeaderMismatch {
            field: "version",
            expected: VERSION.to_string(),
            found: version.to_string(),
        });
    }
    let mut build = None;
    let mut scale = None;
    let mut config = None;
    for part in parts {
        if let Some(v) = part.strip_prefix("build=") {
            build = Some(v);
        } else if let Some(v) = part.strip_prefix("scale=") {
            scale = Some(v);
        } else if let Some(v) = part.strip_prefix("config=") {
            config = Some(v);
        } else {
            return Err(JournalError::BadHeader { detail: format!("unknown field {part:?}") });
        }
    }
    let found_build = build.ok_or(JournalError::BadHeader { detail: "missing build=".into() })?;
    let found_scale = scale.ok_or(JournalError::BadHeader { detail: "missing scale=".into() })?;
    let found_config =
        config.ok_or(JournalError::BadHeader { detail: "missing config=".into() })?;
    if found_build != meta.build {
        return Err(JournalError::HeaderMismatch {
            field: "build",
            expected: meta.build.clone(),
            found: found_build.to_string(),
        });
    }
    if found_scale != meta.scale.name() {
        return Err(JournalError::HeaderMismatch {
            field: "scale",
            expected: meta.scale.name().to_string(),
            found: found_scale.to_string(),
        });
    }
    let expected_config = format!("{:016x}", meta.config_hash);
    if found_config != expected_config {
        return Err(JournalError::HeaderMismatch {
            field: "config",
            expected: expected_config,
            found: found_config.to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> JournalMeta {
        JournalMeta { build: "test-build".into(), scale: Scale::Test, config_hash: 0xabcd }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tmcc-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn round_trips_appends_through_resume() {
        let dir = tmp_dir("roundtrip");
        let m = meta();
        let j = SweepJournal::open_fresh(&dir, &m).expect("fresh");
        j.append("fig01", 0x1111, "{\"a\":1}");
        j.append("fig01", 0x2222, "{\"a\":2}");
        j.append("fig02", 0x1111, "{\"b\":3}");
        drop(j);

        let (j, state) = SweepJournal::open_resume(&dir, &m).expect("resume");
        assert_eq!(state, ResumeState::Resumed { records: 3, dropped_tail: false });
        assert_eq!(j.lookup("fig01", 0x1111), Some("{\"a\":1}"));
        assert_eq!(j.lookup("fig01", 0x2222), Some("{\"a\":2}"));
        assert_eq!(j.lookup("fig02", 0x1111), Some("{\"b\":3}"));
        assert_eq!(j.lookup("fig02", 0x2222), None);
        assert_eq!(j.lookup("fig03", 0x1111), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_cleaned() {
        let dir = tmp_dir("torn");
        let m = meta();
        let j = SweepJournal::open_fresh(&dir, &m).expect("fresh");
        j.append("fig01", 1, "{}");
        j.append("fig01", 2, "{}");
        let path = j.path().to_path_buf();
        drop(j);
        // Cut the final record mid-line, as a crash would.
        let text = fs::read_to_string(&path).expect("read");
        fs::write(&path, &text[..text.len() - 4]).expect("tear");

        let (j, state) = SweepJournal::open_resume(&dir, &m).expect("resume");
        assert_eq!(state, ResumeState::Resumed { records: 1, dropped_tail: true });
        assert!(j.lookup("fig01", 1).is_some());
        assert!(j.lookup("fig01", 2).is_none());
        drop(j);
        // Recovery rewrote the file: a second resume sees a clean tail.
        let (_, state) = SweepJournal::open_resume(&dir, &m).expect("resume again");
        assert_eq!(state, ResumeState::Resumed { records: 1, dropped_tail: false });
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_before_tail_is_a_typed_error() {
        let dir = tmp_dir("corrupt");
        let m = meta();
        let j = SweepJournal::open_fresh(&dir, &m).expect("fresh");
        j.append("fig01", 1, "{\"x\":1}");
        j.append("fig01", 2, "{\"x\":2}");
        let path = j.path().to_path_buf();
        drop(j);
        // Flip one byte inside the FIRST record's JSON.
        let mut bytes = fs::read(&path).expect("read");
        let pos = bytes.windows(5).position(|w| w == b"\"x\":1").expect("first record json");
        bytes[pos + 4] = b'9';
        fs::write(&path, &bytes).expect("corrupt");

        match SweepJournal::open_resume(&dir, &m) {
            Err(JournalError::CorruptRecord { line, .. }) => assert_eq!(line, 2),
            Err(other) => panic!("expected CorruptRecord, got {other:?}"),
            Ok(_) => panic!("expected CorruptRecord, resume succeeded"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metadata_mismatch_invalidates() {
        let dir = tmp_dir("mismatch");
        let m = meta();
        let j = SweepJournal::open_fresh(&dir, &m).expect("fresh");
        j.append("fig01", 1, "{}");
        drop(j);

        let other = JournalMeta { build: "other-build".into(), ..meta() };
        let (j, state) = SweepJournal::open_resume(&dir, &other).expect("resume");
        assert_eq!(state, ResumeState::Invalidated { field: "build" });
        assert_eq!(j.loaded_points(), 0);

        let quick = JournalMeta::current(Scale::Quick);
        let test = JournalMeta::current(Scale::Test);
        assert_ne!(quick.config_hash, test.config_hash);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_lines_parse_exactly() {
        let rec = JournalRecord {
            experiment: "fig17_perf_vs_compresso".into(),
            key: 0xdead_beef_1234_5678,
            json: "{\"workload\":\"canneal\",\"x\":1.5}".into(),
        };
        let line = rec.line();
        assert!(line.ends_with('\n'));
        let parsed = JournalRecord::parse(line.trim_end()).expect("parse");
        assert_eq!(parsed, rec);
        // Any single-byte flip in the payload breaks the checksum.
        let mut mangled = line.trim_end().to_string().into_bytes();
        let last = mangled.len() - 1;
        mangled[last] ^= 0x01;
        assert!(JournalRecord::parse(std::str::from_utf8(&mangled).unwrap()).is_none());
    }
}
