//! Failure-injection tests: the system must degrade gracefully when its
//! resources run out — incompressible content, saturated migration
//! buffers, exhausted free lists, stale embeddings en masse.

use tmcc::config::TmccToggles;
use tmcc::{SchemeKind, System, SystemConfig, TmccError};
use tmcc_workloads::{ContentProfile, PageTemplate, WorkloadProfile};

fn incompressible_workload() -> WorkloadProfile {
    let mut w = WorkloadProfile::by_name("canneal").expect("known workload");
    w.sim_pages = 6_000;
    // Every page is pure noise: ML2 can never win.
    w.content = ContentProfile::new(vec![(PageTemplate::Random, 1.0)]);
    w
}

#[test]
fn all_incompressible_content_survives_budget_pressure() {
    let w = incompressible_workload();
    let cfg = SystemConfig::new(w, SchemeKind::Tmcc);
    // The minimum budget for incompressible content is ~the footprint.
    let min = System::min_budget_bytes(&cfg);
    assert!(
        min as f64 >= cfg.footprint_bytes() as f64 * 0.95,
        "incompressible content cannot be squeezed: min {min}"
    );
    let mut sys = System::new(cfg.with_budget(min + (1 << 22)));
    let r = sys.run(40_000);
    assert_eq!(r.stats.accesses, 40_000);
    // Whatever was evicted must have been found incompressible or stored
    // raw; either way the system keeps running and data stays addressable.
    assert!(r.stats.effective_ratio() <= 1.1);
}

#[test]
fn migration_buffer_saturation_stalls_but_recovers() {
    // A tail-heavy workload hammers ML2: the 8-entry migration buffer
    // must throttle (stall) rather than lose migrations.
    let mut w = WorkloadProfile::by_name("canneal").expect("known workload");
    w.sim_pages = 8_192;
    w.pattern.tail_fraction = 0.5; // pathological: half the cold draws are frozen-data touches
    let cfg = SystemConfig::new(w, SchemeKind::Tmcc);
    let min = System::min_budget_bytes(&cfg);
    let budget = min + (cfg.footprint_bytes().saturating_sub(min)) / 4;
    let mut sys = System::new(cfg.with_budget(budget));
    let r = sys.run(30_000);
    assert!(r.stats.ml2_reads > 500, "tail hammering must reach ML2");
    // Every ML2 read that found a frame migrated; none vanished.
    assert!(r.stats.ml2_to_ml1_migrations <= r.stats.ml2_reads);
    assert!(r.stats.accesses == 30_000, "system must not deadlock");
}

#[test]
fn barebone_with_slow_deflate_is_much_slower_under_ml2_pressure() {
    let mut w = WorkloadProfile::by_name("canneal").expect("known workload");
    w.sim_pages = 8_192;
    w.pattern.tail_fraction = 0.2;
    let mk = |toggles| {
        let cfg = SystemConfig::new(w.clone(), SchemeKind::OsInspired).with_toggles(toggles);
        let min = System::min_budget_bytes(&cfg);
        let budget = min + (cfg.footprint_bytes().saturating_sub(min)) / 4;
        System::new(cfg.with_budget(budget)).run(30_000)
    };
    let slow = mk(TmccToggles::none());
    let fast = mk(TmccToggles::ml2_only());
    assert!(
        fast.perf_accesses_per_us() > slow.perf_accesses_per_us() * 1.05,
        "fast deflate must matter under ML2 pressure: {:.2} vs {:.2}",
        fast.perf_accesses_per_us(),
        slow.perf_accesses_per_us()
    );
}

#[test]
fn zero_budget_headroom_is_a_typed_error() {
    let w = incompressible_workload();
    let cfg = SystemConfig::new(w, SchemeKind::Tmcc).with_budget(1 << 22); // 4 MiB: absurd
    let err = System::try_new(cfg).map(|_| ()).expect_err("infeasible budgets must be rejected");
    assert!(
        matches!(err, TmccError::InfeasibleBudget { .. }),
        "expected InfeasibleBudget, got: {err}"
    );
    // The message must name the numbers an operator needs.
    let msg = err.to_string();
    assert!(msg.contains("budget"), "unhelpful message: {msg}");
}
