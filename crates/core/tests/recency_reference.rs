//! Property test pinning the slab-backed [`RecencyList`] to an executable
//! specification of the original pointer-chasing implementation: an
//! ordered cold→hot sequence where `insert_hot` moves a page to the hot
//! end, `pop_coldest` evicts the cold end, and `remove` deletes in place.
//! Arbitrary op traces must produce identical membership, length, victim
//! choice and full eviction order.

use proptest::prelude::*;
use tmcc::RecencyList;
use tmcc_types::addr::Ppn;

/// The specification: a plain ordered list, coldest first.
#[derive(Default)]
struct SpecList {
    cold_to_hot: Vec<u64>,
}

impl SpecList {
    fn insert_hot(&mut self, page: u64) {
        self.cold_to_hot.retain(|&p| p != page);
        self.cold_to_hot.push(page);
    }

    fn pop_coldest(&mut self) -> Option<u64> {
        if self.cold_to_hot.is_empty() {
            None
        } else {
            Some(self.cold_to_hot.remove(0))
        }
    }

    fn remove(&mut self, page: u64) -> bool {
        let before = self.cold_to_hot.len();
        self.cold_to_hot.retain(|&p| p != page);
        self.cold_to_hot.len() != before
    }
}

/// One step of a trace. The page universe is kept small (0..48) so traces
/// revisit pages often — the interesting transitions are re-touch,
/// re-insert after eviction, and removing the current head/tail.
#[derive(Debug, Clone)]
enum Op {
    InsertHot(u64),
    OnAccess(u64),
    PopColdest,
    Remove(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (any::<u8>(), 0u64..48).prop_map(|(kind, page)| match kind % 4 {
        0 => Op::InsertHot(page),
        1 => Op::OnAccess(page),
        2 => Op::PopColdest,
        _ => Op::Remove(page),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The slab list and the specification agree on every observable after
    /// every op, and drain in the same eviction order.
    #[test]
    fn slab_lru_matches_reference(ops in prop::collection::vec(op_strategy(), 1..400)) {
        // Probability 1 makes `on_access` deterministic (always a touch) so
        // the spec needs no coupled RNG; the sampled path reduces to
        // `insert_hot`, which this trace exercises directly.
        let mut slab = RecencyList::with_probability(7, 1.0);
        let mut spec = SpecList::default();
        for op in ops {
            match op {
                Op::InsertHot(p) => {
                    slab.insert_hot(Ppn::new(p));
                    spec.insert_hot(p);
                }
                Op::OnAccess(p) => {
                    prop_assert!(slab.on_access(Ppn::new(p)), "probability-1 access must fire");
                    spec.insert_hot(p);
                }
                Op::PopColdest => {
                    prop_assert_eq!(slab.pop_coldest().map(|p| p.raw()), spec.pop_coldest());
                }
                Op::Remove(p) => {
                    prop_assert_eq!(slab.remove(Ppn::new(p)), spec.remove(p));
                }
            }
            prop_assert_eq!(slab.len(), spec.cold_to_hot.len());
            prop_assert_eq!(slab.coldest().map(|p| p.raw()), spec.cold_to_hot.first().copied());
            for &p in &spec.cold_to_hot {
                prop_assert!(slab.contains(Ppn::new(p)));
            }
        }
        let slab_order: Vec<u64> = slab.cold_to_hot().iter().map(|p| p.raw()).collect();
        prop_assert_eq!(&slab_order, &spec.cold_to_hot, "cold-to-hot walk diverged");
        let drained: Vec<u64> = std::iter::from_fn(|| slab.pop_coldest().map(|p| p.raw())).collect();
        prop_assert_eq!(drained, spec.cold_to_hot, "eviction order diverged");
    }
}
