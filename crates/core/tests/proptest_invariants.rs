//! Property tests on the core data structures' invariants: free-list
//! conservation, recency-list linkage, size-model determinism.

use proptest::prelude::*;
use tmcc::free_list::{Ml1FreeList, Ml2FreeLists, SubChunk};
use tmcc::size_model::{PageSizes, SizeModel};
use tmcc::{RecencyList, TmccError};
use tmcc_types::addr::Ppn;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No chunk is ever lost or duplicated across arbitrary interleavings
    /// of ML2 allocations and frees.
    #[test]
    fn ml2_conserves_chunks(ops in prop::collection::vec((any::<bool>(), 1usize..4096), 1..200)) {
        let total = 128u32;
        let mut ml1 = Ml1FreeList::with_chunks(total);
        let mut ml2 = Ml2FreeLists::paper_classes();
        let mut live = Vec::new();
        for (free, bytes) in ops {
            if free && !live.is_empty() {
                let sub = live.swap_remove(bytes % live.len());
                ml2.free(sub, &mut ml1);
            } else if let Some(sub) = ml2.allocate(bytes, &mut ml1) {
                live.push(sub);
            }
            prop_assert_eq!(ml2.owned_chunks() + ml1.len(), total as usize);
        }
        for sub in live {
            ml2.free(sub, &mut ml1);
        }
        prop_assert_eq!(ml1.len(), total as usize);
        prop_assert_eq!(ml2.allocated_bytes(), 0);
    }

    /// With a deliberately starved ML1 (injected exhaustion), random
    /// alloc/free interleavings surface typed errors — never panics — and
    /// the allocator's byte and chunk books stay exact through every
    /// failed allocation.
    #[test]
    fn ml2_exhaustion_is_typed_never_a_panic(
        total in 0u32..24,
        ops in prop::collection::vec((any::<bool>(), 1usize..5000), 1..250),
    ) {
        let mut ml1 = Ml1FreeList::with_chunks(total);
        let mut ml2 = Ml2FreeLists::paper_classes();
        let mut live: Vec<(SubChunk, usize)> = Vec::new();
        let mut live_bytes = 0usize;
        for (free, bytes) in ops {
            if free && !live.is_empty() {
                let (sub, sz) = live.swap_remove(bytes % live.len());
                prop_assert!(ml2.try_free(sub, &mut ml1).is_ok(), "live free must succeed");
                live_bytes -= sz;
            } else {
                match ml2.try_allocate(bytes, &mut ml1) {
                    Ok(sub) => {
                        let sz = ml2.class_size(sub.class);
                        live_bytes += sz;
                        live.push((sub, sz));
                    }
                    Err(TmccError::FreeListExhausted { requested_bytes, .. }) => {
                        prop_assert_eq!(requested_bytes, bytes);
                    }
                    Err(TmccError::OversizedAllocation { requested_bytes, largest_class }) => {
                        prop_assert!(requested_bytes > largest_class);
                    }
                    Err(e) => prop_assert!(false, "unexpected error: {e}"),
                }
            }
            // Failed allocations must not leak: the books balance after
            // every single operation.
            prop_assert_eq!(ml2.allocated_bytes(), live_bytes);
            prop_assert_eq!(ml2.owned_chunks() + ml1.len(), total as usize);
        }
        for (sub, _) in live {
            prop_assert!(ml2.try_free(sub, &mut ml1).is_ok());
        }
        prop_assert_eq!(ml1.len(), total as usize);
        prop_assert_eq!(ml2.allocated_bytes(), 0);
    }

    /// Sub-chunk addresses of live allocations never overlap.
    #[test]
    fn ml2_addresses_disjoint(sizes in prop::collection::vec(1usize..4096, 1..60)) {
        let mut ml1 = Ml1FreeList::with_chunks(256);
        let mut ml2 = Ml2FreeLists::paper_classes();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for bytes in sizes {
            if let Some(sub) = ml2.allocate(bytes, &mut ml1) {
                let start = ml2.addr_of(sub);
                let len = ml2.class_size(sub.class) as u64;
                for &(s, l) in &spans {
                    prop_assert!(start + len <= s || s + l <= start,
                        "overlap: [{start}, {}) vs [{s}, {})", start + len, s + l);
                }
                spans.push((start, len));
            }
        }
    }

    /// The recency list stays a consistent doubly linked list under any
    /// sequence of touches, removals and pops.
    #[test]
    fn recency_list_is_consistent(ops in prop::collection::vec((0u8..3, 0u64..40), 1..300)) {
        let mut rl = RecencyList::new(5);
        let mut reference: Vec<u64> = Vec::new(); // cold..hot order
        for (op, page) in ops {
            match op {
                0 => {
                    rl.insert_hot(Ppn::new(page));
                    reference.retain(|&p| p != page);
                    reference.push(page);
                }
                1 => {
                    rl.remove(Ppn::new(page));
                    reference.retain(|&p| p != page);
                }
                _ => {
                    let got = rl.pop_coldest().map(|p| p.raw());
                    let want = if reference.is_empty() { None } else { Some(reference.remove(0)) };
                    prop_assert_eq!(got, want);
                }
            }
            let listed: Vec<u64> = rl.cold_to_hot().iter().map(|p| p.raw()).collect();
            prop_assert_eq!(&listed, &reference);
            prop_assert_eq!(rl.len(), reference.len());
        }
    }

    /// Size draws are pure functions of (page, epoch).
    #[test]
    fn size_model_is_deterministic(pages in prop::collection::vec(any::<u64>(), 1..50), epoch in 0u32..8) {
        let model = SizeModel::from_samples(vec![
            PageSizes { deflate_bytes: 500, block_bytes: 2000 },
            PageSizes { deflate_bytes: 1500, block_bytes: 3500 },
            PageSizes { deflate_bytes: 4096, block_bytes: 4096 },
        ]);
        for p in pages {
            prop_assert_eq!(model.sizes_of(p, epoch), model.sizes_of(p, epoch));
        }
    }
}
