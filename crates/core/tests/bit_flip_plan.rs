//! Bit-flip fault injection: the detect/recover/poison ladder must absorb
//! a storm of upsets without aborting the run, keep the corruption
//! counters internally consistent, and leave flip-free runs byte-identical
//! to runs with no plan at all (the empty plan draws nothing from the
//! dedicated flip RNG).

use tmcc::{BitFlipPlan, FlipShape, FlipTarget, SchemeKind, System, SystemConfig};
use tmcc_workloads::WorkloadProfile;

fn pressured_cfg() -> SystemConfig {
    let mut w = WorkloadProfile::by_name("canneal").expect("known workload");
    w.sim_pages = 4_096;
    let cfg = SystemConfig::new(w, SchemeKind::Tmcc);
    let min = System::min_budget_bytes(&cfg);
    let budget = min + (cfg.footprint_bytes().saturating_sub(min)) / 2;
    cfg.with_budget(budget)
}

/// Per-event ladder invariants on a report's stats.
fn assert_counters_consistent(s: &tmcc::SimStats) {
    assert!(
        s.corruptions_detected + s.sdc_escapes == s.flips_injected,
        "every flip must be detected or escape: {} + {} != {}",
        s.corruptions_detected,
        s.sdc_escapes,
        s.flips_injected
    );
    assert!(
        s.corruptions_corrected + s.corruptions_uncorrectable == s.corruptions_detected,
        "every detection must resolve: {} + {} != {}",
        s.corruptions_corrected,
        s.corruptions_uncorrectable,
        s.corruptions_detected
    );
    assert!(s.metadata_corruptions_detected <= s.corruptions_detected);
    assert_eq!(s.frames_poisoned, s.corruptions_uncorrectable, "poison is the only terminal rung");
}

#[test]
fn flip_storm_completes_without_abort() {
    // 24 events cover the full target × shape matrix twice, all landing
    // after the 60k-access warmup, inside the measured window.
    let plan = BitFlipPlan::storm(62_000, 800, 24);
    let mut sys = System::new(pressured_cfg().with_flip_plan(plan).with_audit());
    let r = sys.try_run(30_000).expect("a flip storm must not kill the run");
    assert_eq!(r.stats.accesses, 30_000, "system must not deadlock");
    assert_eq!(r.stats.flips_injected, 24, "every planned flip must fire");
    assert_counters_consistent(&r.stats);
    assert!(r.stats.corruptions_detected > 0, "CRC/parity must catch most of the storm");
    assert!(r.stats.recovery_ns > 0.0, "recovery work must be charged");
    sys.validate().expect("invariants must hold after the storm");
}

#[test]
fn single_payload_flips_are_always_detected_and_recovered() {
    let plan = (0..8).fold(BitFlipPlan::none(), |p, i| {
        p.with(61_000 + i * 500, FlipTarget::Ml2Payload, FlipShape::Single)
    });
    let mut sys = System::new(pressured_cfg().with_flip_plan(plan).with_audit());
    let r = sys.try_run(20_000).expect("single payload flips must be survivable");
    assert_eq!(r.stats.flips_injected, 8);
    assert_eq!(
        r.stats.corruptions_detected, 8,
        "a single payload bit flip can never slip past the CRC seal"
    );
    assert_eq!(r.stats.sdc_escapes, 0);
    assert_counters_consistent(&r.stats);
}

#[test]
fn ml1_flips_escape_silently() {
    // Uncompressed ML1 frames carry no tag: the measured coverage hole.
    let plan = (0..4).fold(BitFlipPlan::none(), |p, i| {
        p.with(61_000 + i * 500, FlipTarget::Ml1Data, FlipShape::Single)
    });
    let mut sys = System::new(pressured_cfg().with_flip_plan(plan));
    let r = sys.try_run(15_000).expect("silent escapes must not abort");
    assert_eq!(r.stats.flips_injected, 4);
    assert_eq!(r.stats.sdc_escapes, 4);
    assert_eq!(r.stats.corruptions_detected, 0);
}

#[test]
fn rowhammer_on_dirty_state_can_poison_frames() {
    // A long storm of row-hammer events: the ones landing on divergent
    // (dirty) pages or free-map rows must take frames out of service
    // rather than pretend to repair them.
    let plan = (0..12).fold(BitFlipPlan::none(), |p, i| {
        let target = if i % 2 == 0 { FlipTarget::Ml2Payload } else { FlipTarget::FreeListBitmap };
        p.with(61_000 + i * 700, target, FlipShape::RowHammer)
    });
    let mut sys = System::new(pressured_cfg().with_flip_plan(plan).with_audit());
    let r = sys.try_run(25_000).expect("poisoning must not abort the run");
    assert_eq!(r.stats.flips_injected, 12);
    assert_counters_consistent(&r.stats);
    // Free-map row-hammer is unconditionally uncorrectable, so at least
    // the 6 bitmap events must have poisoned a frame each.
    assert!(r.stats.frames_poisoned >= 6, "got {} poisoned", r.stats.frames_poisoned);
    sys.validate().expect("frame conservation must survive poisoning");
}

#[test]
fn empty_plan_is_byte_identical_to_no_plan() {
    // The flip RNG is seeded unconditionally but an empty plan must draw
    // zero numbers from it — flip-free goldens stay byte-identical.
    let run = |cfg: SystemConfig| {
        let mut sys = System::new(cfg.with_audit());
        serde_json::to_string(&sys.run(12_000)).expect("reports serialize")
    };
    let bare = run(pressured_cfg());
    let empty = run(pressured_cfg().with_flip_plan(BitFlipPlan::none()));
    assert_eq!(bare, empty, "an empty flip plan must not perturb the run");
}

#[test]
fn same_seed_same_flip_plan_is_byte_identical() {
    let run = || {
        let cfg = pressured_cfg().with_flip_plan(BitFlipPlan::storm(62_000, 900, 16));
        let mut sys = System::new(cfg.with_audit());
        serde_json::to_string(&sys.run(15_000)).expect("reports serialize")
    };
    assert_eq!(run(), run(), "flip injection must be fully deterministic");
}

#[test]
fn flip_plans_actually_diverge_from_quiet_runs() {
    let run = |plan: BitFlipPlan| {
        let mut sys = System::new(pressured_cfg().with_flip_plan(plan).with_audit());
        serde_json::to_string(&sys.run(15_000)).expect("reports serialize")
    };
    let quiet = run(BitFlipPlan::none());
    let stormy = run(BitFlipPlan::storm(62_000, 900, 16));
    assert_ne!(quiet, stormy, "a flip storm must leave a trace in the report");
}
