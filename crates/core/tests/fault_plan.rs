//! Runtime fault injection: the system must absorb capacity shocks
//! (ballooning), degrade gracefully, recover once pressure passes, and do
//! all of it deterministically — two runs with the same seed and the same
//! fault plan are byte-identical.

use tmcc::{FaultKind, FaultPlan, SchemeKind, System, SystemConfig};
use tmcc_workloads::WorkloadProfile;

/// A TMCC config under moderate capacity pressure: budget halfway between
/// the feasibility floor and the uncompressed footprint.
fn pressured_cfg() -> SystemConfig {
    let mut w = WorkloadProfile::by_name("canneal").expect("known workload");
    w.sim_pages = 4_096;
    let cfg = SystemConfig::new(w, SchemeKind::Tmcc);
    let min = System::min_budget_bytes(&cfg);
    let budget = min + (cfg.footprint_bytes().saturating_sub(min)) / 2;
    cfg.with_budget(budget)
}

/// Balloon deflation halving the frame budget mid-run, reinflating later.
/// Fault clocks count from construction, so both events land after the
/// default 60k-access warmup, inside the measured window.
fn balloon_plan(cfg: &SystemConfig) -> FaultPlan {
    let frames = cfg.dram_budget_bytes.expect("pressured config sets a budget") / 4096;
    FaultPlan::none()
        .with(65_000, FaultKind::ShrinkBudget { frames: (frames / 2) as u32 })
        .with(85_000, FaultKind::GrowBudget { frames: (frames / 2) as u32 })
}

#[test]
fn budget_halving_degrades_gracefully_and_recovers() {
    let cfg = pressured_cfg();
    let plan = balloon_plan(&cfg);
    let mut sys = System::new(cfg.with_fault_plan(plan).with_audit());
    let r = sys.try_run(40_000).expect("a budget shock must not kill the run");
    assert_eq!(r.stats.accesses, 40_000, "system must not deadlock");
    assert_eq!(r.stats.faults_injected, 2);
    assert!(
        r.stats.emergency_evictions > 0,
        "halving the budget must trigger emergency eviction bursts"
    );
    assert!(r.stats.recoveries >= 1, "degraded mode must be exited once the balloon reinflates");
    assert!(r.stats.degraded_ns > 0.0, "time under degradation must be accounted");
    // Audit ran after every maintenance interval (with_audit); one final
    // explicit check for good measure.
    sys.validate().expect("invariants must hold after the shock");
}

#[test]
fn stale_embedding_and_flush_storms_complete() {
    // The non-balloon fault kinds must also be survivable end to end.
    let cfg = pressured_cfg();
    let plan = FaultPlan::none()
        .with(62_000, FaultKind::CteFlushStorm)
        .with(64_000, FaultKind::StaleEmbeddings { count: 2_000 })
        .with(66_000, FaultKind::ShrinkMigrationBuffer { entries: 1 })
        .with(72_000, FaultKind::RestoreMigrationBuffer)
        .with(74_000, FaultKind::ContentShift { percent: 40 })
        .with(78_000, FaultKind::ContentShift { percent: 0 });
    let mut sys = System::new(cfg.with_fault_plan(plan).with_audit());
    let r = sys.try_run(25_000).expect("fault storm must be survivable");
    assert_eq!(r.stats.accesses, 25_000);
    assert_eq!(r.stats.faults_injected, 6);
    sys.validate().expect("invariants must hold after the storm");
}

#[test]
fn same_seed_same_plan_is_byte_identical() {
    let report_json = || {
        let cfg = pressured_cfg();
        let plan = balloon_plan(&cfg);
        let mut sys = System::new(cfg.with_fault_plan(plan).with_audit());
        serde_json::to_string(&sys.run(15_000)).expect("reports serialize")
    };
    let a = report_json();
    let b = report_json();
    assert_eq!(a, b, "same seed + same fault plan must be byte-identical");
}

#[test]
fn different_plans_actually_diverge() {
    // Guards the determinism test against vacuity: the plan must matter.
    let run = |plan: FaultPlan| {
        let cfg = pressured_cfg().with_fault_plan(plan).with_audit();
        let mut sys = System::new(cfg);
        serde_json::to_string(&sys.run(15_000)).expect("reports serialize")
    };
    let quiet = run(FaultPlan::none());
    let cfg = pressured_cfg();
    let shocked = run(balloon_plan(&cfg));
    assert_ne!(quiet, shocked, "a budget shock must leave a trace in the report");
}
