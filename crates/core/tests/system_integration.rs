//! End-to-end system tests: every scheme runs a real (scaled-down)
//! workload and the global invariants the paper relies on hold.

use tmcc::config::TmccToggles;
use tmcc::{SchemeKind, System, SystemConfig};
use tmcc_workloads::WorkloadProfile;

/// A small, fast config for integration testing: shrink the footprint so
/// placement and warmup stay quick, but keep it far beyond TLB reach.
fn test_config(scheme: SchemeKind) -> SystemConfig {
    // Full-size canneal: 72 MiB footprint, far beyond the TLB's reach and
    // both CTE caches' reach, like the paper's configurations.
    let w = WorkloadProfile::by_name("canneal").expect("known workload");
    let mut cfg = SystemConfig::new(w, scheme);
    cfg.warmup_accesses = 30_000;
    cfg
}

#[test]
fn no_compression_runs_and_counts() {
    let mut sys = System::new(test_config(SchemeKind::NoCompression));
    let r = sys.run(40_000);
    assert_eq!(r.stats.accesses, 40_000);
    assert!(r.stats.elapsed_ns > 0.0);
    assert!(r.stats.tlb_misses > 0, "large irregular workload must miss TLB");
    assert!(r.stats.llc_misses() > 0);
    assert_eq!(r.stats.cte_misses, 0, "no CTEs without compression");
    assert!(r.perf_accesses_per_us() > 0.0);
}

#[test]
fn compresso_pays_serial_translation() {
    let mut nc = System::new(test_config(SchemeKind::NoCompression));
    let mut cp = System::new(test_config(SchemeKind::Compresso));
    let rn = nc.run(40_000);
    let rc = cp.run(40_000);
    assert!(rc.stats.cte_misses > 0, "CTE misses must occur");
    // Fig. 18 shape: Compresso's average L3-miss latency exceeds the
    // uncompressed system's.
    assert!(
        rc.stats.avg_l3_miss_latency_ns() > rn.stats.avg_l3_miss_latency_ns(),
        "compresso {:.1} vs nocomp {:.1}",
        rc.stats.avg_l3_miss_latency_ns(),
        rn.stats.avg_l3_miss_latency_ns()
    );
    // Compresso saves DRAM (block compression).
    assert!(rc.stats.effective_ratio() > 1.0);
}

#[test]
fn tmcc_beats_compresso_latency_at_same_savings() {
    let mut cp = System::new(test_config(SchemeKind::Compresso));
    let rc = cp.run(60_000);
    // Run TMCC at the same DRAM usage Compresso achieved (Fig. 17's
    // iso-savings comparison), clamped to TMCC's feasibility floor.
    let budget =
        rc.stats.dram_used_bytes.max(System::min_budget_bytes(&test_config(SchemeKind::Tmcc)));
    let cfg = test_config(SchemeKind::Tmcc).with_budget(budget);
    let mut tm = System::new(cfg);
    let rt = tm.run(60_000);
    assert!(
        rt.stats.avg_l3_miss_latency_ns() < rc.stats.avg_l3_miss_latency_ns(),
        "tmcc {:.1} vs compresso {:.1}",
        rt.stats.avg_l3_miss_latency_ns(),
        rc.stats.avg_l3_miss_latency_ns()
    );
    assert!(
        rt.stats.dram_used_bytes <= budget + (budget / 20),
        "tmcc must respect the iso-savings budget: {} vs {}",
        rt.stats.dram_used_bytes,
        budget
    );
    // Fig. 19: some parallel accesses must have happened.
    assert!(rt.stats.ml1_parallel_correct > 0);
}

#[test]
fn tmcc_beats_barebone_at_same_budget() {
    let base = test_config(SchemeKind::Tmcc);
    // Midway between "fully compressed" and "everything fits": real
    // capacity pressure, so pages actually live in ML2.
    let min = System::min_budget_bytes(&base);
    let footprint = base.footprint_bytes();
    let budget = min + (footprint.saturating_sub(min)) / 3;
    let mut tmcc = System::new(test_config(SchemeKind::Tmcc).with_budget(budget));
    let mut bare = System::new(
        test_config(SchemeKind::OsInspired).with_budget(budget).with_toggles(TmccToggles::none()),
    );
    let rt = tmcc.run(60_000);
    let rb = bare.run(60_000);
    assert!(
        rt.perf_accesses_per_us() > rb.perf_accesses_per_us(),
        "tmcc {:.2} vs barebone {:.2} accesses/us",
        rt.perf_accesses_per_us(),
        rb.perf_accesses_per_us()
    );
    // Both migrate pages through ML2.
    assert!(rt.stats.ml2_reads > 0);
    assert!(rb.stats.ml2_reads > 0);
}

#[test]
fn cte_misses_mostly_follow_tlb_misses() {
    // Fig. 5: with page-level CTEs, CTE misses cluster behind TLB misses.
    let cfg = test_config(SchemeKind::Tmcc);
    let min = System::min_budget_bytes(&cfg);
    let footprint = cfg.footprint_bytes();
    let mut sys = System::new(cfg.with_budget(min + footprint.saturating_sub(min) / 3));
    let r = sys.run(60_000);
    assert!(r.stats.cte_misses > 0);
    let frac = r.stats.cte_miss_after_tlb_fraction();
    assert!(frac > 0.5, "Fig. 5 fraction too low: {frac}");
}

#[test]
fn deterministic_across_identical_runs() {
    let run = || {
        let mut sys = System::new(test_config(SchemeKind::Tmcc));
        let r = sys.run(20_000);
        (r.stats.elapsed_ns, r.stats.llc_misses(), r.stats.cte_misses)
    };
    assert_eq!(run(), run(), "simulation must be deterministic under a fixed seed");
}

#[test]
fn huge_pages_mode_runs() {
    let mut cfg = test_config(SchemeKind::Tmcc);
    cfg.huge_pages = true;
    let mut sys = System::new(cfg);
    let r = sys.run(30_000);
    assert_eq!(r.stats.accesses, 30_000);
    // Embedded CTEs are ineffective under huge pages (§VIII): everything
    // is serial or CTE-cache hit.
    assert_eq!(r.stats.ml1_parallel_correct, 0);
}

#[test]
fn effective_ratio_accounting_is_consistent() {
    let cfg = test_config(SchemeKind::Tmcc);
    let min = System::min_budget_bytes(&cfg);
    let footprint = cfg.footprint_bytes();
    let budget = min + footprint.saturating_sub(min) / 4;
    assert!(budget < footprint, "test premise: budget must apply pressure");
    let mut sys = System::new(cfg.with_budget(budget));
    let r = sys.run(30_000);
    let ratio = r.stats.effective_ratio();
    assert!(ratio > 1.0, "budget pressure must produce savings: {ratio}");
    assert!(ratio < 5.0, "ratio implausibly high: {ratio}");
    assert!(r.stats.dram_used_bytes <= budget + 64 * 4096);
}
