//! End-to-end multi-tenant isolation tests — the acceptance scenario:
//! one adversarial (incompressible, spiking) tenant among well-behaved
//! key-value tenants under proportional-share QoS. The adversary must
//! enter *and* exit degraded mode while every well-behaved tenant's
//! achieved capacity stays at or above its configured floor.

use tmcc::tenancy::{ChurnKind, ChurnPlan, MultiTenantConfig, MultiTenantSystem, TenantSpec};
use tmcc::{FaultKind, MultiTenantReport, QosPolicyKind, SchemeKind};
use tmcc_workloads::WorkloadProfile;

/// A kv workload shrunk to integration-test scale.
fn kv(name: &str, pages: u64) -> WorkloadProfile {
    let mut w = WorkloadProfile::by_name(name).expect("kv workload");
    w.sim_pages = pages;
    w
}

/// The acceptance scenario: three well-behaved tenants plus `kv_hostile`
/// whose content turns incompressible mid-run and recovers later.
fn adversary_scenario(total: u64) -> MultiTenantConfig {
    let pages = 1024u64;
    let resident = TenantSpec::resident_frames(&kv("kv_zipf", pages));
    let well = |name: &str, workload: &str, seed: u64| {
        TenantSpec::new(name, kv(workload, pages), SchemeKind::Tmcc, seed)
            .with_floor(resident * 6 / 10)
            .with_demand(resident)
    };
    // The adversary asks for less than its uncompressed footprint — it
    // *needs* compression to fit. When its content shifts incompressible
    // the free list collapses and the ladder quarantines it.
    let adversary = TenantSpec::new("adversary", kv("kv_hostile", pages), SchemeKind::Tmcc, 99)
        .with_floor(resident / 2)
        .with_demand(resident * 7 / 10);
    let pool = (3 * resident + resident * 7 / 10) as u64;
    MultiTenantConfig::new(pool, QosPolicyKind::ProportionalShare)
        .with_tenant(well("alpha", "kv_zipf", 11))
        .with_tenant(well("beta", "kv_cache", 22))
        .with_tenant(well("gamma", "kv_scan", 33))
        .with_tenant(adversary)
        .with_churn(
            ChurnPlan::none()
                .with(
                    total / 6,
                    ChurnKind::Fault { roster: 3, kind: FaultKind::ContentShift { percent: 40 } },
                )
                .with(total / 6, ChurnKind::WorkingSetSpike { roster: 3, percent: 140 })
                .with(
                    total / 2,
                    ChurnKind::Fault { roster: 3, kind: FaultKind::ContentShift { percent: 0 } },
                )
                .with(total / 2, ChurnKind::WorkingSetSpike { roster: 3, percent: 100 }),
        )
        .with_quantum(256)
        .with_warmup(800)
        .with_seed(0xBEEF)
        .with_size_samples(8)
        .with_audit()
}

fn run(cfg: MultiTenantConfig, total: u64) -> MultiTenantReport {
    let mut sys = MultiTenantSystem::try_new(cfg).expect("scenario constructs");
    let report = sys.try_run(total).expect("scenario survives");
    sys.validate().expect("invariants clean after the run");
    report
}

#[test]
fn adversary_is_contained_under_proportional_share() {
    let total = 28_000;
    let report = run(adversary_scenario(total), total);

    for t in &report.tenants {
        assert!(t.admitted, "{} must be admitted", t.name);
        assert!(t.fault.is_none(), "{} faulted: {:?}", t.name, t.fault);
        assert!(t.measured_accesses > 0, "{} never ran", t.name);
    }
    // Isolation: every well-behaved tenant's achieved capacity never
    // fell below its configured floor.
    for t in report.tenants.iter().filter(|t| t.name != "adversary") {
        assert!(
            t.min_alloc_frames >= t.floor_frames,
            "{} squeezed below its floor: {} < {}",
            t.name,
            t.min_alloc_frames,
            t.floor_frames
        );
        assert_eq!(t.degraded_entries, 0, "{} must stay healthy", t.name);
        assert_eq!(t.guarantee_breach_rounds, 0, "{} breached", t.name);
    }
    // Containment: the adversary entered quarantine while incompressible
    // and recovered after its content shifted back.
    let adv = report.tenants.iter().find(|t| t.name == "adversary").unwrap();
    assert!(adv.degraded_entries >= 1, "adversary never quarantined: {adv:?}");
    assert!(adv.degraded_exits >= 1, "adversary never recovered: {adv:?}");
    assert!(adv.throttled_quanta > 0, "quarantine must throttle: {adv:?}");
    assert!(adv.shrink_events >= 1, "quarantine must squeeze: {adv:?}");
}

#[test]
fn scenario_is_deterministic() {
    let total = 12_000;
    let a = run(adversary_scenario(total), total);
    let b = run(adversary_scenario(total), total);
    let a = serde_json::to_string(&a).expect("serializes");
    let b = serde_json::to_string(&b).expect("serializes");
    assert_eq!(a, b, "same scenario must serialize byte-identically");
}

#[test]
fn churned_arrivals_and_departures_keep_invariants() {
    let total = 10_000;
    let pages = 512u64;
    let resident = TenantSpec::resident_frames(&kv("kv_zipf", pages));
    let spec = |name: &str, seed: u64| {
        TenantSpec::new(name, kv("kv_zipf", pages), SchemeKind::Tmcc, seed)
            .with_floor(resident / 2)
            .with_demand(resident)
    };
    // Pool holds roughly two tenants; the third's mid-run arrival tests
    // admission control, its departure tests frame release.
    let cfg = MultiTenantConfig::new((resident as u64) * 5 / 2, QosPolicyKind::BestEffortFloors)
        .with_tenant(spec("one", 1))
        .with_tenant(spec("two", 2))
        .with_tenant(spec("three", 3))
        .with_initial_tenants(2)
        .with_churn(
            ChurnPlan::none()
                .with(total / 4, ChurnKind::Arrive { roster: 2 })
                .with(total / 2, ChurnKind::Depart { roster: 0 })
                .with(3 * total / 4, ChurnKind::Arrive { roster: 2 }) // no-op if active
                .with(3 * total / 4, ChurnKind::PoolShrink { frames: 64 })
                .with(7 * total / 8, ChurnKind::PoolGrow { frames: 64 }),
        )
        .with_quantum(256)
        .with_warmup(400)
        .with_seed(7)
        .with_size_samples(8)
        .with_audit();
    let report = run(cfg, total);
    let one = &report.tenants[0];
    assert!(one.departed_at.is_some(), "tenant one must depart");
    assert!(one.report.is_some(), "departed tenant keeps its sealed report");
    assert!(report.rounds > 0 && report.churn_events_applied == 5);
}
