//! Property tests on the multi-tenant arbiter: arbitrary interleavings of
//! per-tenant fault plans and churn events (arrivals, departures, demand
//! spikes, pool ballooning, injected faults) must leave every invariant
//! intact — budgets sum to at most the pool, no cross-tenant frame leaks,
//! ladder hysteresis balanced — and counters saturate instead of
//! overflowing. Tenants are allowed to *fail* (a hostile fault can evict
//! one); the scenario as a whole must survive and stay auditable.

use proptest::prelude::*;
use tmcc::tenancy::{ChurnKind, ChurnPlan, MultiTenantConfig, MultiTenantSystem, TenantSpec};
use tmcc::{FaultKind, FaultPlan, MultiTenantReport, QosPolicyKind, SchemeKind};
use tmcc_workloads::WorkloadProfile;

const ROSTER: usize = 3;
const TOTAL: u64 = 3_000;

fn tiny_workload() -> WorkloadProfile {
    let mut w = WorkloadProfile::by_name("kv_zipf").expect("kv workload");
    w.sim_pages = 256;
    w
}

fn fault_kind() -> impl Strategy<Value = FaultKind> {
    (0u8..5, 1u32..400, 0u32..=100, 1u32..64).prop_map(|(tag, frames, percent, count)| match tag {
        0 => FaultKind::CteFlushStorm,
        1 => FaultKind::ShrinkBudget { frames },
        2 => FaultKind::GrowBudget { frames },
        3 => FaultKind::ContentShift { percent },
        _ => FaultKind::StaleEmbeddings { count: u64::from(count) },
    })
}

fn churn_kind() -> impl Strategy<Value = ChurnKind> {
    // Roster indices deliberately range one past the end: out-of-range
    // events must be ignored, not panic.
    (0u8..6, 0..=ROSTER, 10u32..300, fault_kind(), 1u64..400).prop_map(
        |(tag, roster, percent, kind, frames)| match tag {
            0 => ChurnKind::Arrive { roster },
            1 => ChurnKind::Depart { roster },
            2 => ChurnKind::WorkingSetSpike { roster, percent },
            3 => ChurnKind::Fault { roster, kind },
            4 => ChurnKind::PoolShrink { frames },
            _ => ChurnKind::PoolGrow { frames },
        },
    )
}

fn churn_plan() -> impl Strategy<Value = ChurnPlan> {
    prop::collection::vec((0..TOTAL * 2, churn_kind()), 0..12).prop_map(|events| {
        events.into_iter().fold(ChurnPlan::none(), |plan, (at, kind)| plan.with(at, kind))
    })
}

fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec((0..TOTAL, fault_kind()), 0..4).prop_map(|events| {
        events.into_iter().fold(FaultPlan::none(), |plan, (at, kind)| plan.with(at, kind))
    })
}

fn policy() -> impl Strategy<Value = QosPolicyKind> {
    (0u8..3).prop_map(|tag| match tag {
        0 => QosPolicyKind::StrictPartition,
        1 => QosPolicyKind::ProportionalShare,
        _ => QosPolicyKind::BestEffortFloors,
    })
}

fn scheme() -> impl Strategy<Value = SchemeKind> {
    (0u8..3).prop_map(|tag| match tag {
        0 => SchemeKind::Tmcc,
        1 => SchemeKind::OsInspired,
        _ => SchemeKind::NoCompression,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    /// Every interleaving of churn and faults keeps the arbiter
    /// auditable: the run completes with per-round audits on, the final
    /// validate is clean, and the report decodes losslessly.
    #[test]
    fn churn_and_faults_never_break_invariants(
        policy in policy(),
        schemes in prop::collection::vec(scheme(), ROSTER..=ROSTER),
        plans in prop::collection::vec(fault_plan(), ROSTER..=ROSTER),
        churn in churn_plan(),
        initial in 0..=ROSTER,
        pool_frames in 500u64..1500,
        seed in 0u64..1000,
    ) {
        let resident = TenantSpec::resident_frames(&tiny_workload());
        let mut cfg = MultiTenantConfig::new(pool_frames, policy)
            .with_initial_tenants(initial)
            .with_churn(churn)
            .with_quantum(128)
            .with_warmup(200)
            .with_seed(seed)
            .with_size_samples(8)
            .with_audit();
        for (i, (scheme, plan)) in schemes.into_iter().zip(plans).enumerate() {
            cfg = cfg.with_tenant(
                TenantSpec::new(&format!("t{i}"), tiny_workload(), scheme, i as u64)
                    .with_floor(resident / 2)
                    .with_demand(resident)
                    .with_fault_plan(plan),
            );
        }
        let mut sys = MultiTenantSystem::try_new(cfg).expect("roster admission never errors");
        // Per-round audits are on: a violated invariant aborts the run.
        let report = sys.try_run(TOTAL).expect("scenario survives every interleaving");
        sys.validate().expect("final audit clean");

        // Counters saturate; sums must not overflow either.
        let mut applied = 0u64;
        for t in &report.tenants {
            applied = applied
                .checked_add(t.shrink_events)
                .and_then(|a| a.checked_add(t.grow_events))
                .and_then(|a| a.checked_add(t.degraded_entries))
                .and_then(|a| a.checked_add(t.degraded_exits))
                .expect("counter sums stay in range");
            prop_assert!(t.degraded_exits <= t.degraded_entries);
            if t.admitted && t.fault.is_none() && t.departed_at.is_none() {
                prop_assert!(t.report.is_some(), "{} must seal a report", t.name);
            }
        }
        prop_assert!(report.rounds > 0);

        // The journal decode path is lossless for every shape the
        // arbiter can produce.
        let decoded = MultiTenantReport::from_value(&serde::Serialize::to_value(&report))
            .expect("report decodes");
        prop_assert_eq!(decoded, report);
    }
}

// ---------------------------------------------------------------------------
// Incremental-ledger vs. full-recompute reference, at the event level.
//
// The system-level interleaving test above already drives the reference
// comparison transitively: debug builds run `reference_check()` after
// every batched rebalance the churn/fault machinery performs. The test
// below drives the arbiter *directly* with raw event sequences so the
// equivalence is asserted after every single event, including shapes the
// scheduler never emits (double departures, demand updates on empty
// slots, pool moves with no rebalance between them).
// ---------------------------------------------------------------------------

use tmcc::tenancy::{CapacityArbiter, TenantDemand};

/// One raw ledger event. Slot ranges deliberately cover the whole roster
/// so clears/releases can hit empty slots.
#[derive(Debug, Clone, Copy)]
enum ArbEvent {
    Set { slot: usize, demand: TenantDemand },
    Clear { slot: usize },
    Release { slot: usize },
    PoolShrink { frames: u64 },
    PoolGrow { frames: u64 },
    Rebalance,
}

const ARB_SLOTS: usize = 8;

fn tenant_demand() -> impl Strategy<Value = TenantDemand> {
    // weight 0 exercises the max(1) clamp in the weight aggregate.
    (0u32..8, 0u32..64, 0u32..32, 0u32..512).prop_map(|(weight, floor, min, demand)| TenantDemand {
        weight,
        floor_frames: floor,
        min_frames: min,
        demand_frames: demand,
    })
}

fn arb_event() -> impl Strategy<Value = ArbEvent> {
    (0u8..6, 0..ARB_SLOTS, tenant_demand(), 1u64..600).prop_map(|(tag, slot, demand, frames)| {
        match tag {
            0 => ArbEvent::Set { slot, demand },
            1 => ArbEvent::Clear { slot },
            2 => ArbEvent::Release { slot },
            3 => ArbEvent::PoolShrink { frames },
            4 => ArbEvent::PoolGrow { frames },
            _ => ArbEvent::Rebalance,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every event the incrementally maintained aggregates must
    /// equal a from-scratch recount; after every materialization the
    /// allocations must equal the retained full-recompute reference; and
    /// the final state must be history-independent (identical to a fresh
    /// arbiter built from the final demands in one shot).
    #[test]
    fn incremental_ledger_matches_reference_after_every_event(
        policy in policy(),
        pool in 200u64..4000,
        events in prop::collection::vec(arb_event(), 1..64),
    ) {
        let mut arb = CapacityArbiter::new(pool, policy, ARB_SLOTS);
        let mut model: Vec<Option<TenantDemand>> = vec![None; ARB_SLOTS];
        for event in events {
            match event {
                ArbEvent::Set { slot, demand } => {
                    arb.set_demand(slot, demand);
                    model[slot] = Some(demand);
                }
                ArbEvent::Clear { slot } => {
                    arb.clear_demand(slot);
                    model[slot] = None;
                }
                ArbEvent::Release { slot } => {
                    arb.release(slot);
                    model[slot] = None;
                }
                ArbEvent::PoolShrink { frames } => arb.shrink_pool(frames),
                ArbEvent::PoolGrow { frames } => arb.grow_pool(frames),
                ArbEvent::Rebalance => {
                    arb.rebalance();
                    // Materialized state must match the full recompute.
                    arb.reference_check().expect("incremental == reference after rebalance");
                    arb.validate().expect("ledger invariants after rebalance");
                }
            }
            // Ledger totals agree exactly after *every* event, including
            // un-materialized (dirty) ones.
            let guaranteed: u64 =
                model.iter().flatten().map(|d| d.guaranteed() as u64).sum();
            let weight: u64 = model.iter().flatten().map(|d| d.weight.max(1) as u64).sum();
            prop_assert_eq!(arb.guaranteed_total(), guaranteed);
            prop_assert_eq!(arb.weight_total(), weight);
            prop_assert_eq!(arb.active_tenants(), model.iter().flatten().count());
            // Admission is a pure read of the guarantee aggregate.
            let probe = TenantDemand {
                weight: 1,
                floor_frames: 16,
                min_frames: 8,
                demand_frames: 64,
            };
            prop_assert_eq!(
                arb.can_admit(probe),
                guaranteed + probe.guaranteed() as u64 <= arb.pool_frames()
            );
        }

        // History independence: a fresh arbiter fed only the surviving
        // demands materializes the exact same allocations.
        arb.rebalance();
        arb.reference_check().expect("final reference check");
        let mut fresh = CapacityArbiter::new(arb.pool_frames(), policy, ARB_SLOTS);
        for (slot, d) in model.iter().enumerate() {
            if let Some(d) = d {
                fresh.set_demand(slot, *d);
            }
        }
        fresh.rebalance();
        for slot in 0..ARB_SLOTS {
            prop_assert_eq!(arb.allocation(slot), fresh.allocation(slot));
        }
        prop_assert_eq!(arb.guaranteed_total(), fresh.guaranteed_total());
        prop_assert_eq!(arb.weight_total(), fresh.weight_total());
        prop_assert_eq!(arb.active_tenants(), fresh.active_tenants());
    }
}
