//! Criterion benchmarks of the incremental capacity arbiter at fleet
//! rosters (10 / 100 / 1k / 10k tenants) under all three QoS policies.
//!
//! Three cost classes matter for thousand-tenant scale-out:
//!
//! * `event` — one demand delta against the ledger plus the admission
//!   query ([`CapacityArbiter::set_demand`] +
//!   [`CapacityArbiter::can_admit`]). This is the per-churn-event fast
//!   path; it maintains the guarantee/weight aggregates by delta and must
//!   stay O(1) in roster size (the acceptance gate: <3× growth from 1k
//!   to 10k).
//! * `round` — a full scheduling round's worth of demand deltas followed
//!   by the single batched [`CapacityArbiter::rebalance`] barrier,
//!   reported per event. This is the amortized steady-state cost the
//!   multi-tenant scheduler actually pays.
//! * `rebalance` — one batched materialization alone (single dirty
//!   event → full policy pass). O(active) by design; benched so the
//!   constant is visible next to the O(1) paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tmcc::tenancy::{CapacityArbiter, QosPolicyKind, TenantDemand};

const ROSTERS: [usize; 4] = [10, 100, 1_000, 10_000];
const POLICIES: [QosPolicyKind; 3] = [
    QosPolicyKind::StrictPartition,
    QosPolicyKind::ProportionalShare,
    QosPolicyKind::BestEffortFloors,
];

/// Deterministic per-slot demand; floors small enough that 10k tenants
/// still fit under the guarantee aggregate.
fn demand(slot: usize, spike: bool) -> TenantDemand {
    TenantDemand {
        weight: 1 + (slot % 4) as u32,
        floor_frames: 16 + (slot % 8) as u32,
        min_frames: 8,
        demand_frames: if spike { 512 } else { 64 + (slot % 32) as u32 },
    }
}

/// A materialized arbiter with every slot active.
fn arbiter(policy: QosPolicyKind, roster: usize) -> CapacityArbiter {
    // Pool sized so guarantees always fit (no breach branch noise).
    let mut arb = CapacityArbiter::new(64 * roster as u64, policy, roster);
    for slot in 0..roster {
        arb.set_demand(slot, demand(slot, false));
    }
    arb.rebalance();
    arb
}

fn bench_event(c: &mut Criterion) {
    let mut g = c.benchmark_group("arbiter-event");
    for policy in POLICIES {
        for roster in ROSTERS {
            let mut arb = arbiter(policy, roster);
            let probe = demand(roster / 2, false);
            g.throughput(Throughput::Elements(1));
            g.bench_function(&format!("{}/{roster}", policy.name()), |b| {
                let mut spike = false;
                b.iter(|| {
                    spike = !spike;
                    arb.set_demand(roster / 2, demand(roster / 2, spike));
                    black_box(arb.can_admit(probe));
                    black_box(arb.guaranteed_total())
                })
            });
        }
    }
    g.finish();
}

fn bench_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("arbiter-round");
    for policy in POLICIES {
        for roster in ROSTERS {
            let mut arb = arbiter(policy, roster);
            g.throughput(Throughput::Elements(roster as u64));
            g.bench_function(&format!("{}/{roster}", policy.name()), |b| {
                let mut spike = false;
                b.iter(|| {
                    spike = !spike;
                    for slot in 0..roster {
                        arb.set_demand(slot, demand(slot, spike));
                    }
                    arb.rebalance();
                    black_box(arb.allocation(roster - 1))
                })
            });
        }
    }
    g.finish();
}

fn bench_rebalance(c: &mut Criterion) {
    let mut g = c.benchmark_group("arbiter-rebalance");
    for policy in POLICIES {
        for roster in ROSTERS {
            let mut arb = arbiter(policy, roster);
            g.throughput(Throughput::Elements(1));
            g.bench_function(&format!("{}/{roster}", policy.name()), |b| {
                let mut spike = false;
                b.iter(|| {
                    spike = !spike;
                    arb.set_demand(roster / 2, demand(roster / 2, spike));
                    arb.rebalance();
                    black_box(arb.allocation(roster / 2))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_event, bench_round, bench_rebalance);
criterion_main!(benches);
