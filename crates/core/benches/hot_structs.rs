//! Criterion benchmarks of the simulator's hot-path bookkeeping
//! structures: the arithmetic-handle [`PageSlab`], the sampled intrusive
//! [`RecencyList`], and the FxHash maps versus `std`'s SipHash default.
//! Every simulated access crosses these structures at least once, so
//! their per-op cost is the floor of the whole simulator's throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::collections::HashMap;
use tmcc::{PageSlab, RecencyList};
use tmcc_types::addr::Ppn;
use tmcc_types::FxHashMap;

const PAGES: u64 = 1 << 16;
const OPS: usize = 1 << 12;

/// Deterministic page-number stream (splitmix-style; no rand dependency).
fn ppns(seed: u64, bound: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % bound
        })
        .collect()
}

fn bench_page_slab(c: &mut Criterion) {
    let mut slab: PageSlab<u64> = PageSlab::new(0);
    for ppn in 0..PAGES {
        slab.insert(ppn, ppn * 3);
    }
    let lookups = ppns(1, PAGES, OPS);

    let mut g = c.benchmark_group("page-slab");
    g.throughput(Throughput::Elements(OPS as u64));
    g.bench_function("insert/64Ki", |b| {
        b.iter(|| {
            let mut s: PageSlab<u64> = PageSlab::new(0);
            for ppn in 0..OPS as u64 {
                s.insert(ppn, ppn);
            }
            black_box(s.len())
        })
    });
    g.bench_function("get/64Ki", |b| {
        b.iter(|| {
            for &ppn in &lookups {
                black_box(slab.get(ppn));
            }
        })
    });
    g.bench_function("get-id/64Ki", |b| {
        let ids: Vec<_> = lookups.iter().map(|&p| slab.id_of(p).expect("resident")).collect();
        b.iter(|| {
            for &id in &ids {
                black_box(slab.get_id(id));
            }
        })
    });
    g.finish();
}

fn bench_recency_list(c: &mut Criterion) {
    let stream = ppns(2, PAGES, OPS);

    let mut g = c.benchmark_group("recency-list");
    g.throughput(Throughput::Elements(OPS as u64));
    g.bench_function("insert-hot/64Ki", |b| {
        b.iter(|| {
            let mut rl = RecencyList::new(7);
            for ppn in 0..OPS as u64 {
                rl.insert_hot(Ppn::new(ppn));
            }
            black_box(rl.len())
        })
    });
    g.bench_function("on-access/64Ki", |b| {
        let mut rl = RecencyList::new(7);
        for ppn in 0..PAGES {
            rl.insert_hot(Ppn::new(ppn));
        }
        b.iter(|| {
            for &ppn in &stream {
                black_box(rl.on_access(Ppn::new(ppn)));
            }
        })
    });
    g.bench_function("pop-coldest/4Ki", |b| {
        b.iter_with_setup(
            || {
                let mut rl = RecencyList::new(7);
                for ppn in 0..OPS as u64 {
                    rl.insert_hot(Ppn::new(ppn));
                }
                rl
            },
            |mut rl| {
                while let Some(p) = rl.pop_coldest() {
                    black_box(p);
                }
            },
        )
    });
    g.finish();
}

fn bench_hash_maps(c: &mut Criterion) {
    let keys = ppns(3, PAGES, OPS);
    let mut fx: FxHashMap<u64, u64> = FxHashMap::default();
    let mut std_map: HashMap<u64, u64> = HashMap::new();
    for ppn in 0..PAGES {
        fx.insert(ppn, ppn * 3);
        std_map.insert(ppn, ppn * 3);
    }

    let mut g = c.benchmark_group("hash-maps");
    g.throughput(Throughput::Elements(OPS as u64));
    g.bench_function("fxhash/get", |b| {
        b.iter(|| {
            for k in &keys {
                black_box(fx.get(k));
            }
        })
    });
    g.bench_function("siphash/get", |b| {
        b.iter(|| {
            for k in &keys {
                black_box(std_map.get(k));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_page_slab, bench_recency_list, bench_hash_maps);
criterion_main!(benches);
