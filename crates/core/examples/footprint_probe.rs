//! Probe host cost of a TB-scale simulated footprint.
//!
//! Constructs a TMCC system over `N` GiB of simulated memory (default
//! 100) and reports construction/run wall time, host RSS, and the
//! scheme's metadata heap — the numbers behind the `capacity_cliff`
//! experiment's sizing. Page contents are lazily materialized from the
//! workload seed, so RSS tracks metadata only, never the footprint.
//!
//! ```sh
//! cargo run --release -p tmcc --example footprint_probe -- 100
//! ```

use std::time::Instant;
use tmcc::{SchemeKind, System, SystemConfig};
use tmcc_workloads::WorkloadProfile;

/// A field of `/proc/self/status` in kB (0 off-Linux).
fn status_kb(field: &str) -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with(field))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

fn main() {
    let gib: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100);
    let pages = gib << 30 >> 12;
    let mut workload = WorkloadProfile::by_name("pageRank").expect("known workload");
    workload.sim_pages = pages;
    let mut cfg = SystemConfig::new(workload, SchemeKind::Tmcc);
    cfg.dram_budget_bytes = Some(pages * 4096 * 9 / 16 + pages * 32);
    cfg.warmup_accesses = 5_000;
    cfg.size_samples = 64;

    let t = Instant::now();
    let mut sys = System::try_new(cfg).expect("feasible budget");
    println!(
        "construct {gib} GiB ({pages} pages): {:.1?}  rss {} MiB",
        t.elapsed(),
        status_kb("VmRSS") / 1024
    );

    let t = Instant::now();
    let report = sys.try_run(10_000).expect("run");
    let (reads, writes, divergent) = sys.page_store().stats();
    println!(
        "run 10k accesses: {:.1?}  perf {:.2} acc/us  dram used {} MiB",
        t.elapsed(),
        report.perf_accesses_per_us(),
        report.stats.dram_used_bytes >> 20
    );
    println!(
        "metadata heap {} MiB  store reads/writes/divergent {reads}/{writes}/{divergent}  \
         peak rss {} MiB ({:.1} MiB host per simulated GiB)",
        sys.metadata_heap_bytes() >> 20,
        status_kb("VmHWM") / 1024,
        status_kb("VmHWM") as f64 / 1024.0 / gib as f64
    );
}
