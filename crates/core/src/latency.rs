//! Deterministic fixed-bin log-scale latency histograms.
//!
//! Fleet-scale figures need per-access latency *distributions* — tail
//! percentiles, not means — but storing every sample for thousands of
//! tenants is out of the question and anything adaptive (t-digest,
//! HDR auto-ranging) would make the output depend on arrival order. A
//! [`LatencyHistogram`] therefore uses [`LATENCY_BINS`] fixed
//! power-of-two bins: a sample of `ns` nanoseconds lands in bin
//! `⌊log2(ns)⌋ + 1` (bin 0 holds only `ns = 0`), so bin `b` covers
//! `[2^(b-1), 2^b)` and the histogram
//! is a pure, order-independent function of the sample multiset. Merging
//! tenant histograms into a fleet histogram is element-wise addition —
//! associative and commutative, so fleet percentiles are byte-stable at
//! any `--jobs` count.
//!
//! Percentile queries return the *upper bound* of the bin holding the
//! rank (a deterministic overestimate, at worst 2× the true sample).
//! That is the right trade for a simulator: byte-reproducible goldens
//! beat sub-bin precision.

/// Number of power-of-two latency bins. Bin 63 absorbs every sample
/// ≥ 2^62 ns (~146 years of simulated time — unreachable).
pub const LATENCY_BINS: usize = 64;

/// A fixed-bin log₂-scale histogram of per-access latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BINS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { counts: [0; LATENCY_BINS], total: 0 }
    }

    /// Discards all samples.
    pub fn reset(&mut self) {
        self.counts = [0; LATENCY_BINS];
        self.total = 0;
    }

    /// The bin a sample of `ns` nanoseconds lands in: `⌊log2(ns)⌋ + 1`
    /// (0 for `ns = 0`), clamped to the last bin.
    #[inline]
    pub fn bin_of(ns: u64) -> usize {
        ((u64::BITS - ns.leading_zeros()) as usize).min(LATENCY_BINS - 1)
    }

    /// The inclusive upper latency bound of `bin` in nanoseconds
    /// (`2^bin − 1`; bin 0 holds only zero-latency samples).
    pub fn bin_upper_ns(bin: usize) -> u64 {
        if bin == 0 {
            0
        } else {
            (1u64 << bin.min(63)).wrapping_sub(1)
        }
    }

    /// Records one sample. Saturating (a fleet cannot overflow u64
    /// access counts in practice, but the histogram must never wrap).
    #[inline]
    pub fn record(&mut self, ns: u64) {
        let b = Self::bin_of(ns);
        self.counts[b] = self.counts[b].saturating_add(1);
        self.total = self.total.saturating_add(1);
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The raw bin counts.
    pub fn counts(&self) -> &[u64; LATENCY_BINS] {
        &self.counts
    }

    /// Element-wise accumulation of another histogram (tenant → fleet
    /// merge). Associative and commutative.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.total = self.total.saturating_add(other.total);
    }

    /// The latency upper bound at permille rank `permille` (e.g. 500 =
    /// p50, 999 = p99.9): the upper bound of the first bin whose
    /// cumulative count reaches `⌈total · permille / 1000⌉`. Returns 0
    /// for an empty histogram.
    pub fn percentile_ns(&self, permille: u64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (self.total as u128 * permille.min(1000) as u128).div_ceil(1000) as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (bin, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Self::bin_upper_ns(bin);
            }
        }
        Self::bin_upper_ns(LATENCY_BINS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_are_log2_with_exact_boundaries() {
        assert_eq!(LatencyHistogram::bin_of(0), 0);
        assert_eq!(LatencyHistogram::bin_of(1), 1);
        assert_eq!(LatencyHistogram::bin_of(2), 2);
        assert_eq!(LatencyHistogram::bin_of(3), 2);
        assert_eq!(LatencyHistogram::bin_of(4), 3);
        assert_eq!(LatencyHistogram::bin_of(1024), 11);
        assert_eq!(LatencyHistogram::bin_of(u64::MAX), LATENCY_BINS - 1);
        // bin b covers [2^(b-1), 2^b): its inclusive upper bound 2^b − 1
        // is in the bin, and the next nanosecond is in the next bin.
        for b in 1..20 {
            let upper = LatencyHistogram::bin_upper_ns(b);
            assert_eq!(LatencyHistogram::bin_of(upper), b);
            assert_eq!(LatencyHistogram::bin_of(upper + 1), b + 1);
        }
    }

    #[test]
    fn percentiles_walk_the_cumulative_counts() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(100); // bin 7, upper 127
        }
        for _ in 0..10 {
            h.record(10_000); // bin 14, upper 16383
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.percentile_ns(500), 127);
        assert_eq!(h.percentile_ns(900), 127);
        assert_eq!(h.percentile_ns(950), 16_383);
        assert_eq!(h.percentile_ns(999), 16_383);
        assert_eq!(LatencyHistogram::new().percentile_ns(500), 0);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..1000u64 {
            if i % 3 == 0 {
                a.record(i * 7)
            } else {
                b.record(i * 7)
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counts(), ba.counts());
        assert_eq!(ab.total(), 1000);
    }
}
