//! TMCC — Translation-optimized Memory Compression for Capacity.
//!
//! This is the reproduction's core crate: the full-system model that wires
//! the synthetic workloads ([`tmcc_workloads`]) through a TLB, page walker
//! and cache hierarchy ([`tmcc_sim_mem`]) to a memory controller
//! implementing one of four hardware memory-compression schemes, backed by
//! the DDR4 timing model ([`tmcc_sim_dram`]):
//!
//! * [`SchemeKind::NoCompression`] — a conventional memory system;
//! * [`SchemeKind::Compresso`] — the block-level state of the art the
//!   paper compares against (§III, reference [6]);
//! * [`SchemeKind::OsInspired`] — the barebone two-level (ML1/ML2) design
//!   of §IV: page-level CTEs, free lists, recency list, but *serial* CTE
//!   fetches and IBM-speed Deflate;
//! * [`SchemeKind::Tmcc`] — the paper's design: OS-inspired structure plus
//!   compressed PTBs with embedded CTEs for speculative parallel DRAM
//!   access (§V-A) and the memory-specialized Deflate for ML2 (§V-B).
//!
//! The top-level entry point is [`System`]: build one with a
//! [`SystemConfig`], run it, and read a [`RunReport`] whose counters map
//! one-to-one onto the paper's figures. The `tmcc-bench` crate contains a
//! binary per table/figure.
//!
//! # Examples
//!
//! ```no_run
//! use tmcc::{SchemeKind, System, SystemConfig};
//!
//! let cfg = SystemConfig::for_workload("canneal", SchemeKind::Tmcc)
//!     .expect("known workload");
//! let mut sys = System::new(cfg);
//! let report = sys.run(200_000);
//! println!("perf proxy: {:.3} accesses/us", report.perf_accesses_per_us());
//! ```

pub mod config;
pub mod error;
pub mod free_list;
pub mod handle;
pub mod latency;
pub mod page_meta;
pub mod page_slab;
pub mod recency;
pub mod schemes;
pub mod size_model;
pub mod stats;
pub mod system;
pub mod tenancy;

pub use config::{
    BitFlipEvent, BitFlipPlan, FaultEvent, FaultKind, FaultPlan, FlipShape, FlipTarget, SchemeKind,
    SystemConfig,
};
pub use error::TmccError;
pub use free_list::{CompressoFreeList, Ml1FreeList, Ml2FreeLists};
pub use handle::RunHandle;
pub use latency::{LatencyHistogram, LATENCY_BINS};
pub use page_meta::{PageInfo, PageMetaStore, Placement};
pub use page_slab::{PageId, PageSlab};
pub use recency::RecencyList;
pub use size_model::{PageSizes, SizeModel};
pub use stats::{Ml1ReadOutcome, RunReport, SimStats};
pub use system::{PhaseProfile, System};
pub use tenancy::{
    ChurnKind, ChurnPlan, MultiTenantConfig, MultiTenantReport, MultiTenantSystem, QosPolicyKind,
    TenantReport, TenantSpec,
};
