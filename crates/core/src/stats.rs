//! Simulation counters and the per-run report.
//!
//! Every figure in the paper's evaluation reads off one or more of these
//! counters; the field docs say which.
//!
//! [`RunReport::from_value`] reconstructs a report from its own
//! serialization — the decode half of the sweep journal's crash-safe
//! replay. The decode is *exact* (integers and float bit patterns round
//! trip), and *strict*: every field must be present and every key must be
//! consumed, so a counter added to [`SimStats`] without a matching decode
//! line fails loudly in the round-trip tests instead of silently
//! replaying stale zeros after a resume.

use crate::config::SchemeKind;
use serde::{Serialize, Value};
use tmcc_sim_dram::DramStats;

/// How an LLC-miss read to an ML1 page was served under TMCC (Fig. 19).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ml1ReadOutcome {
    /// The CTE was in the CTE cache.
    CteCacheHit,
    /// Speculative parallel access with a correct embedded CTE.
    ParallelCorrect,
    /// Speculative parallel access whose embedded CTE was stale
    /// (re-accessed serially, Fig. 8c).
    ParallelMismatch,
    /// No embedded CTE available: serial CTE fetch then data fetch.
    SerialNoCte,
}

/// Raw counters accumulated during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct SimStats {
    /// Workload accesses executed (the performance work unit).
    pub accesses: u64,
    /// Core compute cycles between accesses.
    pub work_cycles: u64,
    /// Wall-clock simulated time, ns.
    pub elapsed_ns: f64,

    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB misses (each triggers a page walk).
    pub tlb_misses: u64,
    /// PTB fetches issued by the page walker (post-PWC).
    pub walker_fetches: u64,

    /// LLC misses for data/instruction blocks (Fig. 1 denominator).
    pub llc_miss_data: u64,
    /// LLC misses for page-walker PTB blocks.
    pub llc_miss_ptb: u64,
    /// Dirty LLC writebacks sent to the MC.
    pub llc_writebacks: u64,
    /// Sum of L3-miss service latencies (NoC + MC + DRAM), ns (Fig. 18).
    pub l3_miss_latency_sum_ns: f64,

    /// CTE cache hits on LLC-miss requests.
    pub cte_hits: u64,
    /// CTE cache misses on LLC-miss requests (Fig. 1).
    pub cte_misses: u64,
    /// CTE misses on requests related to a TLB miss (walker fetches and
    /// the data access right after a walk) — Fig. 5's numerator.
    pub cte_misses_after_tlb_miss: u64,

    /// Fig. 19: ML1 reads served with a CTE-cache hit.
    pub ml1_cte_hit: u64,
    /// Fig. 19: ML1 reads served by a correct speculative parallel access.
    pub ml1_parallel_correct: u64,
    /// Fig. 19: parallel accesses whose embedded CTE was stale.
    pub ml1_parallel_mismatch: u64,
    /// Fig. 19: ML1 reads with no embedded CTE (serial).
    pub ml1_serial: u64,

    /// LLC misses served from ML2 (Fig. 21 numerator).
    pub ml2_reads: u64,
    /// Sum of MC+DRAM service latencies for ML1-resident demand reads, ns.
    pub ml1_latency_sum_ns: f64,
    /// Sum of MC+DRAM service latencies for ML2-resident demand reads, ns.
    pub ml2_latency_sum_ns: f64,
    /// Pages migrated ML2 → ML1.
    pub ml2_to_ml1_migrations: u64,
    /// Pages migrated ML1 → ML2 (evictions).
    pub ml1_to_ml2_migrations: u64,
    /// Pages found incompressible at eviction.
    pub incompressible_evictions: u64,
    /// ns spent stalled on the full migration buffer.
    pub migration_stall_ns: f64,
    /// ML2 reads that had to yield to critical-pressure evictions (§VI's
    /// priority flip below the lower free-list threshold).
    pub ml2_crit_penalties: u64,

    /// Compresso page-overflow events (block writeback grew the page).
    pub page_overflows: u64,

    /// Runtime faults injected from the configured [`FaultPlan`]
    /// (crate::config::FaultPlan).
    pub faults_injected: u64,
    /// Evictions performed above the normal per-slot budget while the
    /// free list sat below the critical watermark or reclaim debt was
    /// outstanding.
    pub emergency_evictions: u64,
    /// Evictions that fell back to storing the page raw (uncompressed
    /// 4 KiB class) because its exact size class could not be carved.
    pub raw_fallbacks: u64,
    /// Simulated ns spent in degraded mode (free list below the critical
    /// watermark or unpaid reclaim debt).
    pub degraded_ns: f64,
    /// Times the scheme exited degraded mode (pressure fully relieved).
    pub recoveries: u64,

    /// Bit-flip events injected from the configured
    /// [`BitFlipPlan`](crate::config::BitFlipPlan).
    pub flips_injected: u64,
    /// Flips caught by an integrity check (payload CRC, metadata tag or
    /// parity, conservation audit) before the corrupted value was used.
    pub corruptions_detected: u64,
    /// Detected corruptions repaired in place (content regenerated from
    /// the page source, raw-store fallback, directory scrub + refill).
    pub corruptions_corrected: u64,
    /// Detected corruptions the ladder could not repair; the affected
    /// frame was poisoned and quarantined.
    pub corruptions_uncorrectable: u64,
    /// Flips no check covers (or that defeated their check, e.g. an
    /// even-weight burst under parity): silent data corruption escapes.
    pub sdc_escapes: u64,
    /// Subset of detections caught by a *metadata* check (seal tag, CTE
    /// parity, free-list audit) rather than the payload CRC.
    pub metadata_corruptions_detected: u64,
    /// Frames permanently removed from the budget by poisoning.
    pub frames_poisoned: u64,
    /// Simulated ns spent in detect/recover work (decode attempts,
    /// recompression, scrubs) attributable to injected flips.
    pub recovery_ns: f64,

    /// Final DRAM bytes used by data + metadata.
    pub dram_used_bytes: u64,
    /// Uncompressed footprint bytes.
    pub footprint_bytes: u64,
}

impl SimStats {
    /// Total LLC misses (data + PTB) — the denominator of Figs. 1/2/5.
    pub fn llc_misses(&self) -> u64 {
        self.llc_miss_data + self.llc_miss_ptb
    }

    /// TLB misses per LLC miss (Fig. 1, left bars).
    pub fn tlb_miss_per_llc_miss(&self) -> f64 {
        ratio(self.tlb_misses, self.llc_misses())
    }

    /// CTE misses per LLC miss (Fig. 1, right bars).
    pub fn cte_miss_per_llc_miss(&self) -> f64 {
        ratio(self.cte_misses, self.llc_misses())
    }

    /// CTE cache hit rate over LLC-miss requests (Fig. 2 / Fig. 19).
    pub fn cte_hit_rate(&self) -> f64 {
        ratio(self.cte_hits, self.cte_hits + self.cte_misses)
    }

    /// Fraction of CTE misses that immediately follow TLB misses (Fig. 5).
    pub fn cte_miss_after_tlb_fraction(&self) -> f64 {
        ratio(self.cte_misses_after_tlb_miss, self.cte_misses)
    }

    /// Average L3-miss service latency, ns (Fig. 18).
    pub fn avg_l3_miss_latency_ns(&self) -> f64 {
        if self.llc_misses() == 0 {
            0.0
        } else {
            self.l3_miss_latency_sum_ns / self.llc_misses() as f64
        }
    }

    /// ML2 accesses per (LLC miss + writeback) — Fig. 21's metric.
    pub fn ml2_access_rate(&self) -> f64 {
        ratio(self.ml2_reads, self.llc_misses() + self.llc_writebacks)
    }

    /// Fraction of injected flips an integrity check caught (detected or
    /// landed harmlessly); 1 − this is the SDC escape rate.
    pub fn detection_coverage(&self) -> f64 {
        ratio(self.corruptions_detected, self.flips_injected)
    }

    /// Fraction of injected flips that escaped every check silently.
    pub fn sdc_escape_rate(&self) -> f64 {
        ratio(self.sdc_escapes, self.flips_injected)
    }

    /// Fraction of detected corruptions the ladder repaired in place.
    pub fn recovery_rate(&self) -> f64 {
        ratio(self.corruptions_corrected, self.corruptions_detected)
    }

    /// Effective capacity ratio: footprint / DRAM used.
    pub fn effective_ratio(&self) -> f64 {
        if self.dram_used_bytes == 0 {
            1.0
        } else {
            self.footprint_bytes as f64 / self.dram_used_bytes as f64
        }
    }

    /// Cross-counter consistency audit, run from `System::validate` in
    /// debug builds. Catches saturated counters (the hot loops use
    /// `saturating_add`, so a wrapped counter shows up as `u64::MAX`
    /// here instead of as garbage ratios downstream), violated
    /// subset relations, and non-finite time accumulators.
    pub fn audit(&self) -> Result<(), String> {
        let counters = [
            ("accesses", self.accesses),
            ("work_cycles", self.work_cycles),
            ("tlb_hits", self.tlb_hits),
            ("tlb_misses", self.tlb_misses),
            ("walker_fetches", self.walker_fetches),
            ("llc_miss_data", self.llc_miss_data),
            ("llc_miss_ptb", self.llc_miss_ptb),
            ("llc_writebacks", self.llc_writebacks),
            ("cte_hits", self.cte_hits),
            ("cte_misses", self.cte_misses),
            ("dram_used_bytes", self.dram_used_bytes),
        ];
        for (name, value) in counters {
            if value == u64::MAX {
                return Err(format!("stats counter {name} saturated at u64::MAX"));
            }
        }
        if self.cte_misses_after_tlb_miss > self.cte_misses {
            return Err(format!(
                "cte_misses_after_tlb_miss ({}) exceeds cte_misses ({})",
                self.cte_misses_after_tlb_miss, self.cte_misses
            ));
        }
        if self.corruptions_corrected + self.corruptions_uncorrectable > self.corruptions_detected {
            return Err(format!(
                "corruption ladder outcomes ({} corrected + {} uncorrectable) exceed \
                 detections ({})",
                self.corruptions_corrected,
                self.corruptions_uncorrectable,
                self.corruptions_detected
            ));
        }
        if self.corruptions_detected + self.sdc_escapes > self.flips_injected {
            return Err(format!(
                "corruption outcomes ({} detected + {} escaped) exceed flips injected ({})",
                self.corruptions_detected, self.sdc_escapes, self.flips_injected
            ));
        }
        if self.metadata_corruptions_detected > self.corruptions_detected {
            return Err(format!(
                "metadata_corruptions_detected ({}) exceeds corruptions_detected ({})",
                self.metadata_corruptions_detected, self.corruptions_detected
            ));
        }
        let times = [
            ("elapsed_ns", self.elapsed_ns),
            ("l3_miss_latency_sum_ns", self.l3_miss_latency_sum_ns),
            ("ml1_latency_sum_ns", self.ml1_latency_sum_ns),
            ("ml2_latency_sum_ns", self.ml2_latency_sum_ns),
            ("migration_stall_ns", self.migration_stall_ns),
            ("degraded_ns", self.degraded_ns),
            ("recovery_ns", self.recovery_ns),
        ];
        for (name, value) in times {
            if !value.is_finite() || value < 0.0 {
                return Err(format!(
                    "stats accumulator {name} is {value} (not a finite non-negative time)"
                ));
            }
        }
        Ok(())
    }

    /// Exact, strict inverse of this type's serialization (see the module
    /// doc). Errors name the offending field.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let mut f = serde::FieldReader::open(v, "SimStats")?;
        let stats = Self {
            accesses: f.u64("accesses")?,
            work_cycles: f.u64("work_cycles")?,
            elapsed_ns: f.f64("elapsed_ns")?,
            tlb_hits: f.u64("tlb_hits")?,
            tlb_misses: f.u64("tlb_misses")?,
            walker_fetches: f.u64("walker_fetches")?,
            llc_miss_data: f.u64("llc_miss_data")?,
            llc_miss_ptb: f.u64("llc_miss_ptb")?,
            llc_writebacks: f.u64("llc_writebacks")?,
            l3_miss_latency_sum_ns: f.f64("l3_miss_latency_sum_ns")?,
            cte_hits: f.u64("cte_hits")?,
            cte_misses: f.u64("cte_misses")?,
            cte_misses_after_tlb_miss: f.u64("cte_misses_after_tlb_miss")?,
            ml1_cte_hit: f.u64("ml1_cte_hit")?,
            ml1_parallel_correct: f.u64("ml1_parallel_correct")?,
            ml1_parallel_mismatch: f.u64("ml1_parallel_mismatch")?,
            ml1_serial: f.u64("ml1_serial")?,
            ml2_reads: f.u64("ml2_reads")?,
            ml1_latency_sum_ns: f.f64("ml1_latency_sum_ns")?,
            ml2_latency_sum_ns: f.f64("ml2_latency_sum_ns")?,
            ml2_to_ml1_migrations: f.u64("ml2_to_ml1_migrations")?,
            ml1_to_ml2_migrations: f.u64("ml1_to_ml2_migrations")?,
            incompressible_evictions: f.u64("incompressible_evictions")?,
            migration_stall_ns: f.f64("migration_stall_ns")?,
            ml2_crit_penalties: f.u64("ml2_crit_penalties")?,
            page_overflows: f.u64("page_overflows")?,
            faults_injected: f.u64("faults_injected")?,
            emergency_evictions: f.u64("emergency_evictions")?,
            raw_fallbacks: f.u64("raw_fallbacks")?,
            degraded_ns: f.f64("degraded_ns")?,
            recoveries: f.u64("recoveries")?,
            flips_injected: f.u64("flips_injected")?,
            corruptions_detected: f.u64("corruptions_detected")?,
            corruptions_corrected: f.u64("corruptions_corrected")?,
            corruptions_uncorrectable: f.u64("corruptions_uncorrectable")?,
            sdc_escapes: f.u64("sdc_escapes")?,
            metadata_corruptions_detected: f.u64("metadata_corruptions_detected")?,
            frames_poisoned: f.u64("frames_poisoned")?,
            recovery_ns: f.f64("recovery_ns")?,
            dram_used_bytes: f.u64("dram_used_bytes")?,
            footprint_bytes: f.u64("footprint_bytes")?,
        };
        f.finish()?;
        Ok(stats)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Everything a finished run reports.
///
/// Serializes deterministically: two runs with the same seed and fault
/// plan produce byte-identical JSON (the determinism regression tests
/// rely on this).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunReport {
    /// Workload name.
    pub workload: &'static str,
    /// Scheme simulated.
    pub scheme: SchemeKind,
    /// Simulation counters (post-warmup).
    pub stats: SimStats,
    /// DRAM-level counters (post-warmup).
    pub dram: DramStats,
    /// Peak DRAM bandwidth of the configuration, GB/s.
    pub peak_bandwidth_gbps: f64,
    /// Bus utilization between first and last DRAM access.
    pub bandwidth_utilization: f64,
}

impl RunReport {
    /// The performance proxy: workload accesses retired per microsecond.
    /// The paper reports store instructions per cycle; both are linear in
    /// retirement rate, so normalized comparisons are identical.
    pub fn perf_accesses_per_us(&self) -> f64 {
        if self.stats.elapsed_ns == 0.0 {
            0.0
        } else {
            self.stats.accesses as f64 / (self.stats.elapsed_ns / 1000.0)
        }
    }

    /// Exact, strict inverse of this type's serialization — the decode
    /// half of the sweep journal's crash-safe replay (see the module
    /// doc). `to_value(from_value(v)) == v` for any report this
    /// workspace produced.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let mut f = serde::FieldReader::open(v, "RunReport")?;
        let workload_name = f.str("workload")?;
        // Reports carry `&'static str` workload names; intern decoded
        // names through the profile table, leaking only for names no
        // registered profile owns (e.g. future journal versions).
        let workload = match tmcc_workloads::WorkloadProfile::by_name(workload_name) {
            Some(profile) => profile.name,
            None => &*Box::leak(workload_name.to_string().into_boxed_str()),
        };
        let scheme_variant = f.str("scheme")?;
        let scheme = SchemeKind::from_variant(scheme_variant)
            .ok_or_else(|| format!("RunReport: unknown scheme variant {scheme_variant:?}"))?;
        let stats = SimStats::from_value(f.value("stats")?)?;
        let dram = DramStats::from_value(f.value("dram")?)?;
        let report = Self {
            workload,
            scheme,
            stats,
            dram,
            peak_bandwidth_gbps: f.f64("peak_bandwidth_gbps")?,
            bandwidth_utilization: f.f64("bandwidth_utilization")?,
        };
        f.finish()?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            accesses: 100,
            elapsed_ns: 50_000.0,
            tlb_misses: 30,
            llc_miss_data: 80,
            llc_miss_ptb: 20,
            cte_hits: 66,
            cte_misses: 34,
            cte_misses_after_tlb_miss: 30,
            l3_miss_latency_sum_ns: 5_300.0,
            ml2_reads: 4,
            llc_writebacks: 0,
            dram_used_bytes: 50,
            footprint_bytes: 100,
            ..Default::default()
        };
        assert!((s.tlb_miss_per_llc_miss() - 0.30).abs() < 1e-12);
        assert!((s.cte_miss_per_llc_miss() - 0.34).abs() < 1e-12);
        assert!((s.cte_hit_rate() - 0.66).abs() < 1e-12);
        assert!((s.cte_miss_after_tlb_fraction() - 30.0 / 34.0).abs() < 1e-12);
        assert!((s.avg_l3_miss_latency_ns() - 53.0).abs() < 1e-12);
        assert!((s.ml2_access_rate() - 0.04).abs() < 1e-12);
        assert!((s.effective_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let s = SimStats::default();
        assert_eq!(s.tlb_miss_per_llc_miss(), 0.0);
        assert_eq!(s.cte_hit_rate(), 0.0);
        assert_eq!(s.avg_l3_miss_latency_ns(), 0.0);
        assert_eq!(s.effective_ratio(), 1.0);
    }

    #[test]
    fn audit_flags_saturation_and_subset_violations() {
        assert!(SimStats::default().audit().is_ok());

        let saturated = SimStats { tlb_misses: u64::MAX, ..Default::default() };
        assert!(saturated.audit().unwrap_err().contains("tlb_misses"));

        let inverted =
            SimStats { cte_misses: 3, cte_misses_after_tlb_miss: 4, ..Default::default() };
        assert!(inverted.audit().unwrap_err().contains("cte_misses_after_tlb_miss"));

        let nan_time = SimStats { elapsed_ns: f64::NAN, ..Default::default() };
        assert!(nan_time.audit().unwrap_err().contains("elapsed_ns"));

        let over_resolved = SimStats {
            flips_injected: 5,
            corruptions_detected: 2,
            corruptions_corrected: 2,
            corruptions_uncorrectable: 1,
            ..Default::default()
        };
        assert!(over_resolved.audit().unwrap_err().contains("ladder outcomes"));

        let over_detected = SimStats {
            flips_injected: 1,
            corruptions_detected: 1,
            sdc_escapes: 1,
            ..Default::default()
        };
        assert!(over_detected.audit().unwrap_err().contains("exceed flips injected"));
    }

    #[test]
    fn integrity_metrics_derive_from_counters() {
        let s = SimStats {
            flips_injected: 10,
            corruptions_detected: 8,
            corruptions_corrected: 6,
            corruptions_uncorrectable: 2,
            sdc_escapes: 2,
            metadata_corruptions_detected: 3,
            frames_poisoned: 2,
            recovery_ns: 420.0,
            ..Default::default()
        };
        assert!(s.audit().is_ok());
        assert!((s.detection_coverage() - 0.8).abs() < 1e-12);
        assert!((s.sdc_escape_rate() - 0.2).abs() < 1e-12);
        assert!((s.recovery_rate() - 0.75).abs() < 1e-12);
        assert_eq!(SimStats::default().detection_coverage(), 0.0);
    }

    #[test]
    fn report_round_trips_exactly_through_value() {
        let report = RunReport {
            workload: "canneal",
            scheme: SchemeKind::Tmcc,
            stats: SimStats {
                accesses: 12_345,
                elapsed_ns: 6_789.125,
                tlb_hits: 11_000,
                tlb_misses: 1_345,
                cte_hits: 7,
                cte_misses: 9,
                cte_misses_after_tlb_miss: 5,
                l3_miss_latency_sum_ns: 0.1 + 0.2, // deliberately non-round bits
                dram_used_bytes: 1 << 30,
                footprint_bytes: 3 << 30,
                ..Default::default()
            },
            dram: DramStats::default(),
            peak_bandwidth_gbps: 102.4,
            bandwidth_utilization: 0.312_499_999_9,
        };
        let value = report.to_value();
        let decoded = RunReport::from_value(&value).expect("strict decode");
        assert_eq!(decoded.to_value(), value);
        // The workload name must be interned, not leaked, for known
        // profiles.
        assert!(std::ptr::eq(decoded.workload, report.workload) || decoded.workload == "canneal");

        // Strictness: a perturbed map must be rejected, not ignored.
        let mut entries = match &value {
            Value::Map(entries) => entries.clone(),
            _ => unreachable!(),
        };
        entries.push(("extra".to_string(), Value::Null));
        assert!(RunReport::from_value(&Value::Map(entries)).is_err());
    }
}
