//! Simulation counters and the per-run report.
//!
//! Every figure in the paper's evaluation reads off one or more of these
//! counters; the field docs say which.

use crate::config::SchemeKind;
use serde::Serialize;
use tmcc_sim_dram::DramStats;

/// How an LLC-miss read to an ML1 page was served under TMCC (Fig. 19).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ml1ReadOutcome {
    /// The CTE was in the CTE cache.
    CteCacheHit,
    /// Speculative parallel access with a correct embedded CTE.
    ParallelCorrect,
    /// Speculative parallel access whose embedded CTE was stale
    /// (re-accessed serially, Fig. 8c).
    ParallelMismatch,
    /// No embedded CTE available: serial CTE fetch then data fetch.
    SerialNoCte,
}

/// Raw counters accumulated during a run.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SimStats {
    /// Workload accesses executed (the performance work unit).
    pub accesses: u64,
    /// Core compute cycles between accesses.
    pub work_cycles: u64,
    /// Wall-clock simulated time, ns.
    pub elapsed_ns: f64,

    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB misses (each triggers a page walk).
    pub tlb_misses: u64,
    /// PTB fetches issued by the page walker (post-PWC).
    pub walker_fetches: u64,

    /// LLC misses for data/instruction blocks (Fig. 1 denominator).
    pub llc_miss_data: u64,
    /// LLC misses for page-walker PTB blocks.
    pub llc_miss_ptb: u64,
    /// Dirty LLC writebacks sent to the MC.
    pub llc_writebacks: u64,
    /// Sum of L3-miss service latencies (NoC + MC + DRAM), ns (Fig. 18).
    pub l3_miss_latency_sum_ns: f64,

    /// CTE cache hits on LLC-miss requests.
    pub cte_hits: u64,
    /// CTE cache misses on LLC-miss requests (Fig. 1).
    pub cte_misses: u64,
    /// CTE misses on requests related to a TLB miss (walker fetches and
    /// the data access right after a walk) — Fig. 5's numerator.
    pub cte_misses_after_tlb_miss: u64,

    /// Fig. 19: ML1 reads served with a CTE-cache hit.
    pub ml1_cte_hit: u64,
    /// Fig. 19: ML1 reads served by a correct speculative parallel access.
    pub ml1_parallel_correct: u64,
    /// Fig. 19: parallel accesses whose embedded CTE was stale.
    pub ml1_parallel_mismatch: u64,
    /// Fig. 19: ML1 reads with no embedded CTE (serial).
    pub ml1_serial: u64,

    /// LLC misses served from ML2 (Fig. 21 numerator).
    pub ml2_reads: u64,
    /// Sum of MC+DRAM service latencies for ML1-resident demand reads, ns.
    pub ml1_latency_sum_ns: f64,
    /// Sum of MC+DRAM service latencies for ML2-resident demand reads, ns.
    pub ml2_latency_sum_ns: f64,
    /// Pages migrated ML2 → ML1.
    pub ml2_to_ml1_migrations: u64,
    /// Pages migrated ML1 → ML2 (evictions).
    pub ml1_to_ml2_migrations: u64,
    /// Pages found incompressible at eviction.
    pub incompressible_evictions: u64,
    /// ns spent stalled on the full migration buffer.
    pub migration_stall_ns: f64,
    /// ML2 reads that had to yield to critical-pressure evictions (§VI's
    /// priority flip below the lower free-list threshold).
    pub ml2_crit_penalties: u64,

    /// Compresso page-overflow events (block writeback grew the page).
    pub page_overflows: u64,

    /// Runtime faults injected from the configured [`FaultPlan`]
    /// (crate::config::FaultPlan).
    pub faults_injected: u64,
    /// Evictions performed above the normal per-slot budget while the
    /// free list sat below the critical watermark or reclaim debt was
    /// outstanding.
    pub emergency_evictions: u64,
    /// Evictions that fell back to storing the page raw (uncompressed
    /// 4 KiB class) because its exact size class could not be carved.
    pub raw_fallbacks: u64,
    /// Simulated ns spent in degraded mode (free list below the critical
    /// watermark or unpaid reclaim debt).
    pub degraded_ns: f64,
    /// Times the scheme exited degraded mode (pressure fully relieved).
    pub recoveries: u64,

    /// Final DRAM bytes used by data + metadata.
    pub dram_used_bytes: u64,
    /// Uncompressed footprint bytes.
    pub footprint_bytes: u64,
}

impl SimStats {
    /// Total LLC misses (data + PTB) — the denominator of Figs. 1/2/5.
    pub fn llc_misses(&self) -> u64 {
        self.llc_miss_data + self.llc_miss_ptb
    }

    /// TLB misses per LLC miss (Fig. 1, left bars).
    pub fn tlb_miss_per_llc_miss(&self) -> f64 {
        ratio(self.tlb_misses, self.llc_misses())
    }

    /// CTE misses per LLC miss (Fig. 1, right bars).
    pub fn cte_miss_per_llc_miss(&self) -> f64 {
        ratio(self.cte_misses, self.llc_misses())
    }

    /// CTE cache hit rate over LLC-miss requests (Fig. 2 / Fig. 19).
    pub fn cte_hit_rate(&self) -> f64 {
        ratio(self.cte_hits, self.cte_hits + self.cte_misses)
    }

    /// Fraction of CTE misses that immediately follow TLB misses (Fig. 5).
    pub fn cte_miss_after_tlb_fraction(&self) -> f64 {
        ratio(self.cte_misses_after_tlb_miss, self.cte_misses)
    }

    /// Average L3-miss service latency, ns (Fig. 18).
    pub fn avg_l3_miss_latency_ns(&self) -> f64 {
        if self.llc_misses() == 0 {
            0.0
        } else {
            self.l3_miss_latency_sum_ns / self.llc_misses() as f64
        }
    }

    /// ML2 accesses per (LLC miss + writeback) — Fig. 21's metric.
    pub fn ml2_access_rate(&self) -> f64 {
        ratio(self.ml2_reads, self.llc_misses() + self.llc_writebacks)
    }

    /// Effective capacity ratio: footprint / DRAM used.
    pub fn effective_ratio(&self) -> f64 {
        if self.dram_used_bytes == 0 {
            1.0
        } else {
            self.footprint_bytes as f64 / self.dram_used_bytes as f64
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Everything a finished run reports.
///
/// Serializes deterministically: two runs with the same seed and fault
/// plan produce byte-identical JSON (the determinism regression tests
/// rely on this).
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Workload name.
    pub workload: &'static str,
    /// Scheme simulated.
    pub scheme: SchemeKind,
    /// Simulation counters (post-warmup).
    pub stats: SimStats,
    /// DRAM-level counters (post-warmup).
    pub dram: DramStats,
    /// Peak DRAM bandwidth of the configuration, GB/s.
    pub peak_bandwidth_gbps: f64,
    /// Bus utilization between first and last DRAM access.
    pub bandwidth_utilization: f64,
}

impl RunReport {
    /// The performance proxy: workload accesses retired per microsecond.
    /// The paper reports store instructions per cycle; both are linear in
    /// retirement rate, so normalized comparisons are identical.
    pub fn perf_accesses_per_us(&self) -> f64 {
        if self.stats.elapsed_ns == 0.0 {
            0.0
        } else {
            self.stats.accesses as f64 / (self.stats.elapsed_ns / 1000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            accesses: 100,
            elapsed_ns: 50_000.0,
            tlb_misses: 30,
            llc_miss_data: 80,
            llc_miss_ptb: 20,
            cte_hits: 66,
            cte_misses: 34,
            cte_misses_after_tlb_miss: 30,
            l3_miss_latency_sum_ns: 5_300.0,
            ml2_reads: 4,
            llc_writebacks: 0,
            dram_used_bytes: 50,
            footprint_bytes: 100,
            ..Default::default()
        };
        assert!((s.tlb_miss_per_llc_miss() - 0.30).abs() < 1e-12);
        assert!((s.cte_miss_per_llc_miss() - 0.34).abs() < 1e-12);
        assert!((s.cte_hit_rate() - 0.66).abs() < 1e-12);
        assert!((s.cte_miss_after_tlb_fraction() - 30.0 / 34.0).abs() < 1e-12);
        assert!((s.avg_l3_miss_latency_ns() - 53.0).abs() < 1e-12);
        assert!((s.ml2_access_rate() - 0.04).abs() < 1e-12);
        assert!((s.effective_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let s = SimStats::default();
        assert_eq!(s.tlb_miss_per_llc_miss(), 0.0);
        assert_eq!(s.cte_hit_rate(), 0.0);
        assert_eq!(s.avg_l3_miss_latency_ns(), 0.0);
        assert_eq!(s.effective_ratio(), 1.0);
    }
}
