//! Cooperative cancellation for in-flight simulations.
//!
//! A [`RunHandle`] is a cheap cloneable token attached to a
//! [`System`](crate::System) before `run`/`try_run`. Any thread may call
//! [`RunHandle::cancel`]; the simulation loop polls the flag every
//! [`CANCEL_CHECK_PERIOD`] accesses and bails out with
//! [`TmccError::Cancelled`](crate::TmccError::Cancelled). The bench
//! watchdog uses this to turn hung sweep points into typed timeout
//! failures instead of wedging the whole fleet.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How many accesses the simulation executes between cancellation polls.
/// A relaxed atomic load every 1 Ki accesses is invisible in profiles
/// while still bounding cancellation latency to microseconds of host
/// time.
pub const CANCEL_CHECK_PERIOD: u64 = 1024;

/// A cancellation token shared between a running [`System`](crate::System)
/// and whoever supervises it.
#[derive(Clone, Debug, Default)]
pub struct RunHandle {
    cancelled: Arc<AtomicBool>,
}

impl RunHandle {
    /// A fresh, un-cancelled handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_visible_through_clones() {
        let h = RunHandle::new();
        let h2 = h.clone();
        assert!(!h2.is_cancelled());
        h.cancel();
        assert!(h2.is_cancelled());
        h.cancel(); // idempotent
        assert!(h.is_cancelled());
    }
}
