//! The ML1 Recency List (paper §IV-B).
//!
//! A doubly linked list of the pages resident in ML1, hottest at the head,
//! coldest at the tail. To keep hardware cost low the paper updates it for
//! only **1 % of randomly chosen ML1 accesses**; victims for eviction to
//! ML2 come from the cold tail. Incompressible pages are *removed* from
//! the list (so ML1 stops trying to evict them) and re-enter with 1 %
//! probability after a writeback (§IV-B).
//!
//! The list is intrusive over a dense slab: page numbers index a `Vec` of
//! link slots directly, exactly as the hardware table indexes DRAM by page
//! frame, so every touch/unlink is two array loads — the per-access hash
//! lookups of the earlier `HashMap` representation are gone. Membership
//! lives in a succinct [`BitVec`] beside the link slab, which keeps each
//! slot at exactly two 32-bit links (8 B instead of a padded 12 B) at
//! datacenter-scale page counts. Callers hand in physical page numbers
//! from the simulator's dense data-page range; the slab grows to the
//! highest page ever tracked.
//!
//! The list costs real DRAM — 0.4 % of capacity (§V-A6) — accounted by
//! [`RecencyList::dram_overhead_bytes`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tmcc_types::addr::Ppn;
use tmcc_types::bitvec::BitVec;

/// The paper's hardware sampling probability: 1 % of ML1 accesses update
/// the list (§IV-B). Hardware runs billions of accesses, so 1 % sampling
/// converges; scaled-down simulations should use
/// [`RecencyList::with_probability`] to keep the *list quality* (samples
/// per resident page) comparable — see `SystemConfig::recency_sample`.
pub const SAMPLE_PROBABILITY: f64 = 0.01;

/// Sentinel link value ("no neighbour").
const NIL: u32 = u32::MAX;

/// One slab slot: intrusive links. Membership is tracked separately in
/// the `present` bitmap so the slot packs into 8 bytes.
#[derive(Debug, Clone, Copy)]
struct Slot {
    prev: u32, // towards head
    next: u32, // towards tail
}

impl Slot {
    const EMPTY: Slot = Slot { prev: NIL, next: NIL };
}

/// The recency list.
///
/// # Examples
///
/// ```
/// use tmcc::RecencyList;
/// use tmcc_types::addr::Ppn;
///
/// let mut rl = RecencyList::new(7);
/// rl.insert_hot(Ppn::new(1));
/// rl.insert_hot(Ppn::new(2));
/// assert_eq!(rl.coldest(), Some(Ppn::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct RecencyList {
    /// Link slots indexed directly by page number (dense data-page range).
    slots: Vec<Slot>,
    /// Membership bitmap, indexed like `slots`.
    present: BitVec,
    head: u32, // hottest (NIL when empty)
    tail: u32, // coldest (NIL when empty)
    len: usize,
    rng: SmallRng,
    sample_prob: f64,
}

impl RecencyList {
    /// Creates an empty list with the paper's 1 % sampling.
    pub fn new(seed: u64) -> Self {
        Self::with_probability(seed, SAMPLE_PROBABILITY)
    }

    /// Creates an empty list with a custom sampling probability (used by
    /// scaled-down simulations to keep samples-per-page comparable to a
    /// full-length hardware run).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < sample_prob <= 1`.
    pub fn with_probability(seed: u64, sample_prob: f64) -> Self {
        assert!(sample_prob > 0.0 && sample_prob <= 1.0, "sampling probability must be in (0, 1]");
        Self {
            slots: Vec::new(),
            present: BitVec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            rng: SmallRng::seed_from_u64(seed ^ 0xDECAF),
            sample_prob,
        }
    }

    /// Slab index of `page`.
    ///
    /// # Panics
    ///
    /// Panics if the page number cannot index the slab (the simulator's
    /// trackable pages are dense small indices by construction).
    #[inline]
    fn key(page: Ppn) -> usize {
        let raw = page.raw();
        assert!(raw < NIL as u64, "page {raw:#x} out of the recency slab's dense index range");
        raw as usize
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list tracks nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `page` is tracked.
    pub fn contains(&self, page: Ppn) -> bool {
        let key = Self::key(page);
        key < self.present.len() && self.present.get(key)
    }

    /// Unconditionally inserts/moves `page` to the hot end.
    pub fn insert_hot(&mut self, page: Ppn) {
        let key = Self::key(page);
        if key >= self.slots.len() {
            self.slots.resize(key + 1, Slot::EMPTY);
        }
        self.present.grow(key + 1);
        if self.present.get(key) {
            self.unlink(key as u32);
            self.len -= 1;
        }
        let old_head = self.head;
        self.slots[key] = Slot { prev: NIL, next: old_head };
        self.present.set(key);
        if old_head != NIL {
            self.slots[old_head as usize].prev = key as u32;
        }
        self.head = key as u32;
        if self.tail == NIL {
            self.tail = key as u32;
        }
        self.len += 1;
    }

    /// Called on every ML1 access: with 1 % probability, moves the page to
    /// the hot end (inserting it if untracked). Returns whether the update
    /// fired (for stats).
    pub fn on_access(&mut self, page: Ppn) -> bool {
        if self.rng.gen::<f64>() < self.sample_prob {
            self.insert_hot(page);
            true
        } else {
            false
        }
    }

    /// Called when a writeback hits a page marked incompressible: with 1 %
    /// probability the page re-enters the list (§IV-B: "ML1 adds an
    /// incompressible page back to the Recency List at 1% probability
    /// after a writeback"). Returns whether it re-entered.
    pub fn on_incompressible_writeback(&mut self, page: Ppn) -> bool {
        if self.rng.gen::<f64>() < self.sample_prob {
            self.insert_hot(page);
            true
        } else {
            false
        }
    }

    /// The coldest tracked page.
    pub fn coldest(&self) -> Option<Ppn> {
        if self.tail == NIL {
            None
        } else {
            Some(Ppn::new(self.tail as u64))
        }
    }

    /// Removes and returns the coldest page (the eviction victim).
    pub fn pop_coldest(&mut self) -> Option<Ppn> {
        let t = self.tail;
        if t == NIL {
            return None;
        }
        self.unlink(t);
        self.present.clear(t as usize);
        self.len -= 1;
        Some(Ppn::new(t as u64))
    }

    /// Removes `page` (e.g., when found incompressible, or migrated away).
    pub fn remove(&mut self, page: Ppn) -> bool {
        let key = Self::key(page);
        if key < self.present.len() && self.present.get(key) {
            self.unlink(key as u32);
            self.present.clear(key);
            self.len -= 1;
            true
        } else {
            false
        }
    }

    fn unlink(&mut self, key: u32) {
        let node = self.slots[key as usize];
        debug_assert!(self.present.get(key as usize), "unlinking an untracked slot");
        match node.prev {
            NIL => self.head = node.next,
            p => self.slots[p as usize].next = node.next,
        }
        match node.next {
            NIL => self.tail = node.prev,
            n => self.slots[n as usize].prev = node.prev,
        }
    }

    /// Pages from coldest to hottest (diagnostics; O(n)).
    pub fn cold_to_hot(&self) -> Vec<Ppn> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.tail;
        while cur != NIL {
            out.push(Ppn::new(cur as u64));
            cur = self.slots[cur as usize].prev;
        }
        out
    }

    /// DRAM cost of the list for a machine with `total_pages` ML1-capable
    /// pages: two 8-byte pointers + an 8-byte PPN per element ≈ 0.4 % of
    /// DRAM (§V-A6).
    pub fn dram_overhead_bytes(total_pages: u64) -> u64 {
        total_pages * 16
    }

    /// Host heap bytes the list occupies (link slab + membership bitmap).
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot>() + self.present.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_lru() {
        let mut rl = RecencyList::new(1);
        for p in 1..=4u64 {
            rl.insert_hot(Ppn::new(p));
        }
        assert_eq!(rl.cold_to_hot(), vec![Ppn::new(1), Ppn::new(2), Ppn::new(3), Ppn::new(4)]);
        rl.insert_hot(Ppn::new(1)); // re-touch the coldest
        assert_eq!(rl.coldest(), Some(Ppn::new(2)));
    }

    #[test]
    fn pop_coldest_drains_in_order() {
        let mut rl = RecencyList::new(1);
        for p in 0..5u64 {
            rl.insert_hot(Ppn::new(p));
        }
        let drained: Vec<u64> = std::iter::from_fn(|| rl.pop_coldest().map(|p| p.raw())).collect();
        assert_eq!(drained, [0, 1, 2, 3, 4]);
        assert!(rl.is_empty());
    }

    #[test]
    fn remove_middle_keeps_links() {
        let mut rl = RecencyList::new(1);
        for p in 0..3u64 {
            rl.insert_hot(Ppn::new(p));
        }
        assert!(rl.remove(Ppn::new(1)));
        assert_eq!(rl.cold_to_hot(), vec![Ppn::new(0), Ppn::new(2)]);
        assert!(!rl.remove(Ppn::new(1)));
    }

    #[test]
    fn sampling_rate_is_about_one_percent() {
        let mut rl = RecencyList::new(99);
        let mut fired = 0;
        for i in 0..100_000u64 {
            if rl.on_access(Ppn::new(i % 64)) {
                fired += 1;
            }
        }
        let rate = fired as f64 / 100_000.0;
        assert!((rate - 0.01).abs() < 0.004, "sample rate {rate}");
    }

    #[test]
    fn single_element_list() {
        let mut rl = RecencyList::new(1);
        rl.insert_hot(Ppn::new(9));
        assert_eq!(rl.coldest(), Some(Ppn::new(9)));
        assert_eq!(rl.pop_coldest(), Some(Ppn::new(9)));
        assert_eq!(rl.pop_coldest(), None);
        assert_eq!(rl.coldest(), None);
    }

    #[test]
    fn reinsert_after_pop_is_tracked_again() {
        let mut rl = RecencyList::new(1);
        rl.insert_hot(Ppn::new(3));
        rl.insert_hot(Ppn::new(4));
        assert_eq!(rl.pop_coldest(), Some(Ppn::new(3)));
        assert!(!rl.contains(Ppn::new(3)));
        rl.insert_hot(Ppn::new(3));
        assert!(rl.contains(Ppn::new(3)));
        assert_eq!(rl.cold_to_hot(), vec![Ppn::new(4), Ppn::new(3)]);
    }

    #[test]
    fn overhead_is_0_4_percent() {
        // 16 B per 4096 B page = 0.39 %.
        let pages = 1_000_000u64;
        let frac = RecencyList::dram_overhead_bytes(pages) as f64 / (pages * 4096) as f64;
        assert!((frac - 0.004).abs() < 0.001);
    }
}
