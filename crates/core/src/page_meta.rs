//! Packed per-page metadata for the two-level schemes.
//!
//! The schemes used to keep a boxed-struct [`PageSlab`] entry per page
//! (stored CTE + placement enum + flags, ~40 B with the `Option`
//! discriminant). At datacenter-scale footprints that dominates host
//! memory, so [`PageMetaStore`] packs the same state into one 64-bit word
//! per page plus a residency bit and a 32-bit dirty epoch (~12.2 B/page):
//!
//! ```text
//! bit  0      level (0 = ML1, 1 = ML2)
//! bit  1      pinned (page-table pages never migrate)
//! bit  2      incompressible (sticky across migrations, §IV-B)
//! bits 3..16  ML2: compressed bytes (≤ 4096)
//! bits 16..20 ML2: size-class index
//! bits 20..27 ML2: slot within the super-chunk (< 128)
//! bits 32..64 ML1: frame number / ML2: super-chunk id
//! ```
//!
//! The stored CTE is gone entirely: a page's CTE is *derivable* from its
//! placement (`Cte::new(frame, level)` plus the incompressible flag —
//! the schemes never populate the pair vector), so the scheme
//! reconstructs it on demand instead of keeping an 8-byte mirror in sync.
//!
//! Layout and addressing mirror [`PageSlab`]: two dense regions (data
//! pages keyed by PPN, table pages keyed by PPN − `table_base`) indexed
//! arithmetically through the same [`PageId`] handle, with residency
//! tracked by a succinct [`BitVec`] instead of `Option` discriminants.
//!
//! [`PageSlab`]: crate::page_slab::PageSlab

use crate::free_list::SubChunk;
use crate::page_slab::{PageId, TABLE_BIT};
use tmcc_types::bitvec::BitVec;

/// Where a page's bytes currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Uncompressed, in a 4 KiB ML1 frame.
    Ml1 {
        /// The backing frame number.
        frame: u32,
    },
    /// Deflate-compressed, in an ML2 sub-chunk.
    Ml2 {
        /// The backing sub-chunk.
        sub: SubChunk,
        /// Compressed size actually stored, bytes.
        comp_bytes: u32,
    },
}

/// Decoded per-page state, returned by value — the packed word is the
/// single source of truth; mutate through the store's setters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageInfo {
    /// Where the page's bytes live.
    pub place: Placement,
    /// Content epoch, bumped when a writeback re-draws compressibility.
    pub dirty_epoch: u32,
    /// Page-table pages are pinned in ML1 and never migrate.
    pub pinned: bool,
    /// Flagged when an eviction found the page unfit for any ML2 class;
    /// sticky even across later migrations.
    pub incompressible: bool,
}

const LEVEL_BIT: u64 = 1 << 0;
const PINNED_BIT: u64 = 1 << 1;
const INCOMPRESSIBLE_BIT: u64 = 1 << 2;
const COMP_SHIFT: u32 = 3;
const COMP_MASK: u64 = (1 << 13) - 1;
const CLASS_SHIFT: u32 = 16;
const CLASS_MASK: u64 = (1 << 4) - 1;
const SLOT_SHIFT: u32 = 20;
const SLOT_MASK: u64 = (1 << 7) - 1;
const HI_SHIFT: u32 = 32;

/// Packs `info`'s placement and flags into the per-page word (the dirty
/// epoch lives in its own sidecar array).
fn encode(info: &PageInfo) -> u64 {
    let mut w = 0u64;
    if info.pinned {
        w |= PINNED_BIT;
    }
    if info.incompressible {
        w |= INCOMPRESSIBLE_BIT;
    }
    match info.place {
        Placement::Ml1 { frame } => w |= (frame as u64) << HI_SHIFT,
        Placement::Ml2 { sub, comp_bytes } => {
            debug_assert!(comp_bytes as u64 <= COMP_MASK, "comp_bytes {comp_bytes} overflows");
            debug_assert!(sub.class as u64 <= CLASS_MASK, "class {} overflows", sub.class);
            debug_assert!(sub.slot as u64 <= SLOT_MASK, "slot {} overflows", sub.slot);
            w |= LEVEL_BIT
                | ((comp_bytes as u64 & COMP_MASK) << COMP_SHIFT)
                | ((sub.class as u64 & CLASS_MASK) << CLASS_SHIFT)
                | ((sub.slot as u64 & SLOT_MASK) << SLOT_SHIFT)
                | ((sub.super_id as u64) << HI_SHIFT);
        }
    }
    w
}

/// Inverse of [`encode`].
fn decode(w: u64, dirty_epoch: u32) -> PageInfo {
    let place = if w & LEVEL_BIT == 0 {
        Placement::Ml1 { frame: (w >> HI_SHIFT) as u32 }
    } else {
        Placement::Ml2 {
            sub: SubChunk {
                class: (w >> CLASS_SHIFT & CLASS_MASK) as usize,
                super_id: (w >> HI_SHIFT) as u32,
                slot: (w >> SLOT_SHIFT & SLOT_MASK) as u8,
            },
            comp_bytes: (w >> COMP_SHIFT & COMP_MASK) as u32,
        }
    };
    PageInfo {
        place,
        dirty_epoch,
        pinned: w & PINNED_BIT != 0,
        incompressible: w & INCOMPRESSIBLE_BIT != 0,
    }
}

/// One dense region: residency bitmap plus parallel packed-word and
/// dirty-epoch arrays.
#[derive(Debug, Clone)]
struct Region {
    present: BitVec,
    words: Vec<u64>,
    epochs: Vec<u32>,
}

impl Region {
    fn new() -> Self {
        Self { present: BitVec::new(), words: Vec::new(), epochs: Vec::new() }
    }

    fn ensure(&mut self, idx: usize) {
        if idx >= self.words.len() {
            self.words.resize(idx + 1, 0);
            self.epochs.resize(idx + 1, 0);
        }
        self.present.grow(idx + 1);
    }

    fn get(&self, idx: usize) -> Option<PageInfo> {
        (idx < self.present.len() && self.present.get(idx))
            .then(|| decode(self.words[idx], self.epochs[idx]))
    }

    fn heap_bytes(&self) -> usize {
        self.present.heap_bytes()
            + self.words.capacity() * std::mem::size_of::<u64>()
            + self.epochs.capacity() * std::mem::size_of::<u32>()
    }
}

/// Packed per-page state keyed by dense PPN, split into the two dense
/// regions of the simulator's physical layout (see [`PageSlab`]).
///
/// [`PageSlab`]: crate::page_slab::PageSlab
///
/// # Examples
///
/// ```
/// use tmcc::page_meta::{PageInfo, PageMetaStore, Placement};
///
/// let mut pages = PageMetaStore::new(1 << 26);
/// pages.insert(
///     7,
///     PageInfo {
///         place: Placement::Ml1 { frame: 42 },
///         dirty_epoch: 0,
///         pinned: false,
///         incompressible: false,
///     },
/// );
/// let id = pages.id_of(7).unwrap();
/// assert_eq!(pages.get_id(id).unwrap().place, Placement::Ml1 { frame: 42 });
/// ```
#[derive(Debug, Clone)]
pub struct PageMetaStore {
    /// Data-page region: index = PPN (PPNs below `table_base`).
    data: Region,
    /// Table-page region: index = PPN − `table_base`.
    table: Region,
    /// First PPN of the table region.
    table_base: u64,
    len: usize,
}

impl PageMetaStore {
    /// Creates an empty store for a physical layout whose table pages
    /// start at `table_base`.
    pub fn new(table_base: u64) -> Self {
        Self { data: Region::new(), table: Region::new(), table_base, len: 0 }
    }

    /// Derives the compact handle for `ppn` — pure arithmetic, no
    /// hashing. `None` when the PPN cannot be an index (outside both
    /// dense regions' representable range).
    #[inline]
    pub fn id_of(&self, ppn: u64) -> Option<PageId> {
        if ppn < self.table_base {
            (ppn < TABLE_BIT as u64).then(|| PageId::from_raw(ppn as u32))
        } else {
            let off = ppn - self.table_base;
            (off < TABLE_BIT as u64).then(|| PageId::from_raw(off as u32 | TABLE_BIT))
        }
    }

    #[inline]
    fn region(&self, id: PageId) -> &Region {
        if id.is_table() {
            &self.table
        } else {
            &self.data
        }
    }

    #[inline]
    fn region_mut(&mut self, id: PageId) -> &mut Region {
        if id.is_table() {
            &mut self.table
        } else {
            &mut self.data
        }
    }

    /// Number of pages with state.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The decoded state of the page behind a handle.
    #[inline]
    pub fn get_id(&self, id: PageId) -> Option<PageInfo> {
        self.region(id).get(id.index())
    }

    /// The decoded state of page `ppn`.
    #[inline]
    pub fn get(&self, ppn: u64) -> Option<PageInfo> {
        self.get_id(self.id_of(ppn)?)
    }

    /// Inserts (or replaces) state for page `ppn`, allocating its slot on
    /// first touch. Returns `true` when the page was previously absent.
    ///
    /// # Panics
    ///
    /// Panics if `ppn` lies outside both dense regions.
    pub fn insert(&mut self, ppn: u64, info: PageInfo) -> bool {
        let id = self
            .id_of(ppn)
            .unwrap_or_else(|| panic!("page {ppn:#x} outside the store's dense regions"));
        let idx = id.index();
        let region = self.region_mut(id);
        region.ensure(idx);
        region.words[idx] = encode(&info);
        region.epochs[idx] = info.dirty_epoch;
        let was_absent = region.present.set(idx);
        if was_absent {
            self.len += 1;
        }
        was_absent
    }

    /// Re-homes the page behind `id`, preserving its flags and epoch.
    /// Returns `false` when no such page has state.
    #[inline]
    pub fn set_place(&mut self, id: PageId, place: Placement) -> bool {
        let idx = id.index();
        let region = self.region_mut(id);
        if idx >= region.present.len() || !region.present.get(idx) {
            return false;
        }
        let mut info = decode(region.words[idx], 0);
        info.place = place;
        region.words[idx] = encode(&info);
        true
    }

    /// Sets or clears the sticky incompressible flag. Returns `false`
    /// when no such page has state.
    #[inline]
    pub fn set_incompressible(&mut self, id: PageId, flag: bool) -> bool {
        let idx = id.index();
        let region = self.region_mut(id);
        if idx >= region.present.len() || !region.present.get(idx) {
            return false;
        }
        if flag {
            region.words[idx] |= INCOMPRESSIBLE_BIT;
        } else {
            region.words[idx] &= !INCOMPRESSIBLE_BIT;
        }
        true
    }

    /// Advances the page's dirty epoch by one. Returns `false` when no
    /// such page has state.
    #[inline]
    pub fn bump_dirty_epoch(&mut self, id: PageId) -> bool {
        let idx = id.index();
        let region = self.region_mut(id);
        if idx >= region.present.len() || !region.present.get(idx) {
            return false;
        }
        region.epochs[idx] += 1;
        true
    }

    /// Iterates `(ppn, state)` pairs: the data region in PPN order, then
    /// the table region.
    pub fn iter(&self) -> impl Iterator<Item = (u64, PageInfo)> + '_ {
        let base = self.table_base;
        self.data
            .present
            .iter_ones()
            .map(move |i| (i as u64, decode(self.data.words[i], self.data.epochs[i])))
            .chain(
                self.table.present.iter_ones().map(move |i| {
                    (base + i as u64, decode(self.table.words[i], self.table.epochs[i]))
                }),
            )
    }

    /// Host heap bytes owned by the store (capacity, not length) — the
    /// footprint experiments report this per simulated GB.
    pub fn heap_bytes(&self) -> usize {
        self.data.heap_bytes() + self.table.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 1 << 26;

    fn ml1(frame: u32) -> PageInfo {
        PageInfo {
            place: Placement::Ml1 { frame },
            dirty_epoch: 0,
            pinned: false,
            incompressible: false,
        }
    }

    #[test]
    fn insert_get_both_regions() {
        let mut s = PageMetaStore::new(BASE);
        assert!(s.insert(5, ml1(50)));
        assert!(s.insert(BASE + 3, PageInfo { pinned: true, ..ml1(33) }));
        assert_eq!(s.get(5).unwrap().place, Placement::Ml1 { frame: 50 });
        assert!(s.get(BASE + 3).unwrap().pinned);
        assert!(s.get(6).is_none());
        assert!(s.get(BASE + 4).is_none());
        assert_eq!(s.len(), 2);
        assert!(!s.insert(5, ml1(51)), "replace counts once");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(5).unwrap().place, Placement::Ml1 { frame: 51 });
    }

    #[test]
    fn packed_word_roundtrips_extremes() {
        let mut s = PageMetaStore::new(BASE);
        let info = PageInfo {
            place: Placement::Ml2 {
                sub: SubChunk { class: 10, super_id: u32::MAX, slot: 127 },
                comp_bytes: 4096,
            },
            dirty_epoch: 77,
            pinned: true,
            incompressible: true,
        };
        s.insert(0, info);
        assert_eq!(s.get(0).unwrap(), info);
        let ml1_max = PageInfo {
            place: Placement::Ml1 { frame: u32::MAX },
            dirty_epoch: u32::MAX,
            pinned: false,
            incompressible: true,
        };
        s.insert(1, ml1_max);
        assert_eq!(s.get(1).unwrap(), ml1_max);
    }

    #[test]
    fn incompressible_is_sticky_across_set_place() {
        let mut s = PageMetaStore::new(BASE);
        s.insert(9, ml1(4));
        let id = s.id_of(9).unwrap();
        assert!(s.set_incompressible(id, true));
        // Migrate down and back up; the flag must survive both hops.
        let sub = SubChunk { class: 3, super_id: 17, slot: 5 };
        assert!(s.set_place(id, Placement::Ml2 { sub, comp_bytes: 900 }));
        assert!(s.get_id(id).unwrap().incompressible);
        assert!(s.set_place(id, Placement::Ml1 { frame: 8 }));
        let info = s.get_id(id).unwrap();
        assert!(info.incompressible);
        assert_eq!(info.place, Placement::Ml1 { frame: 8 });
    }

    #[test]
    fn dirty_epoch_survives_set_place() {
        let mut s = PageMetaStore::new(BASE);
        s.insert(2, ml1(1));
        let id = s.id_of(2).unwrap();
        assert!(s.bump_dirty_epoch(id));
        assert!(s.bump_dirty_epoch(id));
        assert!(s.set_place(id, Placement::Ml1 { frame: 3 }));
        assert_eq!(s.get_id(id).unwrap().dirty_epoch, 2);
    }

    #[test]
    fn setters_on_absent_pages_report_failure() {
        let mut s = PageMetaStore::new(BASE);
        s.insert(0, ml1(0));
        let absent = s.id_of(40).unwrap();
        assert!(!s.set_place(absent, Placement::Ml1 { frame: 1 }));
        assert!(!s.set_incompressible(absent, true));
        assert!(!s.bump_dirty_epoch(absent));
    }

    #[test]
    fn iter_is_dense_ppn_order() {
        let mut s = PageMetaStore::new(BASE);
        s.insert(BASE + 1, ml1(4));
        s.insert(2, ml1(2));
        s.insert(0, ml1(1));
        s.insert(BASE, ml1(3));
        let ppns: Vec<u64> = s.iter().map(|(p, _)| p).collect();
        assert_eq!(ppns, vec![0, 2, BASE, BASE + 1]);
    }

    #[test]
    fn out_of_range_ppn_has_no_id() {
        let s = PageMetaStore::new(BASE);
        assert!(s.id_of(BASE - 1).is_some());
        assert!(s.id_of(BASE + (1 << 31)).is_none());
    }

    #[test]
    fn heap_cost_is_near_twelve_bytes_per_page() {
        let mut s = PageMetaStore::new(BASE);
        for i in 0..10_000u64 {
            s.insert(i, ml1(i as u32));
        }
        // Word + epoch + residency bit is ~12.2 B/page; capacity-doubling
        // growth can at most double that.
        assert!(s.heap_bytes() < 10_000 * 13 * 2, "heap {} too large", s.heap_bytes());
    }
}
