//! System configuration.

use serde::Serialize;
use tmcc_sim_dram::{DramConfig, InterleavePolicy};
use tmcc_sim_mem::{CteCacheConfig, HierarchyConfig};
use tmcc_workloads::WorkloadProfile;

/// Which memory-compression scheme the memory controller implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SchemeKind {
    /// A conventional memory system (no compression, no CTEs).
    NoCompression,
    /// Compresso-style block-level compression for capacity (§III).
    Compresso,
    /// The barebone OS-inspired two-level design of §IV: page-level CTEs,
    /// serial CTE fetches, IBM-speed ML2 Deflate.
    OsInspired,
    /// Full TMCC (§V): embedded CTEs + memory-specialized Deflate.
    Tmcc,
}

impl SchemeKind {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::NoCompression => "no-compression",
            SchemeKind::Compresso => "compresso",
            SchemeKind::OsInspired => "os-inspired",
            SchemeKind::Tmcc => "tmcc",
        }
    }
}

/// Optimization toggles separating TMCC from the barebone OS-inspired
/// design — the split the paper quantifies in Fig. 20.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmccToggles {
    /// §V-A: compressed PTBs with embedded CTEs and speculative parallel
    /// DRAM access (the ML1 optimization).
    pub embedded_ctes: bool,
    /// §V-B: memory-specialized Deflate instead of IBM-speed Deflate for
    /// ML2 (the ML2 optimization).
    pub fast_deflate: bool,
}

impl TmccToggles {
    /// Both optimizations on (full TMCC).
    pub fn full() -> Self {
        Self {
            embedded_ctes: true,
            fast_deflate: true,
        }
    }

    /// Both off (barebone OS-inspired design).
    pub fn none() -> Self {
        Self {
            embedded_ctes: false,
            fast_deflate: false,
        }
    }

    /// Only the ML1 optimization (Fig. 20's "ML1 opt").
    pub fn ml1_only() -> Self {
        Self {
            embedded_ctes: true,
            fast_deflate: false,
        }
    }

    /// Only the ML2 optimization (Fig. 20's "ML2 opt").
    pub fn ml2_only() -> Self {
        Self {
            embedded_ctes: false,
            fast_deflate: true,
        }
    }
}

/// Full configuration of one simulated system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The workload to run.
    pub workload: WorkloadProfile,
    /// The compression scheme.
    pub scheme: SchemeKind,
    /// Optimization toggles for the two-level schemes (ignored by
    /// NoCompression / Compresso). Derived from `scheme` by default.
    pub toggles: TmccToggles,
    /// RNG seed for the run.
    pub seed: u64,
    /// DRAM the workload's data may occupy, bytes. `None` sizes DRAM to
    /// the uncompressed footprint (no capacity pressure). Two-level
    /// schemes migrate pages to ML2 until they fit.
    pub dram_budget_bytes: Option<u64>,
    /// TLB entries (Table III: 2048).
    pub tlb_entries: usize,
    /// CTE cache geometry; defaults per scheme (Table III).
    pub cte_cache: CteCacheConfig,
    /// Map 2 MiB huge pages (§VIII sensitivity).
    pub huge_pages: bool,
    /// DRAM timing/geometry.
    pub dram: DramConfig,
    /// Interleaving policy.
    pub interleave: InterleavePolicy,
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Number of interleaved logical access streams (threads).
    pub cores: usize,
    /// Accesses used to warm caches/TLB/placement before measuring.
    pub warmup_accesses: u64,
    /// Recency-list sampling probability. The hardware value is 1 %
    /// (§IV-B) over billions of accesses; scaled simulations default to
    /// 15 % so the list accumulates a comparable number of samples per
    /// resident page within the simulated window.
    pub recency_sample: f64,
}

impl SystemConfig {
    /// A paper-default configuration for the named workload under the
    /// given scheme. Returns `None` for unknown workload names.
    pub fn for_workload(name: &str, scheme: SchemeKind) -> Option<Self> {
        let workload = WorkloadProfile::by_name(name)?;
        Some(Self::new(workload, scheme))
    }

    /// A paper-default configuration for a workload profile.
    pub fn new(workload: WorkloadProfile, scheme: SchemeKind) -> Self {
        let cte_cache = match scheme {
            SchemeKind::Compresso => CteCacheConfig::compresso(),
            _ => CteCacheConfig::tmcc(),
        };
        let toggles = match scheme {
            SchemeKind::Tmcc => TmccToggles::full(),
            _ => TmccToggles::none(),
        };
        Self {
            workload,
            scheme,
            toggles,
            seed: 0xC0FFEE,
            dram_budget_bytes: None,
            tlb_entries: 2048,
            cte_cache,
            huge_pages: false,
            dram: DramConfig::default(),
            interleave: InterleavePolicy::coarse_mc(),
            hierarchy: HierarchyConfig::default(),
            cores: 4,
            warmup_accesses: 60_000,
            recency_sample: 0.15,
        }
    }

    /// Sets the DRAM budget (builder style).
    pub fn with_budget(mut self, bytes: u64) -> Self {
        self.dram_budget_bytes = Some(bytes);
        self
    }

    /// Sets the optimization toggles (builder style).
    pub fn with_toggles(mut self, toggles: TmccToggles) -> Self {
        self.toggles = toggles;
        self
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The workload's uncompressed footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.workload.sim_pages * 4096
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_defaults() {
        let c = SystemConfig::for_workload("mcf", SchemeKind::Compresso).unwrap();
        assert_eq!(c.cte_cache.pages_per_line, 1);
        let t = SystemConfig::for_workload("mcf", SchemeKind::Tmcc).unwrap();
        assert_eq!(t.cte_cache.pages_per_line, 8);
        assert!(t.toggles.embedded_ctes && t.toggles.fast_deflate);
        let b = SystemConfig::for_workload("mcf", SchemeKind::OsInspired).unwrap();
        assert!(!b.toggles.embedded_ctes && !b.toggles.fast_deflate);
    }

    #[test]
    fn unknown_workload_is_none() {
        assert!(SystemConfig::for_workload("nope", SchemeKind::Tmcc).is_none());
    }

    #[test]
    fn builders_compose() {
        let c = SystemConfig::for_workload("bfs", SchemeKind::Tmcc)
            .unwrap()
            .with_budget(1 << 27)
            .with_seed(9);
        assert_eq!(c.dram_budget_bytes, Some(1 << 27));
        assert_eq!(c.seed, 9);
    }
}
