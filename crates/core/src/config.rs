//! System configuration.

use serde::Serialize;
use tmcc_sim_dram::{DramConfig, InterleavePolicy};
use tmcc_sim_mem::{CteCacheConfig, HierarchyConfig};
use tmcc_workloads::WorkloadProfile;

/// Which memory-compression scheme the memory controller implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SchemeKind {
    /// A conventional memory system (no compression, no CTEs).
    NoCompression,
    /// Compresso-style block-level compression for capacity (§III).
    Compresso,
    /// The barebone OS-inspired two-level design of §IV: page-level CTEs,
    /// serial CTE fetches, IBM-speed ML2 Deflate.
    OsInspired,
    /// Full TMCC (§V): embedded CTEs + memory-specialized Deflate.
    Tmcc,
}

impl SchemeKind {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::NoCompression => "no-compression",
            SchemeKind::Compresso => "compresso",
            SchemeKind::OsInspired => "os-inspired",
            SchemeKind::Tmcc => "tmcc",
        }
    }

    /// Inverse of the derive's fieldless-enum serialization (the variant
    /// name as a string). Used by the sweep journal's report decoder.
    pub fn from_variant(s: &str) -> Option<Self> {
        match s {
            "NoCompression" => Some(SchemeKind::NoCompression),
            "Compresso" => Some(SchemeKind::Compresso),
            "OsInspired" => Some(SchemeKind::OsInspired),
            "Tmcc" => Some(SchemeKind::Tmcc),
            _ => None,
        }
    }
}

/// Optimization toggles separating TMCC from the barebone OS-inspired
/// design — the split the paper quantifies in Fig. 20.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmccToggles {
    /// §V-A: compressed PTBs with embedded CTEs and speculative parallel
    /// DRAM access (the ML1 optimization).
    pub embedded_ctes: bool,
    /// §V-B: memory-specialized Deflate instead of IBM-speed Deflate for
    /// ML2 (the ML2 optimization).
    pub fast_deflate: bool,
}

impl TmccToggles {
    /// Both optimizations on (full TMCC).
    pub fn full() -> Self {
        Self { embedded_ctes: true, fast_deflate: true }
    }

    /// Both off (barebone OS-inspired design).
    pub fn none() -> Self {
        Self { embedded_ctes: false, fast_deflate: false }
    }

    /// Only the ML1 optimization (Fig. 20's "ML1 opt").
    pub fn ml1_only() -> Self {
        Self { embedded_ctes: true, fast_deflate: false }
    }

    /// Only the ML2 optimization (Fig. 20's "ML2 opt").
    pub fn ml2_only() -> Self {
        Self { embedded_ctes: false, fast_deflate: true }
    }
}

/// A runtime fault to inject, scheduled by access count.
///
/// Faults model operational shocks a deployed compressed-memory system
/// must survive: ballooning (the hypervisor reclaiming or returning DRAM
/// mid-run), metadata-cache flush storms (e.g. after a context-switch
/// flood), stale-translation storms, a degraded migration engine, and
/// content shifts that spike incompressibility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Balloon deflation: permanently remove `frames` 4 KiB frames from
    /// the scheme's DRAM budget. Frames that are not free at injection
    /// time become *reclaim debt* the scheme pays down through
    /// (emergency) evictions.
    ShrinkBudget {
        /// Frames to remove.
        frames: u32,
    },
    /// Balloon inflation: return `frames` fresh 4 KiB frames to the
    /// budget (paying down any outstanding reclaim debt first).
    GrowBudget {
        /// Frames to add.
        frames: u32,
    },
    /// Flush the CTE cache and CTE buffer (every cached translation is
    /// lost at once).
    CteFlushStorm,
    /// Treat the next `count` embedded-CTE lookups as stale, forcing the
    /// verify-and-reaccess path (Fig. 8c) regardless of actual state.
    StaleEmbeddings {
        /// Number of lookups to poison.
        count: u64,
    },
    /// Shrink the migration buffer to `entries` in-flight migrations
    /// (min 1); models a degraded migration engine.
    ShrinkMigrationBuffer {
        /// New capacity.
        entries: usize,
    },
    /// Restore the migration buffer to its hardware capacity.
    RestoreMigrationBuffer,
    /// Content shift: inflate every future compressed-size estimate by
    /// `percent` (0 restores the original profile). Spikes
    /// incompressibility, starving ML2 of viable victims.
    ContentShift {
        /// Inflation percentage applied to compressed sizes.
        percent: u32,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Access count (measured from system construction, warmup included)
    /// at which the fault fires — it is injected just before this access
    /// executes.
    pub at_access: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, seed-independent schedule of runtime faults.
///
/// The plan is part of [`SystemConfig`]; two runs with the same seed and
/// the same plan are bit-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults, in any order (the system sorts internally).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an event (builder style).
    pub fn with(mut self, at_access: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at_access, kind });
        self
    }

    /// Whether the plan schedules anything.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Which stored structure a scheduled bit flip lands in.
///
/// Targets are chosen by *what protection covers them*, so a sweep over
/// targets measures the coverage map of the integrity ladder: CRC-sealed
/// compressed payloads, parity-protected translation metadata, the
/// conservation-audited free list, and unprotected uncompressed data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FlipTarget {
    /// A compressed (ML2) page payload — covered by the per-page CRC seal.
    Ml2Payload,
    /// An uncompressed (ML1) data frame — no tag covers it; flips here are
    /// the scheme's irreducible silent-data-corruption exposure.
    Ml1Data,
    /// A CTE-cache slot (tag/valid/rank) — covered by per-line parity.
    CteSlot,
    /// A free-list bitmap word — covered by the frame-conservation audit.
    FreeListBitmap,
}

impl FlipTarget {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            FlipTarget::Ml2Payload => "ml2-payload",
            FlipTarget::Ml1Data => "ml1-data",
            FlipTarget::CteSlot => "cte-slot",
            FlipTarget::FreeListBitmap => "free-bitmap",
        }
    }

    /// All targets, in sweep order.
    pub const ALL: [FlipTarget; 4] = [
        FlipTarget::Ml2Payload,
        FlipTarget::Ml1Data,
        FlipTarget::CteSlot,
        FlipTarget::FreeListBitmap,
    ];
}

/// Spatial shape of one upset event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FlipShape {
    /// One flipped bit (the classic particle-strike SEU).
    Single,
    /// A short burst of adjacent flipped bits within one word.
    Burst,
    /// A row-hammer-shaped event: many flips spread across the structure,
    /// beyond what single-structure recovery can absorb.
    RowHammer,
}

impl FlipShape {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            FlipShape::Single => "single",
            FlipShape::Burst => "burst",
            FlipShape::RowHammer => "row-hammer",
        }
    }
}

/// One scheduled bit-flip event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlipEvent {
    /// Access count (measured from system construction, warmup included)
    /// at which the flip lands — injected just before this access.
    pub at_access: u64,
    /// Which structure it lands in.
    pub target: FlipTarget,
    /// How many bits, and how spread out.
    pub shape: FlipShape,
}

/// A deterministic schedule of memory upsets, the integrity-layer
/// counterpart of [`FaultPlan`]: where a fault plan models *operational*
/// shocks (ballooning, flush storms), a flip plan models *physical* ones.
///
/// The plan is part of [`SystemConfig`]; two runs with the same seed and
/// the same plan are bit-identical, and an empty plan draws zero random
/// numbers — so every flip-free golden stays byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitFlipPlan {
    /// The scheduled flips, in any order (the system sorts internally).
    pub events: Vec<BitFlipEvent>,
}

impl BitFlipPlan {
    /// An empty plan (no flips).
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an event (builder style).
    pub fn with(mut self, at_access: u64, target: FlipTarget, shape: FlipShape) -> Self {
        self.events.push(BitFlipEvent { at_access, target, shape });
        self
    }

    /// A deterministic storm: `count` flips starting at `start`, one every
    /// `period` accesses, cycling round-robin through every target and,
    /// more slowly, through the shapes — so any prefix of the storm
    /// already covers the full target × shape matrix roughly uniformly.
    pub fn storm(start: u64, period: u64, count: u64) -> Self {
        let shapes = [FlipShape::Single, FlipShape::Burst, FlipShape::RowHammer];
        let mut plan = Self::none();
        for i in 0..count {
            plan.events.push(BitFlipEvent {
                at_access: start + i * period.max(1),
                target: FlipTarget::ALL[(i % 4) as usize],
                shape: shapes[((i / 4) % 3) as usize],
            });
        }
        plan
    }

    /// Whether the plan schedules anything.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Full configuration of one simulated system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The workload to run.
    pub workload: WorkloadProfile,
    /// The compression scheme.
    pub scheme: SchemeKind,
    /// Optimization toggles for the two-level schemes (ignored by
    /// NoCompression / Compresso). Derived from `scheme` by default.
    pub toggles: TmccToggles,
    /// RNG seed for the run.
    pub seed: u64,
    /// DRAM the workload's data may occupy, bytes. `None` sizes DRAM to
    /// the uncompressed footprint (no capacity pressure). Two-level
    /// schemes migrate pages to ML2 until they fit.
    pub dram_budget_bytes: Option<u64>,
    /// TLB entries (Table III: 2048).
    pub tlb_entries: usize,
    /// CTE cache geometry; defaults per scheme (Table III).
    pub cte_cache: CteCacheConfig,
    /// Map 2 MiB huge pages (§VIII sensitivity).
    pub huge_pages: bool,
    /// DRAM timing/geometry.
    pub dram: DramConfig,
    /// Interleaving policy.
    pub interleave: InterleavePolicy,
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Number of interleaved logical access streams (threads).
    pub cores: usize,
    /// Accesses used to warm caches/TLB/placement before measuring.
    pub warmup_accesses: u64,
    /// Recency-list sampling probability. The hardware value is 1 %
    /// (§IV-B) over billions of accesses; scaled simulations default to
    /// 15 % so the list accumulates a comparable number of samples per
    /// resident page within the simulated window.
    pub recency_sample: f64,
    /// Runtime faults to inject, scheduled by access count. Empty by
    /// default.
    pub fault_plan: FaultPlan,
    /// Memory upsets (bit flips) to inject, scheduled by access count.
    /// Empty by default; an empty plan draws zero random numbers.
    pub flip_plan: BitFlipPlan,
    /// Run the invariant auditor ([`crate::System::validate`]) after
    /// every maintenance interval, aborting the run with
    /// [`crate::TmccError::InvariantViolation`] on the first
    /// inconsistency. Off by default (it walks every resident page).
    pub audit: bool,
    /// Collect host-time per-phase timing ([`crate::PhaseProfile`]) for
    /// every simulated access. Off by default; never affects simulated
    /// results, only the profile readout.
    pub profile: bool,
    /// Pages compressed with the real codecs to build the empirical
    /// [`crate::SizeModel`] at construction. The paper-scale default is
    /// 128; tiny harness scales shrink it because the codec sampling
    /// otherwise dominates short runs.
    pub size_samples: usize,
}

impl SystemConfig {
    /// A paper-default configuration for the named workload under the
    /// given scheme. Returns `None` for unknown workload names.
    pub fn for_workload(name: &str, scheme: SchemeKind) -> Option<Self> {
        let workload = WorkloadProfile::by_name(name)?;
        Some(Self::new(workload, scheme))
    }

    /// A paper-default configuration for a workload profile.
    pub fn new(workload: WorkloadProfile, scheme: SchemeKind) -> Self {
        let cte_cache = match scheme {
            SchemeKind::Compresso => CteCacheConfig::compresso(),
            _ => CteCacheConfig::tmcc(),
        };
        let toggles = match scheme {
            SchemeKind::Tmcc => TmccToggles::full(),
            _ => TmccToggles::none(),
        };
        Self {
            workload,
            scheme,
            toggles,
            seed: 0xC0FFEE,
            dram_budget_bytes: None,
            tlb_entries: 2048,
            cte_cache,
            huge_pages: false,
            dram: DramConfig::default(),
            interleave: InterleavePolicy::coarse_mc(),
            hierarchy: HierarchyConfig::default(),
            cores: 4,
            warmup_accesses: 60_000,
            recency_sample: 0.15,
            fault_plan: FaultPlan::none(),
            flip_plan: BitFlipPlan::none(),
            audit: false,
            profile: false,
            size_samples: 128,
        }
    }

    /// Sets the DRAM budget (builder style).
    pub fn with_budget(mut self, bytes: u64) -> Self {
        self.dram_budget_bytes = Some(bytes);
        self
    }

    /// Sets the optimization toggles (builder style).
    pub fn with_toggles(mut self, toggles: TmccToggles) -> Self {
        self.toggles = toggles;
        self
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fault plan (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the bit-flip plan (builder style).
    pub fn with_flip_plan(mut self, plan: BitFlipPlan) -> Self {
        self.flip_plan = plan;
        self
    }

    /// Enables the per-maintenance-interval invariant audit (builder
    /// style).
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// Enables host-time per-phase profiling (builder style).
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Sets the size-model sample count (builder style).
    pub fn with_size_samples(mut self, samples: usize) -> Self {
        self.size_samples = samples;
        self
    }

    /// The workload's uncompressed footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.workload.sim_pages * 4096
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_defaults() {
        let c = SystemConfig::for_workload("mcf", SchemeKind::Compresso).unwrap();
        assert_eq!(c.cte_cache.pages_per_line, 1);
        let t = SystemConfig::for_workload("mcf", SchemeKind::Tmcc).unwrap();
        assert_eq!(t.cte_cache.pages_per_line, 8);
        assert!(t.toggles.embedded_ctes && t.toggles.fast_deflate);
        let b = SystemConfig::for_workload("mcf", SchemeKind::OsInspired).unwrap();
        assert!(!b.toggles.embedded_ctes && !b.toggles.fast_deflate);
    }

    #[test]
    fn storm_plan_covers_target_shape_matrix() {
        let plan = BitFlipPlan::storm(1_000, 50, 24);
        assert_eq!(plan.events.len(), 24);
        assert_eq!(plan.events[0].at_access, 1_000);
        assert_eq!(plan.events[23].at_access, 1_000 + 23 * 50);
        for target in FlipTarget::ALL {
            for shape in [FlipShape::Single, FlipShape::Burst] {
                assert!(
                    plan.events.iter().any(|e| e.target == target && e.shape == shape),
                    "storm misses {} x {}",
                    target.name(),
                    shape.name()
                );
            }
        }
        assert!(BitFlipPlan::none().is_empty());
    }

    #[test]
    fn unknown_workload_is_none() {
        assert!(SystemConfig::for_workload("nope", SchemeKind::Tmcc).is_none());
    }

    #[test]
    fn builders_compose() {
        let c = SystemConfig::for_workload("bfs", SchemeKind::Tmcc)
            .unwrap()
            .with_budget(1 << 27)
            .with_seed(9);
        assert_eq!(c.dram_budget_bytes, Some(1 << 27));
        assert_eq!(c.seed, 9);
    }
}
