//! The full-system model: workload → TLB/walker → caches → scheme → DRAM.
//!
//! Timing is serial latency accounting: each workload access advances
//! simulated time by its core work plus the latency of whatever the memory
//! system did for it; background traffic (writebacks, migrations) consumes
//! DRAM bus time — and therefore delays later accesses through bank/bus
//! contention — without adding latency of its own. This reproduces the
//! paper's *relative* performance effects (translation serialization,
//! decompression latency, migration pressure) without an out-of-order
//! core model; see DESIGN.md §8.
//!
//! # Fault injection and auditing
//!
//! A [`FaultPlan`](crate::config::FaultPlan) on the configuration
//! schedules runtime shocks at absolute access counts (warmup included);
//! the system applies each event just before executing that access.
//! `SystemConfig::with_audit` additionally runs the scheme's invariant
//! auditor after every maintenance interval, turning silent state
//! corruption into a typed [`TmccError::InvariantViolation`].

use crate::config::{BitFlipEvent, FaultEvent, FlipTarget, SchemeKind, SystemConfig};
use crate::error::TmccError;
use crate::handle::{RunHandle, CANCEL_CHECK_PERIOD};
use crate::latency::LatencyHistogram;
use crate::schemes::{
    CompressoScheme, FlipPageContext, MemRequest, NoCompressionScheme, Scheme, TwoLevelScheme,
};
use crate::size_model::SizeModel;
use crate::stats::{RunReport, SimStats};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;
use tmcc_sim_dram::DramSim;
use tmcc_sim_mem::hierarchy::NOC_LATENCY_NS;
use tmcc_sim_mem::page_table::WalkStep;
use tmcc_sim_mem::{CacheHierarchy, HitLevel, PageTable, PageTableConfig, PageWalker, Tlb};
use tmcc_types::addr::{Ppn, Vpn};
use tmcc_types::pte::PageTableBlock;
use tmcc_workloads::{AccessStream, PageStore};

/// ns per core cycle at the Table III core clock (2.8 GHz).
const CORE_NS_PER_CYCLE: f64 = 1.0 / 2.8;
/// How often (in accesses) background maintenance runs.
const MAINTENANCE_PERIOD: u64 = 32;

/// Host-time breakdown of the simulation loop, collected when
/// `SystemConfig::profile` is set (the `tmcc-bench --profile` flag).
///
/// These are *wall-clock nanoseconds the simulator itself spends* per
/// phase — the data that identifies which part of `System::run` to
/// optimize — not simulated time.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PhaseProfile {
    /// Steps measured.
    pub steps: u64,
    /// Stream generation + fault injection.
    pub workload_ns: u64,
    /// TLB lookup, page walk, PTB fetches through the hierarchy/scheme.
    pub translation_ns: u64,
    /// The data access itself (hierarchy, scheme, writebacks).
    pub data_ns: u64,
    /// Scheme maintenance, audits, evicted-page cache flushes.
    pub maintenance_ns: u64,
}

impl PhaseProfile {
    /// Total profiled host time, ns.
    pub fn total_ns(&self) -> u64 {
        self.workload_ns + self.translation_ns + self.data_ns + self.maintenance_ns
    }

    /// `(workload, translation, data, maintenance)` shares of the total,
    /// each in [0, 1].
    pub fn shares(&self) -> (f64, f64, f64, f64) {
        let total = self.total_ns().max(1) as f64;
        (
            self.workload_ns as f64 / total,
            self.translation_ns as f64 / total,
            self.data_ns as f64 / total,
            self.maintenance_ns as f64 / total,
        )
    }
}

/// A complete simulated system.
pub struct System {
    cfg: SystemConfig,
    tlb: Tlb,
    walker: PageWalker,
    page_table: PageTable,
    hierarchy: CacheHierarchy,
    dram: DramSim,
    scheme: Box<dyn Scheme>,
    streams: Vec<AccessStream>,
    next_stream: usize,
    now_ns: f64,
    stats: SimStats,
    accesses_since_maintenance: u64,
    /// Fault events sorted by `at_access`, applied in order.
    fault_events: Vec<FaultEvent>,
    next_fault: usize,
    /// Bit-flip events sorted by `at_access`, applied in order.
    flip_events: Vec<BitFlipEvent>,
    next_flip: usize,
    /// Dedicated RNG for flip placement, seeded independently of every
    /// other stream: an empty flip plan draws nothing from it, so
    /// flip-free runs are bit-identical with or without the machinery.
    flip_rng: SmallRng,
    /// Accesses executed since construction, warmup included — the clock
    /// fault events are scheduled against.
    total_accesses: u64,
    /// Simulated time at the end of warmup — the origin `elapsed_ns` is
    /// measured from (set by [`System::try_warmup`]).
    measure_start_ns: f64,
    /// Reused per-walk scratch: fetched steps with their PTBs. Keeping it
    /// on the system takes the page-walk path out of the per-access
    /// allocation profile.
    walk_buf: Vec<(WalkStep, PageTableBlock)>,
    /// Reused scratch for pages drained from the scheme's eviction queue.
    evict_buf: Vec<Ppn>,
    /// Lazy page-content source: pages materialize from the workload seed
    /// on read and are only host-resident while divergent, so simulated
    /// footprint costs no RSS (see `tmcc_workloads::store`).
    store: PageStore,
    /// Fixed-bin log-scale histogram of per-access simulated latency
    /// (translation + data, work cycles excluded) over the measurement
    /// window. Lives outside [`SimStats`] so [`RunReport`] serialization
    /// — and with it every committed golden — is unchanged; the tenancy
    /// layer reads it for fleet tail-latency percentiles.
    latency: LatencyHistogram,
    /// Host-time phase breakdown, populated when `cfg.profile` is set.
    profile: PhaseProfile,
    /// Cooperative cancellation token, polled every
    /// [`CANCEL_CHECK_PERIOD`] accesses when attached.
    cancel: Option<RunHandle>,
}

impl System {
    /// Builds the system: constructs the page table (identity VPN→PPN for
    /// the workload's pages), samples the size model, places pages and
    /// instantiates the scheme.
    ///
    /// # Panics
    ///
    /// Panics if the configured DRAM budget cannot hold the workload even
    /// fully compressed (see [`System::min_budget_bytes`]; use
    /// [`System::try_new`] to get a typed error instead).
    pub fn new(cfg: SystemConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the system, returning [`TmccError::InfeasibleBudget`] when
    /// the configured DRAM budget cannot hold the workload even fully
    /// compressed.
    pub fn try_new(cfg: SystemConfig) -> Result<Self, TmccError> {
        let mut page_table =
            PageTable::new(PageTableConfig { huge_pages: cfg.huge_pages, ..Default::default() });
        let pages = cfg.workload.sim_pages;
        if cfg.huge_pages {
            for region in 0..pages.div_ceil(512) {
                page_table.map(Vpn::new(region * 512), Ppn::new(region * 512));
            }
        } else {
            for i in 0..pages {
                page_table.map(Vpn::new(i), Ppn::new(i));
            }
        }
        let mut store = PageStore::new(cfg.workload.page_content(cfg.seed));
        let size_model = SizeModel::sample_via(&mut store, cfg.size_samples);
        let table_pages = page_table.table_page_count() as u64;

        let scheme: Box<dyn Scheme> = match cfg.scheme {
            SchemeKind::NoCompression => {
                Box::new(NoCompressionScheme::new((pages + table_pages) * 4096))
            }
            SchemeKind::Compresso => {
                let mut ppns: Vec<Ppn> = (0..pages).map(Ppn::new).collect();
                for level in 1..=4u8 {
                    for (block, _) in page_table.ptbs_at_level(level) {
                        ppns.push(block.ppn());
                    }
                }
                ppns.sort_unstable_by_key(|p| p.raw());
                ppns.dedup();
                Box::new(CompressoScheme::new(cfg.cte_cache, size_model, ppns, cfg.seed))
            }
            SchemeKind::OsInspired | SchemeKind::Tmcc => {
                // CTE table (8 B/page) and recency list (16 B/page) also
                // live in the budgeted DRAM.
                let metadata = (pages + table_pages) * 24;
                let budget_frames = match cfg.dram_budget_bytes {
                    Some(b) => (b.saturating_sub(metadata) / 4096) as u32,
                    // No pressure: room for everything plus the reserve.
                    None => (pages + table_pages) as u32 + 512,
                };
                Box::new(TwoLevelScheme::try_new(
                    cfg.toggles,
                    cfg.cte_cache,
                    size_model,
                    &page_table,
                    pages,
                    budget_frames,
                    cfg.seed,
                    cfg.recency_sample,
                )?)
            }
        };

        let streams = (0..cfg.cores.max(1))
            .map(|i| cfg.workload.stream(cfg.seed.wrapping_add(i as u64 * 977)))
            .collect();

        let mut fault_events = cfg.fault_plan.events.clone();
        fault_events.sort_by_key(|e| e.at_access);
        let mut flip_events = cfg.flip_plan.events.clone();
        flip_events.sort_by_key(|e| e.at_access);
        let flip_rng = SmallRng::seed_from_u64(cfg.seed ^ 0xB17_F11B5);

        Ok(Self {
            tlb: Tlb::new(cfg.tlb_entries, 8),
            walker: PageWalker::paper_default(),
            hierarchy: CacheHierarchy::new(cfg.hierarchy),
            dram: DramSim::new(cfg.dram, cfg.interleave),
            scheme,
            page_table,
            streams,
            next_stream: 0,
            now_ns: 0.0,
            stats: SimStats::default(),
            accesses_since_maintenance: 0,
            fault_events,
            next_fault: 0,
            flip_events,
            next_flip: 0,
            flip_rng,
            total_accesses: 0,
            measure_start_ns: 0.0,
            walk_buf: Vec::with_capacity(4),
            evict_buf: Vec::new(),
            store,
            latency: LatencyHistogram::new(),
            profile: PhaseProfile::default(),
            cancel: None,
            cfg,
        })
    }

    /// Smallest feasible DRAM budget in bytes for a workload under the
    /// two-level schemes.
    pub fn min_budget_bytes(cfg: &SystemConfig) -> u64 {
        let mut page_table = PageTable::new(PageTableConfig::default());
        for i in 0..cfg.workload.sim_pages {
            page_table.map(Vpn::new(i), Ppn::new(i));
        }
        let size_model = SizeModel::sample_via(
            &mut PageStore::new(cfg.workload.page_content(cfg.seed)),
            cfg.size_samples,
        );
        let frames = TwoLevelScheme::min_budget_frames(
            &size_model,
            page_table.table_page_count() as u64,
            cfg.workload.sim_pages,
        );
        let metadata = (cfg.workload.sim_pages + page_table.table_page_count() as u64) * 24;
        frames as u64 * 4096 + metadata
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Host-time per-phase profile accumulated so far. All-zero unless the
    /// configuration enabled [`SystemConfig::profile`].
    pub fn phase_profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// Attaches a cancellation token. The simulation loop polls it every
    /// [`CANCEL_CHECK_PERIOD`] accesses and aborts the run with
    /// [`TmccError::Cancelled`] once [`RunHandle::cancel`] has been
    /// called. Attaching replaces any previous handle.
    pub fn attach_handle(&mut self, handle: &RunHandle) {
        self.cancel = Some(handle.clone());
    }

    /// Audits the scheme's internal invariants (frame conservation,
    /// CTE/placement consistency). Cheap enough to call between
    /// maintenance intervals; `SystemConfig::with_audit` does so
    /// automatically. Debug builds additionally audit the raw counter
    /// block for saturation and cross-counter consistency, so a wrapped
    /// or mis-accounted statistic in a fault-injected long run surfaces
    /// as a typed error instead of silently corrupting figures.
    pub fn validate(&self) -> Result<(), TmccError> {
        #[cfg(debug_assertions)]
        if let Err(detail) = self.stats.audit() {
            return Err(TmccError::InvariantViolation { detail });
        }
        self.scheme.validate()
    }

    /// Applies every fault event scheduled at or before the current
    /// access count.
    fn apply_due_faults(&mut self) -> Result<(), TmccError> {
        while let Some(ev) = self.fault_events.get(self.next_fault) {
            if ev.at_access > self.total_accesses {
                break;
            }
            let kind = ev.kind;
            self.next_fault += 1;
            self.scheme.apply_fault(kind, self.now_ns, &mut self.stats)?;
        }
        Ok(())
    }

    /// Applies every bit-flip event scheduled at or before the current
    /// access count: picks a deterministic target page where the flip
    /// needs one, reads its real content from the lazy store, and hands
    /// the upset to the scheme's detect/recover/poison ladder.
    fn apply_due_flips(&mut self) -> Result<(), TmccError> {
        while let Some(ev) = self.flip_events.get(self.next_flip) {
            if ev.at_access > self.total_accesses {
                break;
            }
            let flip = *ev;
            self.next_flip += 1;
            let entropy: u64 = self.flip_rng.gen();
            let page = match flip.target {
                FlipTarget::Ml2Payload | FlipTarget::Ml1Data => {
                    let pages = self.cfg.workload.sim_pages.max(1);
                    let ppn = Ppn::new(entropy % pages);
                    let dirty = self.store.is_pinned(ppn.raw());
                    Some((ppn, dirty))
                }
                FlipTarget::CteSlot | FlipTarget::FreeListBitmap => None,
            };
            match page {
                Some((ppn, dirty)) => {
                    // Field-level borrows: the store lends the page bytes
                    // while the scheme and stats are borrowed separately.
                    let bytes = self.store.read(ppn.raw());
                    let ctx = FlipPageContext { ppn, bytes, dirty };
                    self.scheme.apply_bit_flip(
                        &flip,
                        entropy,
                        Some(ctx),
                        self.now_ns,
                        &mut self.stats,
                    )?;
                }
                None => {
                    self.scheme.apply_bit_flip(
                        &flip,
                        entropy,
                        None,
                        self.now_ns,
                        &mut self.stats,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Executes one workload access end to end.
    fn try_step(&mut self) -> Result<(), TmccError> {
        // Host-time phase stamps, only taken under `cfg.profile`.
        let t0 = self.cfg.profile.then(Instant::now);

        if self.total_accesses.is_multiple_of(CANCEL_CHECK_PERIOD) {
            if let Some(handle) = &self.cancel {
                if handle.is_cancelled() {
                    return Err(TmccError::Cancelled { at_access: self.total_accesses });
                }
            }
        }
        self.apply_due_faults()?;
        self.apply_due_flips()?;
        self.total_accesses += 1;
        let ev = self.streams[self.next_stream].next_access();
        self.next_stream = (self.next_stream + 1) % self.streams.len();
        self.now_ns += ev.work_cycles as f64 * CORE_NS_PER_CYCLE;
        self.stats.work_cycles = self.stats.work_cycles.saturating_add(ev.work_cycles as u64);
        // Everything now_ns accrues past this point is memory-system
        // latency (translation + data); the delta feeds the tail-latency
        // histogram at the end of the step.
        let mem_start_ns = self.now_ns;

        let vpn = ev.vaddr.vpn();
        let is_tmcc_ptb = matches!(self.cfg.scheme, SchemeKind::Tmcc)
            && self.cfg.toggles.embedded_ctes
            && !self.cfg.huge_pages;

        let t1 = t0.map(|_| Instant::now());

        // 1. Address translation.
        let mut walked = false;
        let ppn = match self.tlb.lookup(vpn) {
            Some(p) => {
                self.stats.tlb_hits = self.stats.tlb_hits.saturating_add(1);
                p
            }
            None => {
                walked = true;
                self.stats.tlb_misses = self.stats.tlb_misses.saturating_add(1);
                // The scratch buffer keeps the walk allocation-free; the
                // walker hands back each fetched step *with* its PTB, so
                // no per-step page-table lookup is needed below.
                let mut walk_buf = std::mem::take(&mut self.walk_buf);
                let walk = self.walker.walk_into(&self.page_table, vpn, &mut walk_buf);
                let Some((walk_ppn, _pwc_hits)) = walk else {
                    return Err(TmccError::UnmappedVpn { vpn: vpn.raw() });
                };
                for &(step, ptb) in walk_buf.iter() {
                    self.stats.walker_fetches = self.stats.walker_fetches.saturating_add(1);
                    let acc = self.hierarchy.access(step.ptb_block, false, is_tmcc_ptb);
                    let mut lat = acc.latency_ns;
                    if acc.level == HitLevel::Memory {
                        self.stats.llc_miss_ptb = self.stats.llc_miss_ptb.saturating_add(1);
                        let req = MemRequest {
                            ppn: step.ptb_block.ppn(),
                            block: step.ptb_block,
                            write: false,
                            is_ptb: true,
                            after_tlb_miss: true,
                        };
                        let mlat = self.scheme.access(
                            &req,
                            self.now_ns + lat,
                            &mut self.dram,
                            &mut self.stats,
                        )?;
                        self.stats.l3_miss_latency_sum_ns += NOC_LATENCY_NS + mlat;
                        lat += mlat;
                    }
                    if let Some(wb) = acc.writeback {
                        self.handle_writeback(wb.ppn(), wb)?;
                    }
                    // The L2 receives the PTB: TMCC harvests its embedded
                    // CTEs into the CTE buffer (§V-A3).
                    self.scheme.on_ptb_fetched(step.ptb_block, &ptb);
                    self.now_ns += lat;
                }
                self.walk_buf = walk_buf;
                self.tlb.fill(vpn, walk_ppn);
                walk_ppn
            }
        };

        let t2 = t0.map(|_| Instant::now());

        // 2. The data access itself.
        let block = ppn.block(ev.vaddr.page_offset() as usize / 64);
        let acc = self.hierarchy.access(block, ev.write, false);
        let mut lat = acc.latency_ns;
        if acc.level == HitLevel::Memory {
            self.stats.llc_miss_data = self.stats.llc_miss_data.saturating_add(1);
            let req =
                MemRequest { ppn, block, write: ev.write, is_ptb: false, after_tlb_miss: walked };
            let mlat =
                self.scheme.access(&req, self.now_ns + lat, &mut self.dram, &mut self.stats)?;
            self.stats.l3_miss_latency_sum_ns += NOC_LATENCY_NS + mlat;
            lat += mlat;
        }
        if let Some(wb) = acc.writeback {
            self.handle_writeback(wb.ppn(), wb)?;
        }
        self.now_ns += lat;
        self.stats.accesses = self.stats.accesses.saturating_add(1);
        self.latency.record((self.now_ns - mem_start_ns) as u64);

        let t3 = t0.map(|_| Instant::now());

        // 3. Background maintenance.
        self.accesses_since_maintenance += 1;
        if self.accesses_since_maintenance >= MAINTENANCE_PERIOD {
            self.accesses_since_maintenance = 0;
            self.scheme.maintain(self.now_ns, &mut self.dram, &mut self.stats)?;
            if self.cfg.audit {
                self.scheme.validate()?;
            }
        }
        // Flush the cache hierarchy of any pages just compressed into ML2
        // (hardware collects a page's lines during the migration; stale
        // dirty copies would otherwise ping-pong the page back to ML1).
        let mut evict_buf = std::mem::take(&mut self.evict_buf);
        self.scheme.drain_evicted_pages(&mut evict_buf);
        for ppn in evict_buf.drain(..) {
            for b in 0..64 {
                self.hierarchy.invalidate(ppn.block(b));
            }
        }
        self.evict_buf = evict_buf;

        if let (Some(t0), Some(t1), Some(t2), Some(t3)) = (t0, t1, t2, t3) {
            self.profile.steps += 1;
            self.profile.workload_ns += (t1 - t0).as_nanos() as u64;
            self.profile.translation_ns += (t2 - t1).as_nanos() as u64;
            self.profile.data_ns += (t3 - t2).as_nanos() as u64;
            self.profile.maintenance_ns += t3.elapsed().as_nanos() as u64;
        }
        Ok(())
    }

    /// Handles a dirty LLC eviction.
    fn handle_writeback(
        &mut self,
        ppn: Ppn,
        block: tmcc_types::addr::BlockAddr,
    ) -> Result<(), TmccError> {
        self.stats.llc_writebacks = self.stats.llc_writebacks.saturating_add(1);
        let req = MemRequest { ppn, block, write: true, is_ptb: false, after_tlb_miss: false };
        self.scheme.writeback(&req, self.now_ns, &mut self.dram, &mut self.stats)
    }

    /// Runs `accesses` measured accesses (after the configured warmup) and
    /// reports.
    ///
    /// # Panics
    ///
    /// Panics if the simulation surfaces a [`TmccError`] (an unmapped
    /// page, a broken invariant under auditing); use
    /// [`System::try_run`] to handle those as values.
    pub fn run(&mut self, accesses: u64) -> RunReport {
        match self.try_run(accesses) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs `accesses` measured accesses (after the configured warmup) and
    /// reports, propagating any simulation error.
    pub fn try_run(&mut self, accesses: u64) -> Result<RunReport, TmccError> {
        self.try_warmup()?;
        self.try_run_slice(accesses)?;
        Ok(self.report())
    }

    /// Runs the configured warmup and arms the measurement window: counters
    /// reset, cache/placement state kept (the paper warms up ML1, ML2 and
    /// embedded CTEs before measuring, §VI). Called once before any
    /// [`System::try_run_slice`]; a tenant admitted mid-run warms up at
    /// admission time.
    pub fn try_warmup(&mut self) -> Result<(), TmccError> {
        for _ in 0..self.cfg.warmup_accesses {
            self.try_step()?;
        }
        self.stats = SimStats::default();
        self.hierarchy.reset_stats();
        self.dram.reset_stats();
        self.tlb.reset_stats();
        self.latency.reset();
        self.measure_start_ns = self.now_ns;
        Ok(())
    }

    /// Runs `accesses` measured accesses without resetting counters, so a
    /// scheduler (the multi-tenant round-robin, an incremental driver) can
    /// interleave slices of several systems and still get one coherent
    /// measurement window per system out of [`System::report`].
    pub fn try_run_slice(&mut self, accesses: u64) -> Result<(), TmccError> {
        for _ in 0..accesses {
            self.try_step()?;
        }
        Ok(())
    }

    /// Seals the measurement window opened by [`System::try_warmup`] and
    /// builds the report over every slice run since.
    pub fn report(&mut self) -> RunReport {
        self.stats.elapsed_ns = self.now_ns - self.measure_start_ns;
        self.stats.dram_used_bytes = self.scheme.dram_used_bytes();
        self.stats.footprint_bytes = self.cfg.workload.sim_pages * 4096;
        RunReport {
            workload: self.cfg.workload.name,
            scheme: self.cfg.scheme,
            stats: self.stats,
            dram: self.dram.stats(),
            peak_bandwidth_gbps: self.cfg.dram.peak_bandwidth_gbps(),
            bandwidth_utilization: self.dram.bandwidth_utilization(),
        }
    }

    /// Injects a runtime fault right now, outside any scheduled
    /// [`FaultPlan`](crate::config::FaultPlan) — the mechanism the
    /// multi-tenant capacity arbiter uses to balloon a tenant's budget
    /// (shrink/grow) while the run is in flight.
    pub fn inject_fault(&mut self, kind: crate::config::FaultKind) -> Result<(), TmccError> {
        self.scheme.apply_fault(kind, self.now_ns, &mut self.stats)
    }

    /// Snapshot of the scheme's capacity-pressure state (degraded mode,
    /// outstanding reclaim debt).
    pub fn scheme_pressure(&self) -> crate::schemes::SchemePressure {
        self.scheme.pressure()
    }

    /// DRAM bytes the scheme currently occupies (data + translation
    /// metadata) — the arbiter's cross-tenant frame-leak audit reads this.
    pub fn dram_used_bytes(&self) -> u64 {
        self.scheme.dram_used_bytes()
    }

    /// The lazy page-content store backing this system's workload.
    pub fn page_store(&self) -> &PageStore {
        &self.store
    }

    /// Mutable access to the page store — the footprint experiments drive
    /// generate-on-read / verify-on-write sweeps against the very content
    /// the system sampled its size model from.
    pub fn page_store_mut(&mut self) -> &mut PageStore {
        &mut self.store
    }

    /// Host heap bytes this system's scheme metadata occupies (0 for
    /// schemes that don't track it).
    pub fn metadata_heap_bytes(&self) -> usize {
        self.scheme.metadata_heap_bytes()
    }

    /// Counters accumulated in the current measurement window.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Accesses executed since construction, warmup included.
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Per-access memory-latency histogram over the measurement window
    /// (reset by [`System::try_warmup`] alongside the counters).
    pub fn latency_histogram(&self) -> &LatencyHistogram {
        &self.latency
    }
}
