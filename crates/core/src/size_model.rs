//! Per-page compressed-size model.
//!
//! Full-system runs touch tens of thousands of pages and migrate them
//! repeatedly; running the real codecs on every page at simulation time
//! would dominate runtime without changing outcomes. Instead the model
//! **samples** a workload's real pages, compresses the samples with the
//! *actual* codecs (the memory-specialized Deflate of `tmcc-deflate` and
//! the best-of block composite of `tmcc-compression`), and assigns every
//! page a size drawn deterministically from the resulting empirical
//! distribution. Compression-ratio experiments (Fig. 15) bypass this model
//! and run the codecs directly.
//!
//! Writebacks perturb a page's compressibility over time; `dirty_epoch`
//! lets callers re-draw a page's size after heavy write activity, which is
//! how Compresso-style page-overflow events arise.

use std::sync::{Mutex, OnceLock};
use tmcc_compression::{BestOfCodec, BlockCodec};
use tmcc_deflate::MemDeflate;
use tmcc_types::cte::BlockMetadata;
use tmcc_types::fxhash::FxHashMap;
use tmcc_workloads::{PageContent, PageStore};

/// Process-wide memo of sampling results, keyed by the exact concatenated
/// bytes of the sampled pages.
///
/// Sweeps construct many systems over the *same* workload content — every
/// grid point of an experiment, every probe of an iso-performance budget
/// search — and each construction used to re-run the real codecs over the
/// identical sample pages. Keying by the full page bytes makes the memo
/// exactly behavior-preserving (two different contents can never share an
/// entry), while a hit skips straight to the stored empirical
/// distribution. Distinct workload images are few (tens), so the retained
/// keys stay small; generating the page bytes to build the key costs
/// microseconds against the milliseconds the codecs take.
fn sample_memo() -> &'static Mutex<FxHashMap<Vec<u8>, Vec<PageSizes>>> {
    static MEMO: OnceLock<Mutex<FxHashMap<Vec<u8>, Vec<PageSizes>>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(FxHashMap::default()))
}

/// Compressed sizes of one page under the two compressor families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageSizes {
    /// Bytes under page-level memory-specialized Deflate (ML2 storage).
    pub deflate_bytes: usize,
    /// Bytes under 64 B block-level best-of compression, summed across the
    /// page (Compresso storage, before chunk rounding).
    pub block_bytes: usize,
}

impl PageSizes {
    /// Compresso chunks (512 B) this page occupies.
    pub fn compresso_chunks(&self) -> usize {
        self.block_bytes.div_ceil(BlockMetadata::CHUNK_SIZE).max(1)
    }

    /// Whether ML2 would refuse this page (incompressible: larger than the
    /// biggest sub-chunk class).
    pub fn ml2_incompressible(&self) -> bool {
        self.deflate_bytes > 4096
    }
}

/// The sampled empirical size model for one workload.
///
/// # Examples
///
/// ```
/// use tmcc::SizeModel;
/// use tmcc_workloads::WorkloadProfile;
///
/// let w = WorkloadProfile::by_name("canneal").expect("known");
/// let model = SizeModel::sample(&w.page_content(42), 16);
/// let s = model.sizes_of(1234, 0);
/// assert!(s.deflate_bytes <= 4096 + 3);
/// assert_eq!(s, model.sizes_of(1234, 0), "deterministic");
/// ```
#[derive(Debug, Clone)]
pub struct SizeModel {
    samples: Vec<PageSizes>,
}

impl SizeModel {
    /// Compresses `samples` representative pages with the real codecs.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn sample(content: &PageContent, samples: usize) -> Self {
        Self::sample_via(&mut PageStore::new(content.clone()), samples)
    }

    /// Like [`sample`](Self::sample), but materializes the sample pages
    /// through an existing [`PageStore`] — the lazy generate-on-read path
    /// the system model uses, so sampling shares the store's scratch
    /// buffer and sees any pinned (divergent) pages.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn sample_via(store: &mut PageStore, samples: usize) -> Self {
        assert!(samples > 0, "need at least one sample");
        // Spread sample indices to hit every template in the mix.
        let pages: Vec<Vec<u8>> =
            (0..samples as u64).map(|i| store.read(i.wrapping_mul(0x9E37) + i).to_vec()).collect();
        let key: Vec<u8> = pages.iter().flat_map(|p| p.iter().copied()).collect();
        if let Some(hit) = sample_memo().lock().expect("memo poisoned").get(&key) {
            return Self { samples: hit.clone() };
        }
        let deflate = MemDeflate::default();
        let block = BestOfCodec::new();
        let samples: Vec<PageSizes> = pages
            .iter()
            .map(|page| {
                let deflate_bytes = deflate.compressed_size(page);
                let block_bytes = page
                    .chunks_exact(64)
                    .map(|b| {
                        let arr: &[u8; 64] = b.try_into().expect("64B chunk");
                        block.compressed_size(arr)
                    })
                    .sum();
                PageSizes { deflate_bytes, block_bytes }
            })
            .collect();
        sample_memo().lock().expect("memo poisoned").insert(key, samples.clone());
        Self { samples }
    }

    /// Builds a model directly from known sizes (tests, ablations).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: Vec<PageSizes>) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        Self { samples }
    }

    /// Sizes of page `index` at write-epoch `dirty_epoch` (bump the epoch
    /// after heavy writes to re-draw the page's compressibility).
    pub fn sizes_of(&self, index: u64, dirty_epoch: u32) -> PageSizes {
        let h = index
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(dirty_epoch % 63)
            .wrapping_add(dirty_epoch as u64);
        self.samples[(h % self.samples.len() as u64) as usize]
    }

    /// Mean Deflate ratio across the sampled pages.
    pub fn mean_deflate_ratio(&self) -> f64 {
        let total: usize = self.samples.iter().map(|s| s.deflate_bytes).sum();
        4096.0 * self.samples.len() as f64 / total as f64
    }

    /// Mean block-level ratio across the sampled pages (with Compresso's
    /// 512 B chunk rounding).
    pub fn mean_block_ratio(&self) -> f64 {
        let total: usize =
            self.samples.iter().map(|s| s.compresso_chunks() * BlockMetadata::CHUNK_SIZE).sum();
        4096.0 * self.samples.len() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmcc_workloads::WorkloadProfile;

    #[test]
    fn sizes_are_deterministic_and_bounded() {
        let w = WorkloadProfile::by_name("pageRank").expect("known");
        let m = SizeModel::sample(&w.page_content(7), 12);
        for i in 0..100u64 {
            let s = m.sizes_of(i, 0);
            assert_eq!(s, m.sizes_of(i, 0));
            assert!(s.deflate_bytes <= 4096 + 3);
            assert!(s.block_bytes <= 4096);
            assert!(s.compresso_chunks() <= 8);
        }
    }

    #[test]
    fn dirty_epoch_changes_draws() {
        let m = SizeModel::from_samples(vec![
            PageSizes { deflate_bytes: 100, block_bytes: 1000 },
            PageSizes { deflate_bytes: 2000, block_bytes: 3000 },
        ]);
        let changed = (0..64u64).any(|i| m.sizes_of(i, 0) != m.sizes_of(i, 1));
        assert!(changed, "epoch must be able to re-draw sizes");
    }

    #[test]
    fn graph_ratios_match_calibration() {
        let w = WorkloadProfile::by_name("bfs").expect("known");
        let m = SizeModel::sample(&w.page_content(3), 24);
        let d = m.mean_deflate_ratio();
        let b = m.mean_block_ratio();
        assert!(d > b, "deflate {d} must beat block {b}");
        assert!((2.0..4.5).contains(&d), "deflate ratio {d}");
    }

    #[test]
    fn memoized_resampling_is_identical() {
        let w = WorkloadProfile::by_name("canneal").expect("known");
        let c = w.page_content(11);
        let fresh = SizeModel::sample(&c, 8);
        let memoized = SizeModel::sample(&c, 8);
        assert_eq!(fresh.samples, memoized.samples);
        // A different seed draws different pages, so it must miss the memo.
        let other = SizeModel::sample(&w.page_content(12), 8);
        assert_ne!(fresh.samples, other.samples);
    }

    #[test]
    fn compresso_chunks_floor_at_one() {
        let s = PageSizes { deflate_bytes: 1, block_bytes: 0 };
        assert_eq!(s.compresso_chunks(), 1);
    }
}
