//! Memory-controller scheme models.
//!
//! A [`Scheme`] is everything behind the LLC↔MC interface: physical→DRAM
//! translation (CTEs + CTE cache), data placement (free lists, chunks,
//! ML1/ML2), migration, and the DRAM accesses those imply. The system
//! model calls into it on LLC misses, dirty writebacks and page-walker
//! PTB deliveries.

pub mod compresso;
pub mod nocomp;
pub mod two_level;

pub use compresso::CompressoScheme;
pub use nocomp::NoCompressionScheme;
pub use two_level::TwoLevelScheme;

use crate::config::{BitFlipEvent, FaultKind, SchemeKind};
use crate::error::TmccError;
use crate::stats::SimStats;
use tmcc_sim_dram::DramSim;
use tmcc_types::addr::{BlockAddr, Ppn};
use tmcc_types::pte::PageTableBlock;

/// DRAM byte address of the CTE/metadata table region (kept disjoint from
/// data frames; the tables are small, §V-A6).
pub const CTE_TABLE_BASE: u64 = 1 << 40;

/// A cheap snapshot of a scheme's capacity-pressure state, polled by the
/// multi-tenant arbiter between scheduling rounds (see
/// [`crate::tenancy`]). Schemes without pressure machinery report the
/// default (healthy, no debt).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchemePressure {
    /// Whether the scheme is in degraded mode (free list below the
    /// critical watermark, or unpaid reclaim debt).
    pub degraded: bool,
    /// Frames owed to a balloon shrink that have not been reclaimed yet.
    pub reclaim_debt_frames: u64,
}

/// Page content handed to [`Scheme::apply_bit_flip`] for payload-targeted
/// flips: the real bytes (regenerated from the content seed or
/// host-resident) plus whether the page has diverged from its
/// deterministic source — a divergent page cannot be recovered by
/// regeneration, only from its raw-store copy, which bounds the ladder.
#[derive(Debug, Clone, Copy)]
pub struct FlipPageContext<'a> {
    /// The targeted physical page.
    pub ppn: Ppn,
    /// The page's current content (one full 4 KiB page).
    pub bytes: &'a [u8],
    /// Whether the content has diverged from the regenerable source.
    pub dirty: bool,
}

/// An LLC-miss request delivered to the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Physical page of the missing block.
    pub ppn: Ppn,
    /// The missing 64 B block.
    pub block: BlockAddr,
    /// Whether the request is a store/writeback.
    pub write: bool,
    /// Whether the block is a page-table block fetched by the walker.
    pub is_ptb: bool,
    /// Whether this request is part of servicing a TLB miss (the walker's
    /// own fetches and the data access immediately after the walk) —
    /// drives the Fig. 5 statistic.
    pub after_tlb_miss: bool,
}

/// A memory-controller scheme.
///
/// The runtime methods are fallible: requests naming pages the scheme
/// never placed, exhausted free lists mid-maintenance, and corrupted
/// internal state surface as [`TmccError`] instead of panicking, so the
/// system model can abort a run with context (or a harness can record
/// the failure and move on).
///
/// `Send` is a supertrait: the multi-tenant scheduler moves whole tenant
/// [`System`](crate::System)s (scheme included) across worker threads
/// when it dispatches a round's quanta onto the work-stealing pool.
pub trait Scheme: Send {
    /// Which scheme this is.
    fn kind(&self) -> SchemeKind;

    /// Services an LLC-miss read (or write-allocate). Returns the MC+DRAM
    /// service latency in ns (excluding the on-chip/NoC part, which the
    /// caller accounts).
    fn access(
        &mut self,
        req: &MemRequest,
        now_ns: f64,
        dram: &mut DramSim,
        stats: &mut SimStats,
    ) -> Result<f64, TmccError>;

    /// Handles a dirty LLC writeback (background: consumes DRAM bandwidth
    /// but adds no latency to the instruction stream).
    fn writeback(
        &mut self,
        req: &MemRequest,
        now_ns: f64,
        dram: &mut DramSim,
        stats: &mut SimStats,
    ) -> Result<(), TmccError>;

    /// Notifies the scheme that the page walker fetched a PTB — TMCC
    /// harvests embedded CTEs into the CTE buffer here (§V-A3).
    fn on_ptb_fetched(&mut self, _block: BlockAddr, _ptb: &PageTableBlock) {}

    /// Periodic background maintenance (ML1 free-list replenishment via
    /// cold-page eviction, §VI; emergency bursts under critical pressure).
    fn maintain(
        &mut self,
        _now_ns: f64,
        _dram: &mut DramSim,
        _stats: &mut SimStats,
    ) -> Result<(), TmccError> {
        Ok(())
    }

    /// Injects a runtime fault. Schemes without the relevant machinery
    /// treat faults as no-ops (a budget shock means nothing to the
    /// uncompressed baseline).
    fn apply_fault(
        &mut self,
        _fault: FaultKind,
        _now_ns: f64,
        _stats: &mut SimStats,
    ) -> Result<(), TmccError> {
        Ok(())
    }

    /// Injects one memory upset from the configured
    /// [`BitFlipPlan`](crate::config::BitFlipPlan) and runs whatever
    /// detect/recover/poison ladder the scheme has over it, accounting
    /// the outcome into the corruption counters of [`SimStats`].
    ///
    /// `entropy` is a value drawn from the system's dedicated flip RNG
    /// (never the scheme's own, so flip-free runs draw zero numbers);
    /// every in-scheme placement decision must derive from it. `page`
    /// carries the targeted page's content for payload-targeted flips.
    ///
    /// The default implementation models a scheme with *no* integrity
    /// machinery: the upset lands as silent data corruption.
    fn apply_bit_flip(
        &mut self,
        _flip: &BitFlipEvent,
        _entropy: u64,
        _page: Option<FlipPageContext<'_>>,
        _now_ns: f64,
        stats: &mut SimStats,
    ) -> Result<(), TmccError> {
        stats.flips_injected = stats.flips_injected.saturating_add(1);
        stats.sdc_escapes = stats.sdc_escapes.saturating_add(1);
        Ok(())
    }

    /// Audits internal invariants (frame conservation, placement/CTE
    /// consistency). Cheap schemes with no internal state just return Ok.
    fn validate(&self) -> Result<(), TmccError> {
        Ok(())
    }

    /// Snapshot of the scheme's capacity-pressure state. Schemes without
    /// watermarks or reclaim debt are always healthy.
    fn pressure(&self) -> SchemePressure {
        SchemePressure::default()
    }

    /// DRAM bytes currently occupied by data + translation metadata.
    fn dram_used_bytes(&self) -> u64;

    /// *Host* heap bytes the scheme's metadata structures occupy — what
    /// the capacity/footprint experiments report per simulated GB.
    /// Schemes that don't track it report 0.
    fn metadata_heap_bytes(&self) -> usize {
        0
    }

    /// Appends the pages evicted to ML2 since the last call to `out`
    /// (caller-owned scratch, so the per-step poll allocates nothing). The
    /// system model flushes their blocks from the cache hierarchy
    /// (hardware collects a page's dirty lines when compressing it into
    /// ML2; leaving stale dirty lines behind would ping-pong the page
    /// straight back to ML1).
    fn drain_evicted_pages(&mut self, _out: &mut Vec<Ppn>) {}
}

/// Row-sized stride separating successive pages' translation entries in
/// the *simulated* DRAM address space.
///
/// In a full-scale system the CTE/metadata tables span gigabytes, so
/// demand-driven entry fetches see essentially no row-buffer locality. Our
/// scaled-down footprints would pack the whole table into a handful of
/// DRAM rows and make serial CTE fetches artificially cheap; spreading
/// entries at row granularity restores the full-scale behaviour. (The CTE
/// *cache* still operates on dense 64 B lines — this stride only affects
/// where a missing entry lands in DRAM.)
const TABLE_ROW_STRIDE: u64 = 8192;

/// DRAM address of the page-level CTE for `ppn` (8 B entries; see
/// [`TABLE_ROW_STRIDE`] for the placement rationale).
pub fn cte_dram_addr(ppn: Ppn) -> u64 {
    CTE_TABLE_BASE + (ppn.raw() / 8) * TABLE_ROW_STRIDE + (ppn.raw() % 8) * 8
}

/// DRAM address of the block-level metadata entry for `ppn` (64 B
/// entries, Compresso; one entry per simulated row, see
/// [`TABLE_ROW_STRIDE`]).
pub fn metadata_dram_addr(ppn: Ppn) -> u64 {
    CTE_TABLE_BASE + (1 << 38) + ppn.raw() * TABLE_ROW_STRIDE
}
