//! The Compresso baseline (paper §III, reference [6]).
//!
//! Block-level compression for capacity: every page is stored as
//! individually compressed 64 B blocks packed into 512 B chunks from a
//! hardware free list; a 64-byte metadata entry (block-level CTE) per
//! 4 KiB page records where each block lives. On a metadata-cache miss the
//! MC must fetch the entry from DRAM **before** it knows where the data
//! is — the serial translation TMCC attacks (Fig. 8a).

use super::{metadata_dram_addr, MemRequest, Scheme};
use crate::config::SchemeKind;
use crate::error::TmccError;
use crate::free_list::CompressoFreeList;
use crate::size_model::SizeModel;
use crate::stats::SimStats;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use tmcc_sim_dram::DramSim;
use tmcc_sim_mem::{CteCache, CteCacheConfig};
use tmcc_types::addr::{DramAddr, Ppn};
use tmcc_types::cte::BlockMetadata;

/// Probability a dirty writeback changes a page's compressed size enough
/// to trigger repacking (page overflow/underflow churn in [6]).
const OVERFLOW_PROBABILITY: f64 = 0.02;

/// One resident page.
#[derive(Debug, Clone)]
struct PageState {
    chunks: Vec<u32>,
    dirty_epoch: u32,
}

/// The Compresso memory controller.
pub struct CompressoScheme {
    meta_cache: CteCache,
    pages: HashMap<u64, PageState>,
    free: CompressoFreeList,
    size_model: SizeModel,
    rng: SmallRng,
    footprint_bytes: u64,
}

impl CompressoScheme {
    /// Builds the scheme: lays out `data_ppns ∪ table_ppns` pages as
    /// block-compressed chunk lists according to the size model.
    pub fn new(
        cfg: CteCacheConfig,
        size_model: SizeModel,
        pages: impl IntoIterator<Item = Ppn>,
        seed: u64,
    ) -> Self {
        let mut s = Self {
            meta_cache: CteCache::new(cfg),
            pages: HashMap::new(),
            free: CompressoFreeList::new(),
            size_model,
            rng: SmallRng::seed_from_u64(seed ^ 0xC0117),
            footprint_bytes: 0,
        };
        let mut next_chunk = 0u32;
        for ppn in pages {
            let sizes = s.size_model.sizes_of(ppn.raw(), 0);
            let n = sizes.compresso_chunks();
            let chunks: Vec<u32> = (next_chunk..next_chunk + n as u32).collect();
            next_chunk += n as u32;
            s.pages.insert(ppn.raw(), PageState { chunks, dirty_epoch: 0 });
            s.footprint_bytes += 4096;
        }
        // Give the free list headroom for overflow churn.
        for c in next_chunk..next_chunk + 4096 {
            s.free.push(c);
        }
        s
    }

    /// Hit rate of the metadata (CTE) cache so far.
    pub fn metadata_hit_rate(&self) -> f64 {
        self.meta_cache.hit_rate()
    }

    fn data_addr(&self, req: &MemRequest) -> Result<DramAddr, TmccError> {
        let page =
            self.pages.get(&req.ppn.raw()).ok_or(TmccError::UnplacedPage { ppn: req.ppn.raw() })?;
        let bi = req.block.index_in_page();
        // Blocks are packed in order: place block i proportionally into
        // the page's chunk list (the exact packing is in the metadata
        // entry; timing only needs a deterministic in-page location).
        let idx = (bi * page.chunks.len()) / 64;
        let within = (bi * 64) % BlockMetadata::CHUNK_SIZE;
        Ok(DramAddr::new(
            page.chunks[idx] as u64 * BlockMetadata::CHUNK_SIZE as u64 + within as u64,
        ))
    }

    /// CTE translation for one request: returns added latency and whether
    /// it missed.
    fn translate(
        &mut self,
        req: &MemRequest,
        now_ns: f64,
        dram: &mut DramSim,
        stats: &mut SimStats,
        count_stats: bool,
    ) -> (f64, bool) {
        if self.meta_cache.access(req.ppn) {
            if count_stats {
                stats.cte_hits = stats.cte_hits.saturating_add(1);
            }
            (now_ns, false)
        } else {
            if count_stats {
                stats.cte_misses = stats.cte_misses.saturating_add(1);
                if req.after_tlb_miss {
                    stats.cte_misses_after_tlb_miss =
                        stats.cte_misses_after_tlb_miss.saturating_add(1);
                }
            }
            // Serial metadata fetch from DRAM (Fig. 8a).
            let done = dram.access(now_ns, DramAddr::new(metadata_dram_addr(req.ppn)), false);
            (done, true)
        }
    }
}

impl Scheme for CompressoScheme {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Compresso
    }

    fn access(
        &mut self,
        req: &MemRequest,
        now_ns: f64,
        dram: &mut DramSim,
        stats: &mut SimStats,
    ) -> Result<f64, TmccError> {
        let addr = self.data_addr(req)?;
        let (ready_ns, _missed) = self.translate(req, now_ns, dram, stats, true);
        let done = dram.access(ready_ns, addr, req.write);
        Ok(done - now_ns)
    }

    fn writeback(
        &mut self,
        req: &MemRequest,
        now_ns: f64,
        dram: &mut DramSim,
        stats: &mut SimStats,
    ) -> Result<(), TmccError> {
        let addr = self.data_addr(req)?;
        let (ready_ns, _) = self.translate(req, now_ns, dram, stats, false);
        let done = dram.access_background(ready_ns, addr, true);
        // Occasionally the new value no longer fits: repack the page
        // (metadata update + data movement), the churn [6] manages.
        if self.rng.gen::<f64>() < OVERFLOW_PROBABILITY {
            stats.page_overflows = stats.page_overflows.saturating_add(1);
            let page = self
                .pages
                .get_mut(&req.ppn.raw())
                .ok_or(TmccError::UnplacedPage { ppn: req.ppn.raw() })?;
            page.dirty_epoch += 1;
            let need = self.size_model.sizes_of(req.ppn.raw(), page.dirty_epoch).compresso_chunks();
            while page.chunks.len() < need {
                match self.free.pop() {
                    Some(c) => page.chunks.push(c),
                    None => break,
                }
            }
            while page.chunks.len() > need {
                match page.chunks.pop() {
                    Some(c) => self.free.push(c),
                    None => break,
                }
            }
            // Metadata rewrite + one chunk's worth of data movement.
            let t = dram.access_background(done, DramAddr::new(metadata_dram_addr(req.ppn)), true);
            let _ = dram.access_background(t, addr, true);
        }
        Ok(())
    }

    fn dram_used_bytes(&self) -> u64 {
        let data: u64 =
            self.pages.values().map(|p| (p.chunks.len() * BlockMetadata::CHUNK_SIZE) as u64).sum();
        let metadata = self.pages.len() as u64 * BlockMetadata::SIZE_IN_DRAM as u64;
        data + metadata
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size_model::PageSizes;
    use tmcc_sim_dram::InterleavePolicy;

    fn scheme_with(pages: u64, block_bytes: usize) -> CompressoScheme {
        let model = SizeModel::from_samples(vec![PageSizes { deflate_bytes: 800, block_bytes }]);
        CompressoScheme::new(CteCacheConfig::compresso(), model, (0..pages).map(Ppn::new), 1)
    }

    fn req(ppn: u64, block: usize) -> MemRequest {
        MemRequest {
            ppn: Ppn::new(ppn),
            block: Ppn::new(ppn).block(block),
            write: false,
            is_ptb: false,
            after_tlb_miss: true,
        }
    }

    #[test]
    fn metadata_miss_serializes() {
        let mut dram = DramSim::new(Default::default(), InterleavePolicy::baseline());
        let mut s = scheme_with(16, 2000);
        let mut stats = SimStats::default();
        let cold = s.access(&req(3, 0), 0.0, &mut dram, &mut stats).unwrap();
        let warm = s.access(&req(3, 1), 10_000.0, &mut dram, &mut stats).unwrap();
        assert!(cold > warm, "serial metadata fetch must cost extra: {cold} vs {warm}");
        assert_eq!(stats.cte_misses, 1);
        assert_eq!(stats.cte_hits, 1);
        assert_eq!(stats.cte_misses_after_tlb_miss, 1);
    }

    #[test]
    fn usage_reflects_compressibility() {
        let tight = scheme_with(100, 1000); // 2 chunks/page
        let loose = scheme_with(100, 4000); // 8 chunks/page
        assert!(tight.dram_used_bytes() < loose.dram_used_bytes());
        // 2 chunks * 512 + 64 metadata per page.
        assert_eq!(tight.dram_used_bytes(), 100 * (1024 + 64));
    }

    #[test]
    fn overflow_churn_is_bounded() {
        let mut dram = DramSim::new(Default::default(), InterleavePolicy::baseline());
        let mut s = scheme_with(8, 2000);
        let mut stats = SimStats::default();
        let mut t = 0.0;
        for i in 0..2000 {
            let r = MemRequest { write: true, ..req(i % 8, (i % 64) as usize) };
            s.writeback(&r, t, &mut dram, &mut stats).unwrap();
            t += 100.0;
        }
        let rate = stats.page_overflows as f64 / 2000.0;
        assert!((rate - OVERFLOW_PROBABILITY).abs() < 0.015, "overflow rate {rate}");
    }
}
